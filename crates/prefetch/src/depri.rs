//! Deprioritization of machine-to-machine traffic (§5.1/§7).

use std::collections::{HashMap, HashSet};

use jcdn_cdnsim::{Policy, PolicyOutcome, Priority, RequestCtx};
use jcdn_core::periodicity::PeriodicityReport;
use jcdn_trace::Trace;
use jcdn_workload::Workload;

/// A [`Policy`] that serves known machine-to-machine (client, object) pairs
/// at lower priority, "since a human is not waiting for the response".
#[derive(Clone, Debug, Default)]
pub struct DeprioritizePolicy {
    machine_pairs: HashSet<(u32, u32)>,
}

impl DeprioritizePolicy {
    /// Builds from the generator's ground-truth periodic pairs — the upper
    /// bound an oracle operator could reach.
    pub fn from_ground_truth(workload: &Workload) -> Self {
        DeprioritizePolicy {
            machine_pairs: workload.truth.periodic_pairs.keys().copied().collect(),
        }
    }

    /// Builds from a detected [`PeriodicityReport`] — what an operator
    /// actually gets from the §5.1 analysis. Flow identities (hashed client
    /// IP + UA, URL string) are mapped back onto the workload's indices.
    pub fn from_report(report: &PeriodicityReport, trace: &Trace, workload: &Workload) -> Self {
        // Client ip-hash → index; URL string → object index.
        let client_index: HashMap<u64, u32> = workload
            .clients
            .iter()
            .enumerate()
            .map(|(i, c)| (c.ip_hash, i as u32))
            .collect();
        let object_index: HashMap<&str, u32> = workload
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.url.as_str(), i as u32))
            .collect();
        let machine_pairs = report
            .periodic_flows
            .iter()
            .filter_map(|flow| {
                let client = client_index.get(&flow.client.0 .0)?;
                let object = object_index.get(trace.url(flow.url))?;
                Some((*client, *object))
            })
            .collect();
        DeprioritizePolicy { machine_pairs }
    }

    /// Number of deprioritized pairs.
    pub fn pair_count(&self) -> usize {
        self.machine_pairs.len()
    }
}

impl Policy for DeprioritizePolicy {
    fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
        let priority = if self.machine_pairs.contains(&(ctx.client, ctx.object)) {
            Priority::Deprioritized
        } else {
            Priority::Normal
        };
        PolicyOutcome {
            prefetch: Vec::new(),
            priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_cdnsim::{run, run_default, SimConfig, SimDuration};
    use jcdn_workload::{build, WorkloadConfig};

    fn loaded_config(w: &jcdn_workload::Workload) -> SimConfig {
        // A single edge at ~110% utilization so queueing is real and
        // priorities matter, independent of upstream volume calibration.
        let service_us =
            (1.1 * w.config.duration.as_secs_f64() / w.events.len() as f64 * 1e6) as u64;
        SimConfig {
            edges: 1,
            service_base: SimDuration::from_micros(service_us.max(1)),
            service_per_kb: SimDuration::ZERO,
            ..SimConfig::default()
        }
    }

    #[test]
    fn ground_truth_policy_shields_human_traffic() {
        let w = build(&WorkloadConfig::tiny(81));
        let mut policy = DeprioritizePolicy::from_ground_truth(&w);
        assert!(policy.pair_count() > 0);

        let config = loaded_config(&w);
        let baseline = run_default(&w, &config);
        let depri = run(&w, &config, &mut policy);

        // With deprioritization the normal class must see mean latency at
        // or below the undifferentiated baseline, and the machine class
        // must pay for it.
        let base_mean = baseline.stats.latency_normal.mean().unwrap();
        let human_mean = depri.stats.latency_normal.mean().unwrap();
        let machine_mean = depri.stats.latency_depri.mean().unwrap();
        assert!(
            human_mean <= base_mean * 1.02,
            "human latency must not regress: {human_mean} vs {base_mean}"
        );
        assert!(
            machine_mean > human_mean,
            "machine traffic must wait longer: {machine_mean} vs {human_mean}"
        );
    }

    #[test]
    fn report_based_policy_maps_flows_back_to_indices() {
        use jcdn_core::periodicity::{run_study, PeriodicityStudyConfig};
        use jcdn_signal::periodicity::PeriodicityConfig;

        let data = jcdn_core::dataset::simulate(&WorkloadConfig::tiny(91));
        let study_config = PeriodicityStudyConfig {
            detector: PeriodicityConfig {
                permutations: 30,
                parallel: true,
                max_bins: 1 << 13,
                ..PeriodicityConfig::default()
            },
            ..PeriodicityStudyConfig::default()
        };
        let report = run_study(&data.trace, &study_config);
        let policy = DeprioritizePolicy::from_report(&report, &data.trace, &data.workload);
        // Every detected pair must resolve back onto the universe.
        assert_eq!(policy.pair_count(), {
            let unique: std::collections::HashSet<_> = report
                .periodic_flows
                .iter()
                .map(|f| (f.client, f.url))
                .collect();
            unique.len()
        });
        // Detected pairs should overlap the planted ground truth.
        if policy.pair_count() > 0 {
            let truth = DeprioritizePolicy::from_ground_truth(&data.workload);
            let overlap = policy
                .machine_pairs
                .intersection(&truth.machine_pairs)
                .count();
            assert!(
                overlap * 2 >= policy.pair_count(),
                "at least half of detected pairs are planted: {overlap}/{}",
                policy.pair_count()
            );
        }
    }
}
