//! N-gram-driven prefetching (§5.2's proposed optimization).

use std::collections::HashMap;

use jcdn_cdnsim::{Policy, PolicyOutcome, RequestCtx};
use jcdn_ngram::{NgramModel, Vocab};
use jcdn_trace::{MimeType, RecordStream, Trace};

/// A [`Policy`] that predicts each client's next requests with a backoff
/// n-gram model and prefetches the top-K predictions.
///
/// Training happens offline on a previous trace (URLs are interned raw —
/// prefetching needs concrete URLs, exactly as the paper notes: "since 84%
/// of requests are GET requests, unmodified URLs can be used to request
/// these objects directly"). At simulation time the prefetcher keeps an
/// N-token history per client and maps predicted tokens to the current
/// universe's object ids.
#[derive(Debug)]
pub struct NgramPrefetcher {
    model: NgramModel,
    vocab: Vocab,
    /// Predicted-token → object-id map for the active universe.
    token_to_object: HashMap<u32, u32>,
    /// Per-client recent history (token ids, most recent last).
    history: HashMap<u32, Vec<u32>>,
    /// Number of predictions to prefetch per request.
    pub k: usize,
    /// Only trigger on JSON requests (media objects are fetched by clients
    /// that already know the URL; prediction adds nothing there).
    pub json_only: bool,
}

impl NgramPrefetcher {
    /// Trains a prefetcher from a trace (typically a previous capture of
    /// the same traffic). `history` is the n-gram order N, `k` the number
    /// of predictions prefetched per request.
    pub fn train_from_trace(trace: &Trace, history: usize, k: usize) -> Self {
        Self::train_from_stream(&trace.stream(), history, k)
    }

    /// Trains from any record stream — a whole trace, one shard of a
    /// [`jcdn_trace::ShardedTrace`], or a multi-shard view — without
    /// materializing a combined trace.
    pub fn train_from_stream(stream: &RecordStream<'_>, history: usize, k: usize) -> Self {
        let mut vocab = Vocab::raw();
        let tokens: Vec<u32> = stream
            .interner()
            .url_table()
            .iter()
            .map(|url| vocab.intern(url))
            .collect();
        let mut model = NgramModel::new(history);
        for (_, seq) in
            jcdn_trace::flows::client_sequences_stream(stream, |r| r.mime == MimeType::Json)
        {
            let toks: Vec<u32> = seq.iter().map(|&(_, url)| tokens[url.0 as usize]).collect();
            model.train_sequence(&toks);
        }
        NgramPrefetcher {
            model,
            vocab,
            token_to_object: HashMap::new(),
            history: HashMap::new(),
            k,
            json_only: true,
        }
    }

    /// Serializes the trained model + vocabulary for shipping to edges
    /// (see `jcdn_ngram::codec`).
    pub fn to_bytes(&self) -> Vec<u8> {
        jcdn_ngram::codec::encode(&self.model, &self.vocab)
    }

    /// Restores a shipped model. Call
    /// [`bind_universe`][NgramPrefetcher::bind_universe] afterwards.
    pub fn from_bytes(data: &[u8], k: usize) -> Result<Self, jcdn_ngram::codec::DecodeError> {
        let (model, vocab) = jcdn_ngram::codec::decode(data, jcdn_ngram::VocabMode::Raw)?;
        Ok(NgramPrefetcher {
            model,
            vocab,
            token_to_object: HashMap::new(),
            history: HashMap::new(),
            k,
            json_only: true,
        })
    }

    /// Binds the prefetcher to a universe: object URLs are resolved against
    /// the training vocabulary so predictions can name object ids. Must be
    /// called before simulation (done automatically by
    /// [`crate::eval::compare_policies`]).
    pub fn bind_universe(&mut self, objects: &[jcdn_workload::ObjectInfo]) {
        self.token_to_object = objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| self.vocab.get(&o.url).map(|token| (token, i as u32)))
            .collect();
    }

    /// Number of universe objects the training vocabulary could name.
    pub fn bound_objects(&self) -> usize {
        self.token_to_object.len()
    }
}

impl Policy for NgramPrefetcher {
    fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
        let object = &ctx.objects[ctx.object as usize];
        if self.json_only && object.mime != MimeType::Json {
            return PolicyOutcome::default();
        }
        let Some(token) = self.vocab.get(&object.url) else {
            // URL unseen in training; nothing to predict from.
            return PolicyOutcome::default();
        };

        let history = self.history.entry(ctx.client).or_default();
        history.push(token);
        let n = self.model.max_order();
        if history.len() > n {
            let excess = history.len() - n;
            history.drain(..excess);
        }

        let prefetch = self
            .model
            .predict(history, self.k)
            .into_iter()
            .filter_map(|p| self.token_to_object.get(&p.token).copied())
            .filter(|&obj| obj != ctx.object)
            .collect();
        PolicyOutcome {
            prefetch,
            priority: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_cdnsim::{run, run_default, SimConfig};
    use jcdn_core::dataset::simulate;
    use jcdn_workload::WorkloadConfig;

    #[test]
    fn trains_and_binds_against_a_real_universe() {
        let data = simulate(&WorkloadConfig::tiny(21).scaled(0.3));
        let mut p = NgramPrefetcher::train_from_trace(&data.trace, 1, 5);
        p.bind_universe(&data.workload.objects);
        assert!(p.bound_objects() > 0, "vocabulary must cover the universe");
    }

    #[test]
    fn stream_training_over_shards_matches_whole_trace_training() {
        let data = simulate(&WorkloadConfig::tiny(21).scaled(0.3));
        let sharded = jcdn_trace::ShardedTrace::from_trace(data.trace, 4);
        let from_shards = NgramPrefetcher::train_from_stream(&sharded.stream(), 1, 5);
        let whole = sharded.into_trace();
        let from_trace = NgramPrefetcher::train_from_trace(&whole, 1, 5);
        assert_eq!(from_shards.to_bytes(), from_trace.to_bytes());
    }

    #[test]
    fn prefetching_improves_hit_ratio_on_manifest_traffic() {
        // Train on one day (seed A), deploy on another (seed B): same
        // universe shape, different arrivals.
        let train = simulate(&WorkloadConfig::tiny(31));
        let deploy = jcdn_workload::build(&WorkloadConfig::tiny(31));

        let base = run_default(&deploy, &SimConfig::default());
        let mut policy = NgramPrefetcher::train_from_trace(&train.trace, 1, 5);
        policy.bind_universe(&deploy.objects);
        let boosted = run(&deploy, &SimConfig::default(), &mut policy);

        assert!(boosted.stats.prefetch_issued > 0, "policy must prefetch");
        assert!(
            boosted.stats.prefetch_useful > 0,
            "some prefetched entries must serve demand hits"
        );
        let base_ratio = base.stats.cacheable_hit_ratio().unwrap();
        let boosted_ratio = boosted.stats.cacheable_hit_ratio().unwrap();
        assert!(
            boosted_ratio > base_ratio,
            "hit ratio must improve: {base_ratio} -> {boosted_ratio}"
        );
    }

    #[test]
    fn shipped_model_behaves_like_the_original() {
        let train = simulate(&WorkloadConfig::tiny(31).scaled(0.3));
        let original = NgramPrefetcher::train_from_trace(&train.trace, 1, 5);
        let shipped = NgramPrefetcher::from_bytes(&original.to_bytes(), 5).expect("round trip");

        let deploy = jcdn_workload::build(&WorkloadConfig::tiny(31).scaled(0.3));
        let mut a = original;
        a.bind_universe(&deploy.objects);
        let mut b = shipped;
        b.bind_universe(&deploy.objects);
        let out_a = run(&deploy, &SimConfig::default(), &mut a);
        let out_b = run(&deploy, &SimConfig::default(), &mut b);
        assert_eq!(out_a.stats.prefetch_issued, out_b.stats.prefetch_issued);
        assert_eq!(out_a.stats.hits, out_b.stats.hits);
    }

    #[test]
    fn unseen_urls_produce_no_prefetch() {
        let data = simulate(&WorkloadConfig::tiny(41).scaled(0.2));
        let mut p = NgramPrefetcher::train_from_trace(&data.trace, 1, 5);
        // Bind against a *different* universe: URLs differ, so almost
        // nothing resolves and the policy stays quiet rather than wrong.
        let other = jcdn_workload::build(&WorkloadConfig::tiny(999).scaled(0.2));
        p.bind_universe(&other.objects);
        let out = run(&other, &SimConfig::default(), &mut p);
        // No panics and no wild prefetching of unknown objects.
        assert!(out.stats.prefetch_issued < out.stats.requests / 2);
    }
}
