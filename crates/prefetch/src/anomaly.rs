//! Anomaly detection from periodicity and prediction models.
//!
//! §5 twice points at anomaly detection: "periodic information can also be
//! used for anomaly detection when an object is requested at a different
//! period than it is intended", and "prediction of clustered objects can
//! also be used for anomaly detection of unusual requests". Both detectors
//! below scan a trace offline and return flagged records.

use std::collections::HashMap;

use jcdn_ngram::{NgramModel, Vocab};
use jcdn_trace::flows::{client_sequences, FlowClient};
use jcdn_trace::{MimeType, SimTime, Trace, UrlId};

/// One flagged request.
#[derive(Clone, Debug, PartialEq)]
pub struct Anomaly {
    /// The client whose request was flagged.
    pub client: FlowClient,
    /// The requested object.
    pub url: UrlId,
    /// When it happened.
    pub time: SimTime,
    /// Why it was flagged.
    pub kind: AnomalyKind,
}

/// The detector that fired.
#[derive(Clone, Debug, PartialEq)]
pub enum AnomalyKind {
    /// The request was (near-)impossible under the sequence model:
    /// carries the stupid-backoff score it received.
    UnlikelySequence(f64),
    /// A known periodic flow deviated from its period: carries
    /// (observed gap, expected period) in seconds.
    OffPeriod(f64, f64),
}

/// Flags requests whose transition score under a trained n-gram model falls
/// below `threshold` (clustered URLs generalize across clients, per §5.2's
/// suggestion to use clustered objects for anomaly detection).
#[derive(Debug)]
pub struct SequenceAnomalyDetector {
    model: NgramModel,
    vocab: Vocab,
    /// Transitions scoring strictly below this are anomalous.
    pub threshold: f64,
}

impl SequenceAnomalyDetector {
    /// Trains on a reference trace with history length `history`.
    pub fn train(reference: &Trace, history: usize, threshold: f64) -> Self {
        let mut vocab = Vocab::clustered();
        let tokens: Vec<u32> = reference
            .url_table()
            .iter()
            .map(|u| vocab.intern(u))
            .collect();
        let mut model = NgramModel::new(history);
        for (_, seq) in client_sequences(reference, |r| r.mime == MimeType::Json) {
            let toks: Vec<u32> = seq.iter().map(|&(_, u)| tokens[u.0 as usize]).collect();
            model.train_sequence(&toks);
        }
        SequenceAnomalyDetector {
            model,
            vocab,
            threshold,
        }
    }

    /// Scans a trace; returns flagged records in time order per client.
    pub fn scan(&self, trace: &Trace) -> Vec<Anomaly> {
        let mut anomalies = Vec::new();
        for (client, seq) in client_sequences(trace, |r| r.mime == MimeType::Json) {
            let tokens: Vec<Option<u32>> = seq
                .iter()
                .map(|&(_, url)| self.vocab.get(trace.url(url)))
                .collect();
            for i in 1..seq.len() {
                let (time, url) = seq[i];
                // An entirely unknown cluster is itself anomalous.
                let Some(next) = tokens[i] else {
                    anomalies.push(Anomaly {
                        client,
                        url,
                        time,
                        kind: AnomalyKind::UnlikelySequence(0.0),
                    });
                    continue;
                };
                let start = i.saturating_sub(self.model.max_order());
                let history: Vec<u32> = tokens[start..i].iter().copied().flatten().collect();
                let score = self.model.score(&history, next);
                if score < self.threshold {
                    anomalies.push(Anomaly {
                        client,
                        url,
                        time,
                        kind: AnomalyKind::UnlikelySequence(score),
                    });
                }
            }
        }
        anomalies
    }
}

/// Flags requests in known-periodic flows that arrive far from their
/// expected schedule.
#[derive(Clone, Debug)]
pub struct PeriodAnomalyDetector {
    /// Expected period (seconds) per (client, object) flow.
    expected: HashMap<(FlowClient, UrlId), f64>,
    /// Relative deviation from the period that counts as anomalous
    /// (`0.5` = a gap under half or over 1.5× the period).
    pub tolerance: f64,
}

impl PeriodAnomalyDetector {
    /// Builds from known flow periods (e.g. a
    /// [`jcdn_core::periodicity::PeriodicityReport`]'s periodic flows).
    pub fn new(
        expected: impl IntoIterator<Item = ((FlowClient, UrlId), f64)>,
        tolerance: f64,
    ) -> Self {
        PeriodAnomalyDetector {
            expected: expected.into_iter().collect(),
            tolerance,
        }
    }

    /// Number of monitored flows.
    pub fn flow_count(&self) -> usize {
        self.expected.len()
    }

    /// Scans a trace; gaps deviating more than `tolerance × period` from
    /// the expected period are flagged (with the request that ended the
    /// gap).
    pub fn scan(&self, trace: &Trace) -> Vec<Anomaly> {
        let mut last_seen: HashMap<(FlowClient, UrlId), SimTime> = HashMap::new();
        let mut anomalies = Vec::new();
        // Records must be visited in time order.
        let mut order: Vec<usize> = (0..trace.records().len()).collect();
        order.sort_by_key(|&i| trace.records()[i].time);
        for i in order {
            let r = &trace.records()[i];
            let key = ((r.client, r.ua), r.url);
            let Some(&period) = self.expected.get(&key) else {
                continue;
            };
            if let Some(&previous) = last_seen.get(&key) {
                let gap = (r.time - previous).as_secs_f64();
                if (gap - period).abs() > self.tolerance * period {
                    anomalies.push(Anomaly {
                        client: key.0,
                        url: r.url,
                        time: r.time,
                        kind: AnomalyKind::OffPeriod(gap, period),
                    });
                }
            }
            last_seen.insert(key, r.time);
        }
        anomalies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_trace::{CacheStatus, ClientId, LogRecord, Method, RecordFlags};

    fn record(trace: &mut Trace, time: u64, client: u64, url: &str) -> LogRecord {
        let url = trace.intern_url(url);
        LogRecord {
            time: SimTime::from_secs(time),
            client: ClientId(client),
            ua: None,
            url,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 64,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        }
    }

    fn reference_trace() -> Trace {
        let mut t = Trace::new();
        // 30 clients all follow manifest → article/{id} → related.
        for c in 0..30u64 {
            for s in 0..4u64 {
                let base = c * 1000 + s * 100;
                let r = record(&mut t, base, c, "https://news-0.example/api/v2/stories/0");
                t.push(r);
                let r = record(
                    &mut t,
                    base + 10,
                    c,
                    &format!("https://news-0.example/api/articles/{}", c * 10 + s),
                );
                t.push(r);
            }
        }
        t
    }

    #[test]
    fn normal_traffic_is_not_flagged() {
        let reference = reference_trace();
        let detector = SequenceAnomalyDetector::train(&reference, 1, 0.01);
        let anomalies = detector.scan(&reference);
        assert!(
            anomalies.is_empty(),
            "training data must score clean: {anomalies:?}"
        );
    }

    #[test]
    fn injected_unusual_request_is_flagged() {
        let reference = reference_trace();
        let detector = SequenceAnomalyDetector::train(&reference, 1, 0.01);

        let mut attack = Trace::new();
        let r = record(
            &mut attack,
            0,
            99,
            "https://news-0.example/api/v2/stories/0",
        );
        attack.push(r);
        // After a manifest, fetching an admin endpoint was never observed.
        let r = record(&mut attack, 5, 99, "https://news-0.example/admin/export");
        attack.push(r);
        let anomalies = detector.scan(&attack);
        assert_eq!(anomalies.len(), 1);
        assert!(matches!(
            anomalies[0].kind,
            AnomalyKind::UnlikelySequence(score) if score < 0.01
        ));
    }

    #[test]
    fn off_period_request_is_flagged() {
        let mut t = Trace::new();
        let url_str = "https://game-0.example/telemetry/beat/0";
        for tick in 0..20u64 {
            // One tick arrives 17s late.
            let time = tick * 30 + if tick == 10 { 17 } else { 0 };
            let r = record(&mut t, time, 7, url_str);
            t.push(r);
        }
        let url = t.find_url(url_str).unwrap();
        let detector = PeriodAnomalyDetector::new([(((ClientId(7), None), url), 30.0)], 0.4);
        assert_eq!(detector.flow_count(), 1);
        let anomalies = detector.scan(&t);
        // The late tick creates one long gap (47s) and one short gap (13s).
        assert_eq!(anomalies.len(), 2, "{anomalies:?}");
        assert!(anomalies
            .iter()
            .all(|a| matches!(a.kind, AnomalyKind::OffPeriod(_, p) if p == 30.0)));
    }

    #[test]
    fn unmonitored_flows_are_ignored() {
        let mut t = Trace::new();
        let r = record(&mut t, 0, 1, "https://a.example/x");
        t.push(r);
        let r = record(&mut t, 500, 1, "https://a.example/x");
        t.push(r);
        let detector = PeriodAnomalyDetector::new([], 0.4);
        assert!(detector.scan(&t).is_empty());
    }
}
