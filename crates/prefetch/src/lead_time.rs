//! Prefetch lead-time analysis (interarrival-aware prediction).
//!
//! §5.2 closes with: "while our prediction analysis examines request
//! access order, future work can also take into account request
//! interarrival time to better inform prediction systems." This module is
//! that analysis: for every predicted transition, the *lead time* — the
//! gap between the trigger request and the predicted next request — is how
//! long a prefetched response must survive in cache (and how much time the
//! edge has to fetch it). A prediction that arrives after the demand
//! request is useless; one that arrives days early ages out.

use jcdn_ngram::eval::{split_client, Split};
use jcdn_ngram::{NgramModel, Vocab};
use jcdn_stats::ExactQuantiles;
use jcdn_trace::flows::client_sequences;
use jcdn_trace::{fnv1a, MimeType, Trace};

/// Lead-time distributions for predicted and unpredicted transitions.
#[derive(Debug, Default)]
pub struct LeadTimeReport {
    /// Gaps (seconds) of transitions the model predicted in its top-K.
    pub predicted_gaps: ExactQuantiles,
    /// Gaps of transitions the model missed.
    pub missed_gaps: ExactQuantiles,
}

impl LeadTimeReport {
    /// Fraction of *predicted* transitions whose lead time is at least
    /// `seconds` — enough slack for an origin fetch of that duration.
    pub fn predicted_with_lead_of(&mut self, seconds: f64) -> Option<f64> {
        let total = self.predicted_gaps.count();
        if total == 0 {
            return None;
        }
        // Quantile inversion through binary search over the CDF.
        let mut lo = 0.0;
        let mut hi = 1.0;
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            match self.predicted_gaps.quantile(mid) {
                Some(v) if v < seconds => lo = mid,
                _ => hi = mid,
            }
        }
        Some(1.0 - hi)
    }

    /// Median lead time of predicted transitions.
    pub fn median_predicted(&mut self) -> Option<f64> {
        self.predicted_gaps.median()
    }
}

/// Configuration for the analysis.
#[derive(Clone, Debug)]
pub struct LeadTimeConfig {
    /// N-gram history length.
    pub history: usize,
    /// Top-K window counted as "predicted".
    pub k: usize,
    /// Train split percentage (by client).
    pub train_percent: u8,
}

impl Default for LeadTimeConfig {
    fn default() -> Self {
        LeadTimeConfig {
            history: 1,
            k: 5,
            train_percent: 70,
        }
    }
}

/// Trains an n-gram model on the trace's training clients and measures the
/// lead-time distribution over held-out clients.
pub fn analyze(trace: &Trace, config: &LeadTimeConfig) -> LeadTimeReport {
    let mut vocab = Vocab::raw();
    let tokens: Vec<u32> = trace
        .url_table()
        .iter()
        .map(|url| vocab.intern(url))
        .collect();

    let sequences: Vec<(u64, Vec<(f64, u32)>)> =
        client_sequences(trace, |r| r.mime == MimeType::Json)
            .into_iter()
            .map(|((client, ua), seq)| {
                let key = fnv1a(&{
                    let mut bytes = client.0.to_le_bytes().to_vec();
                    bytes.extend_from_slice(&ua.map_or(u32::MAX, |u| u.0).to_le_bytes());
                    bytes
                });
                let timed: Vec<(f64, u32)> = seq
                    .iter()
                    .map(|&(t, url)| (t.as_secs_f64(), tokens[url.0 as usize]))
                    .collect();
                (key, timed)
            })
            .collect();

    let mut model = NgramModel::new(config.history);
    for (client, seq) in &sequences {
        if split_client(*client, config.train_percent) == Split::Train {
            let toks: Vec<u32> = seq.iter().map(|&(_, t)| t).collect();
            model.train_sequence(&toks);
        }
    }

    let mut report = LeadTimeReport::default();
    for (client, seq) in &sequences {
        if split_client(*client, config.train_percent) != Split::Test {
            continue;
        }
        let toks: Vec<u32> = seq.iter().map(|&(_, t)| t).collect();
        for i in 1..seq.len() {
            let gap = seq[i].0 - seq[i - 1].0;
            let start = i.saturating_sub(config.history);
            if model.hit(&toks[start..i], toks[i], config.k) {
                report.predicted_gaps.record(gap);
            } else {
                report.missed_gaps.record(gap);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_trace::{CacheStatus, ClientId, LogRecord, Method, RecordFlags, SimTime};

    /// Clients walk a fixed chain with 8-second think times.
    fn chain_trace() -> Trace {
        let mut t = Trace::new();
        for c in 0..40u64 {
            for s in 0..5u64 {
                let base = c * 1000 + s * 120;
                for (step, path) in ["a", "b", "c"].iter().enumerate() {
                    let url = t.intern_url(&format!("https://api-0.example/v1/{path}"));
                    t.push(LogRecord {
                        time: SimTime::from_secs(base + step as u64 * 8),
                        client: ClientId(c),
                        ua: None,
                        url,
                        method: Method::Get,
                        mime: MimeType::Json,
                        status: 200,
                        response_bytes: 64,
                        cache: CacheStatus::Hit,
                        retries: 0,
                        flags: RecordFlags::NONE,
                    });
                }
            }
        }
        t.sort_by_time();
        t
    }

    #[test]
    fn predicted_transitions_carry_their_think_time() {
        let trace = chain_trace();
        let mut report = analyze(&trace, &LeadTimeConfig::default());
        assert!(
            report.predicted_gaps.count() > 0,
            "chain must be predictable"
        );
        // In-session transitions are 8s apart; session gaps are ~96s. The
        // median predicted lead time is the think time.
        let median = report.median_predicted().unwrap();
        assert!(
            (7.0..12.0).contains(&median),
            "median predicted lead {median}"
        );
        // Nearly every predicted transition leaves >= 1s to prefetch.
        let enough = report.predicted_with_lead_of(1.0).unwrap();
        assert!(enough > 0.9, "lead >= 1s for {enough}");
        // Almost none leaves >= 10 minutes.
        let too_much = report.predicted_with_lead_of(600.0).unwrap();
        assert!(too_much < 0.2, "lead >= 600s for {too_much}");
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let mut report = analyze(&Trace::new(), &LeadTimeConfig::default());
        assert!(report.median_predicted().is_none());
        assert!(report.predicted_with_lead_of(1.0).is_none());
    }
}
