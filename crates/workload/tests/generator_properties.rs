//! Property tests over the workload generator: structural invariants must
//! hold for every seed, not just the calibrated defaults.

use jcdn_trace::MimeType;
use jcdn_workload::{build, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    // Building a workload is relatively expensive; a handful of seeds per
    // run is plenty — the point is seed-independence, not volume.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn structural_invariants_hold_for_any_seed(seed in any::<u64>()) {
        let config = WorkloadConfig::tiny(seed).scaled(0.3);
        let w = build(&config);

        // Events are time-sorted and reference valid indices.
        prop_assert!(w.events.windows(2).all(|p| p[0].time <= p[1].time));
        for e in &w.events {
            prop_assert!((e.client as usize) < w.clients.len());
            prop_assert!((e.object as usize) < w.objects.len());
        }

        // Every object belongs to a real domain, and its URL embeds that
        // domain's host.
        for o in &w.objects {
            prop_assert!((o.domain as usize) < w.domains.len());
            prop_assert!(
                o.url.contains(&w.domains[o.domain as usize].host),
                "{} not under {}",
                o.url,
                w.domains[o.domain as usize].host
            );
        }

        // Ground-truth periodic pairs reference planted periodic objects.
        for ((_, object), period) in &w.truth.periodic_pairs {
            prop_assert_eq!(w.truth.periodic_objects.get(object), Some(period));
        }

        // Manifest children are real objects distinct from their root.
        for (root, children) in &w.truth.manifest_children {
            for child in children {
                prop_assert!((*child as usize) < w.objects.len());
                prop_assert_ne!(child, root);
            }
        }

        // JSON stays the dominant content type for every seed.
        let json = w
            .events
            .iter()
            .filter(|e| w.objects[e.object as usize].mime == MimeType::Json)
            .count();
        prop_assert!(json * 2 > w.events.len(), "JSON below half");
    }

    #[test]
    fn same_seed_same_workload(seed in any::<u64>()) {
        let config = WorkloadConfig::tiny(seed).scaled(0.1);
        let a = build(&config);
        let b = build(&config);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.objects.len(), b.objects.len());
    }
}
