//! The client population.

use jcdn_trace::fnv1a;
use jcdn_ua::gen::{EmbeddedKind, UaGenerator, UaSpec};
use jcdn_ua::DeviceType;
use rand::Rng;

/// One synthetic client with its ground-truth labels.
#[derive(Clone, Debug)]
pub struct ClientInfo {
    /// Anonymized IP hash (the value that lands in the logs).
    pub ip_hash: u64,
    /// The `User-Agent` header this client sends (None ⇒ no header).
    pub ua: Option<String>,
    /// Ground-truth device type.
    pub device: DeviceType,
    /// Ground truth: is this client a browser?
    pub is_browser: bool,
    /// Relative activity weight (heavy-tailed across clients).
    pub activity: f64,
}

/// Mobile app product names used for native-app UA strings. Spread across
/// several so app-family grouping in the analysis has something to group.
pub const APP_NAMES: &[&str] = &[
    "NewsApp",
    "SportsScores",
    "ChatNow",
    "StreamBox",
    "GameParty",
    "ShopFast",
    "WeatherPulse",
    "FitTrack",
    "PayWallet",
    "RideShare",
];

/// Builds one client of the requested device class.
///
/// `browser` forces browser vs. native where the class supports both
/// (mobile). Desktop clients are always browsers (JSON from desktops is
/// overwhelmingly XHR traffic); embedded and unknown clients never are —
/// matching the paper's observation that no browser traffic appears on
/// embedded devices.
pub fn make_client<R: Rng + ?Sized>(
    rng: &mut R,
    index: usize,
    device: DeviceType,
    browser: bool,
    activity: f64,
) -> ClientInfo {
    let gen = UaGenerator::new();
    let spec = match device {
        DeviceType::Mobile => {
            if browser {
                UaSpec::MobileBrowser
            } else {
                UaSpec::MobileApp(APP_NAMES[rng.gen_range(0..APP_NAMES.len())])
            }
        }
        DeviceType::Desktop => UaSpec::DesktopBrowser,
        DeviceType::Embedded => {
            let kind = match rng.gen_range(0..100u8) {
                0..=39 => EmbeddedKind::Console,
                40..=79 => EmbeddedKind::Tv,
                80..=94 => EmbeddedKind::Watch,
                _ => EmbeddedKind::Iot,
            };
            UaSpec::Embedded(kind)
        }
        DeviceType::Unknown => match rng.gen_range(0..100u8) {
            0..=79 => UaSpec::Missing,
            80..=91 => UaSpec::Script,
            _ => UaSpec::Garbage,
        },
    };
    let (ua, truth) = gen.generate(rng, spec);
    ClientInfo {
        ip_hash: fnv1a(format!("client-{index}").as_bytes()),
        ua,
        device: truth.device,
        is_browser: truth.is_browser,
        activity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ground_truth_matches_requested_class() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let c = make_client(&mut rng, 0, DeviceType::Mobile, false, 1.0);
            assert_eq!(c.device, DeviceType::Mobile);
            assert!(!c.is_browser);

            let c = make_client(&mut rng, 1, DeviceType::Mobile, true, 1.0);
            assert!(c.is_browser);

            let c = make_client(&mut rng, 2, DeviceType::Desktop, true, 1.0);
            assert_eq!(c.device, DeviceType::Desktop);
            assert!(c.is_browser);

            let c = make_client(&mut rng, 3, DeviceType::Embedded, false, 1.0);
            assert_eq!(c.device, DeviceType::Embedded);
            assert!(!c.is_browser, "no browsers on embedded devices");

            let c = make_client(&mut rng, 4, DeviceType::Unknown, false, 1.0);
            assert_eq!(c.device, DeviceType::Unknown);
        }
    }

    #[test]
    fn unknown_clients_mostly_lack_ua() {
        let mut rng = StdRng::seed_from_u64(6);
        let missing = (0..500)
            .filter(|&i| {
                make_client(&mut rng, i, DeviceType::Unknown, false, 1.0)
                    .ua
                    .is_none()
            })
            .count();
        // ~80% configured; allow slack.
        assert!((350..450).contains(&missing), "missing UA count {missing}");
    }

    #[test]
    fn ip_hash_is_stable_per_index() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = make_client(&mut rng, 42, DeviceType::Mobile, false, 1.0);
        let b = make_client(&mut rng, 42, DeviceType::Desktop, true, 1.0);
        assert_eq!(a.ip_hash, b.ip_hash);
        let c = make_client(&mut rng, 43, DeviceType::Mobile, false, 1.0);
        assert_ne!(a.ip_hash, c.ip_hash);
    }
}
