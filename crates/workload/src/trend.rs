//! The multi-year content-type trend (Figure 1) and size trend (§4).
//!
//! Figure 1 plots the ratio of JSON to HTML requests on the CDN monthly
//! from 2016 to 2019, ending above 4×. §4 adds that the average JSON
//! response size decreased ~28% since 2016. Replaying 3½ years of
//! request-level traffic would add nothing — the figure is about monthly
//! aggregates — so the trend is modelled directly at monthly resolution:
//! JSON volume follows logistic growth (API-first apps rolling out),
//! HTML volume stays roughly flat, and a seeded noise term keeps the
//! series from being suspiciously smooth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One month of aggregate counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonthPoint {
    /// Months since 2016-01 (0-based).
    pub month: usize,
    /// JSON requests observed that month (scaled units).
    pub json_requests: f64,
    /// HTML requests observed that month (scaled units).
    pub html_requests: f64,
    /// Mean JSON response size that month (bytes).
    pub json_mean_size: f64,
}

impl MonthPoint {
    /// The Figure 1 y-value: JSON:HTML request ratio.
    pub fn ratio(&self) -> f64 {
        self.json_requests / self.html_requests
    }

    /// Human-readable `YYYY-MM` label, anchored at 2016-01.
    pub fn label(&self) -> String {
        format!("{}-{:02}", 2016 + self.month / 12, self.month % 12 + 1)
    }
}

/// The trend generator.
#[derive(Clone, Debug)]
pub struct TrendModel {
    /// Number of months from 2016-01 (paper window ends mid-2019 ⇒ 42).
    pub months: usize,
    /// Ratio at the start of the window (JSON just below HTML in 2016).
    pub start_ratio: f64,
    /// Ratio at the end of the window (paper: "over 4×").
    pub end_ratio: f64,
    /// Mean JSON size at the start (bytes).
    pub start_json_size: f64,
    /// Total relative size decrease over the window (paper: ~28%).
    pub size_decrease: f64,
    /// Multiplicative month-to-month noise amplitude.
    pub noise: f64,
    /// Seed for the noise.
    pub seed: u64,
}

impl Default for TrendModel {
    fn default() -> Self {
        TrendModel {
            months: 42,
            start_ratio: 0.85,
            end_ratio: 4.3,
            start_json_size: 2500.0,
            size_decrease: 0.28,
            noise: 0.04,
            seed: 2016,
        }
    }
}

impl TrendModel {
    /// Generates the monthly series.
    pub fn generate(&self) -> Vec<MonthPoint> {
        assert!(self.months >= 2, "need at least two months");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let html_base = 1_000_000.0;
        (0..self.months)
            .map(|m| {
                let progress = m as f64 / (self.months - 1) as f64;
                // Logistic interpolation between start and end ratios: slow
                // start, fast middle, saturating end — the classic adoption
                // curve Figure 1 shows.
                let logistic = 1.0 / (1.0 + (-(progress * 8.0 - 4.0)).exp());
                let clean_ratio = self.start_ratio + (self.end_ratio - self.start_ratio) * logistic;
                let wiggle = |rng: &mut StdRng| 1.0 + rng.gen_range(-self.noise..self.noise);

                // HTML drifts mildly; JSON follows the ratio.
                let html = html_base * (1.0 + 0.1 * progress) * wiggle(&mut rng);
                let json = clean_ratio * html * wiggle(&mut rng);

                let size =
                    self.start_json_size * (1.0 - self.size_decrease * progress) * wiggle(&mut rng);
                MonthPoint {
                    month: m,
                    json_requests: json,
                    html_requests: html,
                    json_mean_size: size,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_grows_from_parity_to_over_four() {
        let series = TrendModel::default().generate();
        assert_eq!(series.len(), 42);
        let first = series.first().unwrap().ratio();
        let last = series.last().unwrap().ratio();
        assert!((0.7..1.1).contains(&first), "start ratio {first}");
        assert!(last > 4.0, "end ratio {last} (paper: >4x)");
    }

    #[test]
    fn growth_is_broadly_monotone() {
        let series = TrendModel::default().generate();
        // Noise allows local dips; quarters must still be ordered.
        let quarter = |start: usize| -> f64 {
            series[start..start + 3]
                .iter()
                .map(MonthPoint::ratio)
                .sum::<f64>()
                / 3.0
        };
        assert!(quarter(0) < quarter(18));
        assert!(quarter(18) < quarter(39));
    }

    #[test]
    fn json_size_decreases_by_about_28_percent() {
        let series = TrendModel::default().generate();
        let first = series.first().unwrap().json_mean_size;
        let last = series.last().unwrap().json_mean_size;
        let decrease = 1.0 - last / first;
        assert!((0.20..0.36).contains(&decrease), "size decrease {decrease}");
    }

    #[test]
    fn labels_are_calendar_months() {
        let series = TrendModel::default().generate();
        assert_eq!(series[0].label(), "2016-01");
        assert_eq!(series[11].label(), "2016-12");
        assert_eq!(series[12].label(), "2017-01");
        assert_eq!(series[41].label(), "2019-06");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TrendModel::default().generate();
        let b = TrendModel::default().generate();
        assert_eq!(a, b);
        let c = TrendModel {
            seed: 99,
            ..TrendModel::default()
        }
        .generate();
        assert_ne!(a, c);
    }
}
