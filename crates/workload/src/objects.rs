//! Domains and objects of the synthetic universe.

use jcdn_trace::{MimeType, SimDuration};

use crate::industry::{CachePolicy, IndustryCategory};

/// One CDN customer domain.
#[derive(Clone, Debug)]
pub struct DomainInfo {
    /// Hostname, e.g. `sports-17.example`.
    pub host: String,
    /// Ground-truth industry category.
    pub industry: IndustryCategory,
    /// Customer-configured cache policy.
    pub cache_policy: CachePolicy,
    /// Relative request-volume weight of this domain.
    pub popularity: f64,
}

/// One addressable object (URL) in the universe.
#[derive(Clone, Debug)]
pub struct ObjectInfo {
    /// Full URL.
    pub url: String,
    /// Owning domain (index into [`crate::Workload::domains`]).
    pub domain: u32,
    /// Response content type.
    pub mime: MimeType,
    /// Whether the customer configuration allows caching this object.
    pub cacheable: bool,
    /// Cache TTL when cacheable.
    pub ttl: SimDuration,
    /// Median response size in bytes.
    pub size_median: f64,
    /// Log-normal σ of the response size (0 ⇒ fixed size).
    pub size_sigma: f64,
    /// For manifest objects: the JSON body served, containing URL
    /// references to follow-up objects (Table 1's pattern). `None` for
    /// everything else (bodies are synthesized as opaque bytes).
    pub body: Option<String>,
}

impl ObjectInfo {
    /// Samples a concrete response size for one request.
    ///
    /// Static objects return their fixed size; dynamic objects draw
    /// log-normally around the median. Never returns 0 — every response in
    /// the logs carries at least a JSON `{}`.
    pub fn sample_size<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if let Some(body) = &self.body {
            return body.len() as u64;
        }
        let size = if self.size_sigma == 0.0 {
            self.size_median
        } else {
            use jcdn_stats::dist::{LogNormal, Sample};
            LogNormal::from_median(self.size_median.max(2.0), self.size_sigma).sample(rng)
        };
        (size.round() as u64).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn object(median: f64, sigma: f64, body: Option<String>) -> ObjectInfo {
        ObjectInfo {
            url: "https://h.example/x".into(),
            domain: 0,
            mime: MimeType::Json,
            cacheable: true,
            ttl: SimDuration::from_secs(60),
            size_median: median,
            size_sigma: sigma,
            body,
        }
    }

    #[test]
    fn fixed_size_objects_are_deterministic() {
        let o = object(500.0, 0.0, None);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(o.sample_size(&mut rng), 500);
        assert_eq!(o.sample_size(&mut rng), 500);
    }

    #[test]
    fn dynamic_sizes_vary_around_median() {
        let o = object(1000.0, 0.5, None);
        let mut rng = StdRng::seed_from_u64(2);
        let sizes: Vec<u64> = (0..2000).map(|_| o.sample_size(&mut rng)).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!((800..1200).contains(&median), "median {median}");
        assert!(sizes.iter().any(|&s| s != sizes[0]), "sizes must vary");
    }

    #[test]
    fn manifest_bodies_pin_the_size() {
        let body = r#"{"stories":[{"id":1}]}"#.to_owned();
        let o = object(9999.0, 1.0, Some(body.clone()));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(o.sample_size(&mut rng), body.len() as u64);
    }

    #[test]
    fn sizes_never_zero() {
        let o = object(0.1, 0.0, None);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(o.sample_size(&mut rng) >= 2);
    }
}
