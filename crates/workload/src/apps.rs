//! Application behaviour models.
//!
//! Each behaviour turns (client, RNG, duration) into a list of timed object
//! requests. Three families cover the paper's traffic patterns:
//!
//! * [`ManifestApp`] — Table 1's pattern: fetch a root manifest, then a
//!   few referenced articles, then each article's media, with human think
//!   times. Sessions arrive as a Poisson process. Browser page loads use
//!   the same shape with an HTML root ("browser traffic is guided by an
//!   HTML manifest file").
//! * [`PeriodicPoller`] — §5.1's machine-to-machine flows: one object,
//!   fixed period with bounded jitter, GET (score polling) or POST
//!   (telemetry).
//! * [`InteractiveApi`] — unstructured human-triggered API traffic:
//!   Poisson arrivals over a Zipf-weighted object set with a configurable
//!   POST fraction.

use jcdn_stats::dist::{Exponential, Sample, Zipf};
use jcdn_trace::{Method, SimDuration, SimTime};
use rand::Rng;

/// One generated request: when, what, how.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppRequest {
    /// Request time.
    pub time: SimTime,
    /// Object index in the universe.
    pub object: u32,
    /// HTTP method.
    pub method: Method,
}

/// Table 1's manifest-then-content pattern.
#[derive(Clone, Debug)]
pub struct ManifestApp {
    /// The root manifest object (JSON manifest or HTML page).
    pub root: u32,
    /// Candidate article objects referenced by the manifest.
    pub articles: Vec<u32>,
    /// Per-article media objects (parallel to `articles`).
    pub media: Vec<Vec<u32>>,
    /// Zipf exponent over articles (popular stories dominate).
    pub article_zipf: f64,
    /// Expected sessions per hour for this client.
    pub sessions_per_hour: f64,
    /// Articles opened per session: uniform in `min..=max`.
    pub articles_per_session: (usize, usize),
    /// Mean think time between in-session requests.
    pub mean_think: SimDuration,
}

impl ManifestApp {
    /// Generates this app's requests over `[0, duration)`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        duration: SimDuration,
        out: &mut Vec<AppRequest>,
    ) {
        if self.sessions_per_hour <= 0.0 {
            return;
        }
        let session_gap = Exponential::new(self.sessions_per_hour / 3600.0);
        let think = Exponential::new(1.0 / self.mean_think.as_secs_f64().max(0.1));
        let zipf = if self.articles.is_empty() {
            None
        } else {
            Some(Zipf::new(self.articles.len(), self.article_zipf))
        };
        let mut t = session_gap.sample(rng);
        let end = duration.as_secs_f64();
        while t < end {
            // 1) the manifest itself
            out.push(AppRequest {
                time: SimTime::from_secs_f64(t),
                object: self.root,
                method: Method::Get,
            });
            let mut cursor = t;
            if let Some(zipf) = &zipf {
                let (lo, hi) = self.articles_per_session;
                let count = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                for _ in 0..count {
                    cursor += think.sample(rng);
                    if cursor >= end {
                        break;
                    }
                    // 2) a referenced article
                    let idx = zipf.sample(rng) - 1;
                    out.push(AppRequest {
                        time: SimTime::from_secs_f64(cursor),
                        object: self.articles[idx],
                        method: Method::Get,
                    });
                    // 3) the article's media, shortly after
                    for &m in &self.media[idx] {
                        cursor += 0.2 + think.sample(rng) * 0.1;
                        if cursor >= end {
                            break;
                        }
                        out.push(AppRequest {
                            time: SimTime::from_secs_f64(cursor),
                            object: m,
                            method: Method::Get,
                        });
                    }
                }
            }
            t += session_gap.sample(rng);
        }
    }

    /// Expected number of requests over `duration` (used for calibration).
    pub fn expected_requests(&self, duration: SimDuration) -> f64 {
        let sessions = self.sessions_per_hour * duration.as_secs_f64() / 3600.0;
        let (lo, hi) = self.articles_per_session;
        let articles = (lo + hi) as f64 / 2.0;
        let media_per_article = if self.articles.is_empty() {
            0.0
        } else {
            self.media.iter().map(Vec::len).sum::<usize>() as f64 / self.articles.len() as f64
        };
        sessions * (1.0 + articles * (1.0 + media_per_article))
    }
}

/// §5.1's periodic machine-to-machine flow.
#[derive(Clone, Debug)]
pub struct PeriodicPoller {
    /// The polled/reported object.
    pub object: u32,
    /// The planted period.
    pub period: SimDuration,
    /// Uniform jitter applied to each tick, `±jitter`.
    pub jitter: SimDuration,
    /// Phase offset of the first tick within the active window.
    pub phase: SimDuration,
    /// When the poller starts (apps poll while they are open/awake, not
    /// necessarily the whole capture).
    pub start: SimDuration,
    /// How long the poller stays active from `start`.
    pub active: SimDuration,
    /// GET for polls, POST for telemetry uploads.
    pub method: Method,
}

impl PeriodicPoller {
    /// A poller active over the whole capture.
    pub fn always_on(
        object: u32,
        period: SimDuration,
        jitter: SimDuration,
        phase: SimDuration,
        method: Method,
        duration: SimDuration,
    ) -> Self {
        PeriodicPoller {
            object,
            period,
            jitter,
            phase,
            start: SimDuration::ZERO,
            active: duration,
            method,
        }
    }

    /// Generates tick requests over the active window clipped to
    /// `[0, duration)`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        duration: SimDuration,
        out: &mut Vec<AppRequest>,
    ) {
        let period = self.period.as_secs_f64();
        assert!(period > 0.0, "period must be positive");
        let jitter = self.jitter.as_secs_f64();
        let start = self.start.as_secs_f64();
        let end = (start + self.active.as_secs_f64()).min(duration.as_secs_f64());
        let mut tick = start + self.phase.as_secs_f64();
        while tick < end {
            let jittered = if jitter > 0.0 {
                (tick + rng.gen_range(-jitter..=jitter)).max(0.0)
            } else {
                tick
            };
            if jittered < end {
                out.push(AppRequest {
                    time: SimTime::from_secs_f64(jittered),
                    object: self.object,
                    method: self.method,
                });
            }
            tick += period;
        }
    }

    /// Expected number of requests given the capture `duration`.
    pub fn expected_requests(&self, duration: SimDuration) -> f64 {
        let start = self.start.as_secs_f64();
        let end = (start + self.active.as_secs_f64()).min(duration.as_secs_f64());
        ((end - start) / self.period.as_secs_f64()).max(0.0)
    }
}

/// Unstructured Poisson API traffic.
#[derive(Clone, Debug)]
pub struct InteractiveApi {
    /// Candidate objects. Order matters: the chain successor of
    /// `objects[i]` is `objects[(i + 1) % len]`.
    pub objects: Vec<u32>,
    /// Zipf exponent over `objects`.
    pub zipf: f64,
    /// Expected requests per hour.
    pub rate_per_hour: f64,
    /// Fraction of requests that are POSTs.
    pub post_fraction: f64,
    /// Probability that a request follows the application's step chain
    /// (`objects[i] → objects[i+1]`) instead of an independent Zipf draw.
    /// API traffic has real sequential structure — login → config → list →
    /// item — which is exactly what §5.2's n-gram model learns.
    pub chain_prob: f64,
}

impl InteractiveApi {
    /// Generates requests over `[0, duration)`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        duration: SimDuration,
        out: &mut Vec<AppRequest>,
    ) {
        if self.objects.is_empty() || self.rate_per_hour <= 0.0 {
            return;
        }
        let gap = Exponential::new(self.rate_per_hour / 3600.0);
        let zipf = Zipf::new(self.objects.len(), self.zipf);
        let end = duration.as_secs_f64();
        let mut t = gap.sample(rng);
        let mut last: Option<usize> = None;
        while t < end {
            let index = match last {
                Some(prev) if rng.gen_bool(self.chain_prob.clamp(0.0, 1.0)) => {
                    (prev + 1) % self.objects.len()
                }
                _ => zipf.sample(rng) - 1,
            };
            last = Some(index);
            let object = self.objects[index];
            let method = if rng.gen_bool(self.post_fraction.clamp(0.0, 1.0)) {
                Method::Post
            } else {
                Method::Get
            };
            out.push(AppRequest {
                time: SimTime::from_secs_f64(t),
                object,
                method,
            });
            t += gap.sample(rng);
        }
    }

    /// Expected number of requests over `duration`.
    pub fn expected_requests(&self, duration: SimDuration) -> f64 {
        self.rate_per_hour * duration.as_secs_f64() / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xAB)
    }

    #[test]
    fn manifest_sessions_follow_the_pattern() {
        let app = ManifestApp {
            root: 0,
            articles: vec![1, 2, 3],
            media: vec![vec![10], vec![11], vec![12]],
            article_zipf: 1.0,
            sessions_per_hour: 30.0,
            articles_per_session: (1, 2),
            mean_think: SimDuration::from_secs(5),
        };
        let mut out = Vec::new();
        app.generate(&mut rng(), SimDuration::from_secs(3600), &mut out);
        assert!(!out.is_empty());
        // Every session starts with the root; articles/media follow.
        let roots = out.iter().filter(|r| r.object == 0).count();
        assert!(roots >= 15, "roots {roots}");
        // All manifest traffic is download traffic.
        assert!(out.iter().all(|r| r.method == Method::Get));
        // Media requests follow their article: whenever object 10 appears,
        // the previous article request must be article 1.
        for (i, r) in out.iter().enumerate() {
            if r.object == 10 {
                let prev_article = out[..i].iter().rev().find(|p| (1..=3).contains(&p.object));
                assert_eq!(prev_article.map(|p| p.object), Some(1));
            }
        }
        // Times are non-decreasing within generation? (Each session's
        // internal cursor advances; sessions advance too.)
        let mut sorted = out.clone();
        sorted.sort_by_key(|r| r.time);
        // Generation is almost sorted; just verify count stability.
        assert_eq!(sorted.len(), out.len());
    }

    #[test]
    fn manifest_expected_requests_close_to_actual() {
        let app = ManifestApp {
            root: 0,
            articles: vec![1, 2, 3, 4],
            media: vec![vec![10, 11], vec![12], vec![], vec![13]],
            article_zipf: 0.8,
            sessions_per_hour: 60.0,
            articles_per_session: (2, 2),
            mean_think: SimDuration::from_secs(2),
        };
        let mut out = Vec::new();
        app.generate(&mut rng(), SimDuration::from_secs(7200), &mut out);
        let expected = app.expected_requests(SimDuration::from_secs(7200));
        let actual = out.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.25,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn poller_ticks_at_its_period() {
        let p = PeriodicPoller::always_on(
            7,
            SimDuration::from_secs(30),
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
            Method::Post,
            SimDuration::from_secs(3600),
        );
        let mut out = Vec::new();
        p.generate(&mut rng(), SimDuration::from_secs(3600), &mut out);
        assert!((115..=121).contains(&out.len()), "{} ticks", out.len());
        assert!(out
            .iter()
            .all(|r| r.method == Method::Post && r.object == 7));
        // Mean gap ≈ period.
        let mut times: Vec<f64> = out.iter().map(|r| r.time.as_secs_f64()).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean gap {mean}");
    }

    #[test]
    fn poller_without_jitter_is_exact() {
        let p = PeriodicPoller::always_on(
            1,
            SimDuration::from_secs(60),
            SimDuration::ZERO,
            SimDuration::ZERO,
            Method::Get,
            SimDuration::from_secs(600),
        );
        let mut out = Vec::new();
        p.generate(&mut rng(), SimDuration::from_secs(600), &mut out);
        let times: Vec<u64> = out.iter().map(|r| r.time.as_secs()).collect();
        assert_eq!(times, vec![0, 60, 120, 180, 240, 300, 360, 420, 480, 540]);
    }

    #[test]
    fn interactive_rate_and_post_fraction() {
        let api = InteractiveApi {
            objects: (0..20).collect(),
            zipf: 1.0,
            rate_per_hour: 360.0,
            post_fraction: 0.25,
            chain_prob: 0.0,
        };
        let mut out = Vec::new();
        api.generate(&mut rng(), SimDuration::from_secs(3600 * 4), &mut out);
        let expected = api.expected_requests(SimDuration::from_secs(3600 * 4));
        assert!(
            ((out.len() as f64) - expected).abs() / expected < 0.15,
            "expected {expected}, got {}",
            out.len()
        );
        let posts = out.iter().filter(|r| r.method == Method::Post).count();
        let frac = posts as f64 / out.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "post fraction {frac}");
    }

    #[test]
    fn poller_respects_its_session_window() {
        let p = PeriodicPoller {
            object: 2,
            period: SimDuration::from_secs(30),
            jitter: SimDuration::ZERO,
            phase: SimDuration::ZERO,
            start: SimDuration::from_secs(1000),
            active: SimDuration::from_secs(300),
            method: Method::Get,
        };
        let mut out = Vec::new();
        p.generate(&mut rng(), SimDuration::from_secs(86_400), &mut out);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| {
            let t = r.time.as_secs();
            (1000..1300).contains(&t)
        }));
        assert!((p.expected_requests(SimDuration::from_secs(86_400)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn poller_window_clips_at_capture_end() {
        let p = PeriodicPoller {
            object: 2,
            period: SimDuration::from_secs(60),
            jitter: SimDuration::ZERO,
            phase: SimDuration::ZERO,
            start: SimDuration::from_secs(500),
            active: SimDuration::from_secs(10_000),
            method: Method::Get,
        };
        let mut out = Vec::new();
        p.generate(&mut rng(), SimDuration::from_secs(600), &mut out);
        // Active window [500, 600): ticks at 500 and 560.
        let times: Vec<u64> = out.iter().map(|r| r.time.as_secs()).collect();
        assert_eq!(times, vec![500, 560]);
    }

    #[test]
    fn chain_probability_one_walks_the_cycle() {
        let api = InteractiveApi {
            objects: vec![10, 20, 30],
            zipf: 1.0,
            rate_per_hour: 600.0,
            post_fraction: 0.0,
            chain_prob: 1.0,
        };
        let mut out = Vec::new();
        api.generate(&mut rng(), SimDuration::from_secs(3600), &mut out);
        assert!(out.len() > 50);
        // After the first (Zipf) draw, every request follows the cycle.
        for pair in out.windows(2) {
            let prev = api
                .objects
                .iter()
                .position(|&o| o == pair[0].object)
                .unwrap();
            let next = api
                .objects
                .iter()
                .position(|&o| o == pair[1].object)
                .unwrap();
            assert_eq!(next, (prev + 1) % 3, "chain must be followed exactly");
        }
    }

    #[test]
    fn chain_probability_zero_is_zipf_only() {
        let api = InteractiveApi {
            objects: vec![0, 1, 2, 3, 4],
            zipf: 1.0,
            rate_per_hour: 2000.0,
            post_fraction: 0.0,
            chain_prob: 0.0,
        };
        let mut out = Vec::new();
        api.generate(&mut rng(), SimDuration::from_secs(3600), &mut out);
        // With pure Zipf draws the exact-successor rate is ~1/5 — far from
        // the chain's 100%.
        let follows = out
            .windows(2)
            .filter(|p| {
                let prev = p[0].object as usize;
                p[1].object as usize == (prev + 1) % 5
            })
            .count();
        let rate = follows as f64 / (out.len() - 1) as f64;
        assert!(
            rate < 0.5,
            "successor rate {rate} suggests chaining leaked in"
        );
    }

    #[test]
    fn empty_or_zero_rate_apps_generate_nothing() {
        let mut out = Vec::new();
        InteractiveApi {
            objects: vec![],
            zipf: 1.0,
            rate_per_hour: 100.0,
            post_fraction: 0.0,
            chain_prob: 0.0,
        }
        .generate(&mut rng(), SimDuration::from_secs(600), &mut out);
        InteractiveApi {
            objects: vec![1],
            zipf: 1.0,
            rate_per_hour: 0.0,
            post_fraction: 0.0,
            chain_prob: 0.0,
        }
        .generate(&mut rng(), SimDuration::from_secs(600), &mut out);
        ManifestApp {
            root: 0,
            articles: vec![],
            media: vec![],
            article_zipf: 1.0,
            sessions_per_hour: 0.0,
            articles_per_session: (1, 1),
            mean_think: SimDuration::from_secs(1),
        }
        .generate(&mut rng(), SimDuration::from_secs(600), &mut out);
        assert!(out.is_empty());
    }
}
