//! Workload configuration and the paper-calibrated population targets.

use jcdn_trace::SimDuration;

/// The population shares the generator is calibrated to — the numbers §4
/// and §5 of the paper report. Tests and the reproduction harness compare
/// the analyzed trace against these.
#[derive(Clone, Debug)]
pub struct PopulationTargets {
    /// Share of requests from mobile devices (paper: ≥ 0.55).
    pub mobile_request_share: f64,
    /// Share of requests from embedded devices (paper: ≈ 0.12).
    pub embedded_request_share: f64,
    /// Share of requests from desktops (paper: ≈ 0.09, the remainder after
    /// Unknown's 24%).
    pub desktop_request_share: f64,
    /// Share of all requests issued by browsers (paper: ≈ 0.12).
    pub browser_share: f64,
    /// Share of all requests issued by *mobile* browsers (paper: 0.025).
    pub mobile_browser_share: f64,
    /// Share of GET among JSON requests (paper: 0.84).
    pub get_share: f64,
    /// Share of JSON request volume that is uncacheable (paper: ≈ 0.55).
    pub uncacheable_share: f64,
    /// Share of JSON requests belonging to periodic flows (paper: 0.063).
    pub periodic_share: f64,
    /// Share of periodic requests that are uploads (paper: 0.78).
    pub periodic_upload_share: f64,
}

impl Default for PopulationTargets {
    fn default() -> Self {
        PopulationTargets {
            mobile_request_share: 0.55,
            embedded_request_share: 0.12,
            desktop_request_share: 0.09,
            browser_share: 0.12,
            mobile_browser_share: 0.025,
            get_share: 0.84,
            uncacheable_share: 0.55,
            periodic_share: 0.063,
            periodic_upload_share: 0.78,
        }
    }
}

/// Log-normal size models per content type, calibrated to §4: JSON is 24%
/// smaller than HTML at the median and 87% smaller at the 75th percentile
/// (JSON bodies are small and tight; HTML is heavy-tailed).
#[derive(Clone, Copy, Debug)]
pub struct SizeModels {
    /// (median bytes, σ) for JSON responses.
    pub json: (f64, f64),
    /// (median bytes, σ) for HTML responses.
    pub html: (f64, f64),
    /// (median bytes, σ) for images.
    pub image: (f64, f64),
}

impl Default for SizeModels {
    fn default() -> Self {
        // median ratio 1800/2400 = 0.76 → 24% smaller at the median.
        // p75 ratio = 0.76 · exp(0.6745·(σj − σh)) = 0.76 · e^{−1.72} ≈ 0.13
        // → 87% smaller at p75.
        SizeModels {
            json: (1800.0, 0.55),
            html: (2400.0, 3.10),
            image: (24_000.0, 1.0),
        }
    }
}

/// Full generator configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Dataset label (Table 2 row name).
    pub name: String,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Simulated capture duration.
    pub duration: SimDuration,
    /// Number of customer domains.
    pub domains: usize,
    /// Number of clients.
    pub clients: usize,
    /// Approximate total number of request events to generate.
    pub target_events: usize,
    /// Population shares to calibrate against.
    pub targets: PopulationTargets,
    /// Size models per content type.
    pub sizes: SizeModels,
}

impl WorkloadConfig {
    /// The short-term dataset: paper = 25M logs / 10 min / ~5K domains over
    /// the whole network. Scaled 1:50 by default (see EXPERIMENTS.md).
    pub fn short_term(seed: u64) -> Self {
        WorkloadConfig {
            name: "Short-term".into(),
            seed,
            duration: SimDuration::from_secs(600),
            domains: 600,
            clients: 12_000,
            target_events: 500_000,
            targets: PopulationTargets::default(),
            sizes: SizeModels::default(),
        }
    }

    /// The long-term dataset: paper = 10M logs / 24 h / ~170 domains from
    /// three vantage points. Domain count kept paper-exact; volume scaled.
    pub fn long_term(seed: u64) -> Self {
        WorkloadConfig {
            name: "Long-term".into(),
            seed,
            duration: SimDuration::DAY,
            domains: 170,
            clients: 3_000,
            target_events: 400_000,
            targets: PopulationTargets::default(),
            sizes: SizeModels::default(),
        }
    }

    /// A small configuration for unit/integration tests (seconds to build,
    /// still statistically meaningful).
    pub fn tiny(seed: u64) -> Self {
        WorkloadConfig {
            name: "Tiny".into(),
            seed,
            duration: SimDuration::from_secs(300),
            domains: 40,
            clients: 600,
            target_events: 30_000,
            targets: PopulationTargets::default(),
            sizes: SizeModels::default(),
        }
    }

    /// Returns a copy scaled by `factor` in volume (clients, events) while
    /// keeping shares and duration fixed.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        self.clients = ((self.clients as f64 * factor).round() as usize).max(10);
        self.target_events = ((self.target_events as f64 * factor).round() as usize).max(100);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_targets_match_paper() {
        let t = PopulationTargets::default();
        assert_eq!(t.get_share, 0.84);
        assert_eq!(t.periodic_share, 0.063);
        let unknown =
            1.0 - t.mobile_request_share - t.embedded_request_share - t.desktop_request_share;
        assert!((unknown - 0.24).abs() < 1e-9, "Unknown share {unknown}");
    }

    #[test]
    fn size_models_encode_the_paper_ratios() {
        let s = SizeModels::default();
        let (jm, js) = s.json;
        let (hm, hs) = s.html;
        let median_ratio = jm / hm;
        assert!(
            (median_ratio - 0.76).abs() < 0.02,
            "median ratio {median_ratio}"
        );
        // p75 of a log-normal = median · exp(0.6745σ).
        let p75_ratio = (jm * (0.6745 * js).exp()) / (hm * (0.6745 * hs).exp());
        assert!(
            (0.10..0.17).contains(&p75_ratio),
            "p75 ratio {p75_ratio} (paper: 0.13)"
        );
    }

    #[test]
    fn presets_have_paper_shapes() {
        let short = WorkloadConfig::short_term(1);
        assert_eq!(short.duration.as_secs(), 600);
        let long = WorkloadConfig::long_term(1);
        assert_eq!(long.duration.as_secs(), 86_400);
        assert_eq!(long.domains, 170);
        assert!(short.domains > long.domains);
    }

    #[test]
    fn scaling_changes_volume_not_shape() {
        let base = WorkloadConfig::tiny(1);
        let scaled = base.clone().scaled(0.5);
        assert_eq!(scaled.clients, base.clients / 2);
        assert_eq!(scaled.duration, base.duration);
        assert_eq!(scaled.domains, base.domains);
    }
}
