//! Industry categories and their cacheability profiles (Figure 4).

use serde::{Deserialize, Serialize};

/// The eleven industry categories of Figure 4's heatmap.
///
/// The paper categorizes domains with a commercial service \[10\]; here the
/// category is ground truth carried by each synthetic domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IndustryCategory {
    /// News and media publishing.
    NewsMedia,
    /// Sports scores and coverage.
    Sports,
    /// Entertainment portals.
    Entertainment,
    /// Banks, brokerages, payments.
    FinancialServices,
    /// Video/audio streaming.
    Streaming,
    /// Online gaming.
    Gaming,
    /// Retail and e-commerce.
    Ecommerce,
    /// SaaS and technology APIs.
    Technology,
    /// Travel and hospitality.
    Travel,
    /// Social networks and messaging.
    Social,
    /// Advertising, tracking, and analytics beacons.
    Advertising,
}

impl IndustryCategory {
    /// All categories, in the heatmap's row order.
    pub const ALL: [IndustryCategory; 11] = [
        IndustryCategory::NewsMedia,
        IndustryCategory::Sports,
        IndustryCategory::Entertainment,
        IndustryCategory::FinancialServices,
        IndustryCategory::Streaming,
        IndustryCategory::Gaming,
        IndustryCategory::Ecommerce,
        IndustryCategory::Technology,
        IndustryCategory::Travel,
        IndustryCategory::Social,
        IndustryCategory::Advertising,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            IndustryCategory::NewsMedia => "News/Media",
            IndustryCategory::Sports => "Sports",
            IndustryCategory::Entertainment => "Entertainment",
            IndustryCategory::FinancialServices => "Financial Services",
            IndustryCategory::Streaming => "Streaming",
            IndustryCategory::Gaming => "Gaming",
            IndustryCategory::Ecommerce => "E-commerce",
            IndustryCategory::Technology => "Technology",
            IndustryCategory::Travel => "Travel",
            IndustryCategory::Social => "Social",
            IndustryCategory::Advertising => "Advertising",
        }
    }

    /// The probability that a domain of this category is *never* cacheable,
    /// and (independently given not-never) *always* cacheable; the rest are
    /// mixed. Tuned to Figure 4's reading: "Financial Service, Streaming,
    /// and Gaming domains are not cacheable … the majority of News/Media,
    /// Sports, and Entertainment domains are mostly cacheable", with ≈ 50%
    /// of all domains never-cacheable and ≈ 30% always-cacheable overall.
    pub fn cache_profile(self) -> CacheProfile {
        match self {
            IndustryCategory::NewsMedia => CacheProfile {
                never: 0.10,
                always: 0.70,
            },
            IndustryCategory::Sports => CacheProfile {
                never: 0.15,
                always: 0.65,
            },
            IndustryCategory::Entertainment => CacheProfile {
                never: 0.20,
                always: 0.60,
            },
            IndustryCategory::FinancialServices => CacheProfile {
                never: 0.90,
                always: 0.02,
            },
            IndustryCategory::Streaming => CacheProfile {
                never: 0.85,
                always: 0.05,
            },
            IndustryCategory::Gaming => CacheProfile {
                never: 0.85,
                always: 0.05,
            },
            IndustryCategory::Ecommerce => CacheProfile {
                never: 0.48,
                always: 0.25,
            },
            IndustryCategory::Technology => CacheProfile {
                never: 0.38,
                always: 0.34,
            },
            IndustryCategory::Travel => CacheProfile {
                never: 0.45,
                always: 0.28,
            },
            IndustryCategory::Social => CacheProfile {
                never: 0.75,
                always: 0.05,
            },
            IndustryCategory::Advertising => CacheProfile {
                never: 0.70,
                always: 0.10,
            },
        }
    }

    /// Relative share of domains per category (sums to ~1). Uncacheable
    /// industries get enough weight that uncacheable *request volume* lands
    /// near the paper's 55%.
    pub fn domain_weight(self) -> f64 {
        match self {
            IndustryCategory::NewsMedia => 0.12,
            IndustryCategory::Sports => 0.07,
            IndustryCategory::Entertainment => 0.08,
            IndustryCategory::FinancialServices => 0.12,
            IndustryCategory::Streaming => 0.10,
            IndustryCategory::Gaming => 0.10,
            IndustryCategory::Ecommerce => 0.10,
            IndustryCategory::Technology => 0.11,
            IndustryCategory::Travel => 0.06,
            IndustryCategory::Social => 0.08,
            IndustryCategory::Advertising => 0.06,
        }
    }

    /// Hostname suffix used when synthesizing domain names.
    pub fn host_token(self) -> &'static str {
        match self {
            IndustryCategory::NewsMedia => "news",
            IndustryCategory::Sports => "sports",
            IndustryCategory::Entertainment => "ent",
            IndustryCategory::FinancialServices => "bank",
            IndustryCategory::Streaming => "stream",
            IndustryCategory::Gaming => "game",
            IndustryCategory::Ecommerce => "shop",
            IndustryCategory::Technology => "api",
            IndustryCategory::Travel => "travel",
            IndustryCategory::Social => "social",
            IndustryCategory::Advertising => "ads",
        }
    }
}

/// Per-category probabilities of the domain-level cache policy.
#[derive(Clone, Copy, Debug)]
pub struct CacheProfile {
    /// P(domain is never cacheable).
    pub never: f64,
    /// P(domain is always cacheable).
    pub always: f64,
}

/// A domain's customer-configured cacheability policy.
///
/// "CDN customers decide whether a response is cacheable" (§3.2); the
/// policy lives at the domain level with a mixed option whose fraction
/// applies per object.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// Every object cacheable.
    Always,
    /// No object cacheable (personalized / one-time-use content).
    Never,
    /// This fraction of the domain's objects is cacheable.
    Mixed(f64),
}

impl CachePolicy {
    /// The fraction of objects that are cacheable under this policy.
    pub fn cacheable_fraction(self) -> f64 {
        match self {
            CachePolicy::Always => 1.0,
            CachePolicy::Never => 0.0,
            CachePolicy::Mixed(f) => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_categories() {
        assert_eq!(IndustryCategory::ALL.len(), 11);
        let mut labels: Vec<&str> = IndustryCategory::ALL.iter().map(|c| c.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 11, "labels must be distinct");
    }

    #[test]
    fn domain_weights_sum_to_one() {
        let total: f64 = IndustryCategory::ALL
            .iter()
            .map(|c| c.domain_weight())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn cache_profiles_are_probabilities() {
        for c in IndustryCategory::ALL {
            let p = c.cache_profile();
            assert!(p.never >= 0.0 && p.always >= 0.0);
            assert!(p.never + p.always <= 1.0, "{c:?} profile exceeds 1");
        }
    }

    #[test]
    fn expected_never_share_is_near_half() {
        // Figure 4: "nearly 50% of domains serve content that is never
        // cacheable and another 30% … always cacheable."
        let never: f64 = IndustryCategory::ALL
            .iter()
            .map(|c| c.domain_weight() * c.cache_profile().never)
            .sum();
        let always: f64 = IndustryCategory::ALL
            .iter()
            .map(|c| c.domain_weight() * c.cache_profile().always)
            .sum();
        assert!((0.45..0.60).contains(&never), "never share {never}");
        assert!((0.22..0.38).contains(&always), "always share {always}");
    }

    #[test]
    fn cache_policy_fractions() {
        assert_eq!(CachePolicy::Always.cacheable_fraction(), 1.0);
        assert_eq!(CachePolicy::Never.cacheable_fraction(), 0.0);
        assert_eq!(CachePolicy::Mixed(0.25).cacheable_fraction(), 0.25);
    }
}
