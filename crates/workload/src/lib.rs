//! # jcdn-workload — synthetic CDN workload generator
//!
//! The paper analyzes proprietary Akamai edge logs. This crate is the
//! substitution (see `DESIGN.md` §2): a population model of clients,
//! applications, domains, and objects whose *generating parameters* are
//! calibrated to the populations the paper reports, so the analysis
//! pipeline can be validated by recovering them:
//!
//! * **Traffic source** (Figure 3): clients carry ground-truth device
//!   types and realistic user-agent strings (via `jcdn-ua`), mixed so that
//!   request shares land near Mobile ≈ 55%, Embedded ≈ 12%, Desktop ≈ 9%,
//!   Unknown ≈ 24%, with ≈ 88% non-browser traffic.
//! * **Request type** (§4): ≈ 84% GET, with POST dominated by telemetry
//!   uploads.
//! * **Response type** (§4, Figure 4): domains carry industry categories
//!   with per-industry cacheability profiles (Financial/Streaming/Gaming
//!   never-cacheable; News/Sports/Entertainment cacheable) tuned so ≈ 55%
//!   of JSON request volume is uncacheable.
//! * **Periodicity** (§5.1, Figures 5/6): periodic poller apps with
//!   periods on the paper's spikes (30s, 1m, 2m, 3m, 10m, 15m, 30m) and
//!   jitter, sized to ≈ 6.3% of requests; per-object periodic-client
//!   fractions shaped so ≈ 20% of periodic objects have a > 50% periodic
//!   client majority.
//! * **Request dependencies** (§5.2, Tables 1/3): manifest-driven apps
//!   that first fetch a JSON manifest (a real JSON body with URL
//!   references, built with `jcdn-json`) and then fetch referenced
//!   objects — the structure the n-gram model learns.
//! * **Growth trend** (Figure 1): a separate monthly [`trend::TrendModel`]
//!   covering 2016→2019, since replaying 3½ years of full event traffic
//!   would add nothing but runtime.
//!
//! The generator emits a time-sorted stream of [`RequestEvent`]s plus the
//! [`GroundTruth`] labels; `jcdn-cdnsim` replays the events through edge
//! caches to produce the final [`jcdn_trace::Trace`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
mod clients;
mod config;
mod generator;
mod industry;
mod objects;
pub mod trend;

pub use clients::ClientInfo;
pub use config::{PopulationTargets, WorkloadConfig};
pub use generator::{build, build_parallel, GroundTruth, RequestEvent, Workload};
pub use industry::{CachePolicy, IndustryCategory};
pub use objects::{DomainInfo, ObjectInfo};
