//! The workload generator: universe construction, behaviour assignment,
//! and event generation.

use std::collections::HashMap;

use jcdn_obs::timeseries::WindowedCounters;
use jcdn_stats::dist::{weighted_index, Pareto, Sample};
use jcdn_trace::{Method, MimeType, SimDuration, SimTime};
use jcdn_ua::DeviceType;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::apps::{AppRequest, InteractiveApi, ManifestApp, PeriodicPoller};
use crate::clients::{make_client, ClientInfo};
use crate::config::WorkloadConfig;
use crate::industry::{CachePolicy, IndustryCategory};
use crate::objects::{DomainInfo, ObjectInfo};

/// One scheduled request (indices into the workload's tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestEvent {
    /// Arrival time at the CDN edge.
    pub time: SimTime,
    /// Index into [`Workload::clients`].
    pub client: u32,
    /// Index into [`Workload::objects`].
    pub object: u32,
    /// HTTP method.
    pub method: Method,
}

/// Ground-truth labels planted by the generator, for validating the
/// analysis pipeline.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Planted periodic (client, object) pairs and their periods.
    pub periodic_pairs: HashMap<(u32, u32), SimDuration>,
    /// Objects that carry a planted period (and that period).
    pub periodic_objects: HashMap<u32, SimDuration>,
    /// Manifest/page roots and the objects they reference.
    pub manifest_children: HashMap<u32, Vec<u32>>,
    /// Expected number of periodic tick events (calibration output).
    pub expected_periodic_events: f64,
}

/// A fully generated synthetic workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The generating configuration.
    pub config: WorkloadConfig,
    /// Customer domains.
    pub domains: Vec<DomainInfo>,
    /// Object universe.
    pub objects: Vec<ObjectInfo>,
    /// Client population.
    pub clients: Vec<ClientInfo>,
    /// Time-sorted request events.
    pub events: Vec<RequestEvent>,
    /// Planted ground truth.
    pub truth: GroundTruth,
}

impl Workload {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were generated.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Index of the domain with the given host name, for targeting fault
    /// windows at a specific customer (e.g. `--outage host:start:end`).
    pub fn domain_index(&self, host: &str) -> Option<u32> {
        self.domains
            .iter()
            .position(|d| d.host == host)
            .map(|i| i as u32)
    }

    /// Per-window event counts (`workload.events`) over the simulated
    /// timeline. The counts follow the determinism contract: same config ⇒
    /// byte-identical [`WindowedCounters`] serialization, independent of
    /// how the build was threaded.
    pub fn event_series(&self, spec: jcdn_obs::timeseries::WindowSpec) -> WindowedCounters {
        let mut series = WindowedCounters::new(spec);
        for event in &self.events {
            series.inc(event.time.as_micros(), "workload.events", 1);
        }
        series
    }

    /// Share of events whose object serves JSON.
    pub fn json_share(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let json = self
            .events
            .iter()
            .filter(|e| self.objects[e.object as usize].mime == MimeType::Json)
            .count();
        json as f64 / self.events.len() as f64
    }
}

/// The paper's Figure 5 period spikes, with sampling weights. Short
/// periods dominate (they generate more requests per flow and the
/// histogram of *detected objects* still shows every spike).
const PERIOD_SPIKES: &[(u64, f64)] = &[
    (30, 0.22),
    (60, 0.28),
    (120, 0.13),
    (180, 0.09),
    (600, 0.13),
    (900, 0.08),
    (1800, 0.07),
];

/// Internal universe-building state.
struct UniverseBuilder {
    objects: Vec<ObjectInfo>,
    /// Interactive JSON pools per domain.
    api_pools: Vec<Vec<u32>>,
    /// Manifest apps per domain (JSON root).
    json_manifests: Vec<Vec<ManifestTemplate>>,
    /// Page apps per domain (HTML root).
    html_manifests: Vec<Vec<ManifestTemplate>>,
    /// Periodic candidate objects: (object, domain).
    periodic_candidates: Vec<u32>,
}

#[derive(Clone, Debug)]
struct ManifestTemplate {
    root: u32,
    articles: Vec<u32>,
    media: Vec<Vec<u32>>,
}

/// Builds the full workload from a configuration. Deterministic in
/// `config` (including its seed). Equivalent to
/// [`build_parallel`]`(config, 1)`.
pub fn build(config: &WorkloadConfig) -> Workload {
    build_parallel(config, 1)
}

/// Builds the full workload with per-client event generation fanned out
/// over a `threads`-wide worker pool.
///
/// The output is **identical for every thread count** (and to [`build`]):
/// everything that touches the main RNG stream — universe construction,
/// periodic planting, and a per-client *planning* pass that fixes each
/// client's app parameters and draws it a private event seed — runs
/// sequentially; only the event generation itself (the bulk of the work,
/// driven entirely by the private per-client RNGs) is parallel, gathered
/// in client order, and finished with a total-order sort.
pub fn build_parallel(config: &WorkloadConfig, threads: usize) -> Workload {
    // Phase spans: planning (sequential, main RNG) vs generation (parallel,
    // private RNGs). Wall-time only — neither affects the output.
    let plan_span = jcdn_obs::span!("workload.plan");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let domains = build_domains(config, &mut rng);
    let mut universe = build_universe(config, &domains, &mut rng);
    let clients = build_clients(config, &mut rng);

    let mut truth = GroundTruth::default();
    for templates in universe
        .json_manifests
        .iter()
        .chain(universe.html_manifests.iter())
    {
        for t in templates {
            let mut children: Vec<u32> = t.articles.clone();
            children.extend(t.media.iter().flatten().copied());
            truth.manifest_children.insert(t.root, children);
        }
    }

    let mut events: Vec<RequestEvent> =
        Vec::with_capacity(config.target_events + config.target_events / 4);

    // ---- Periodic traffic (§5.1) -------------------------------------
    // Overplant by 1.4x: the significance filters and the conservative
    // permutation thresholds recover roughly 70% of planted periodic
    // traffic, so the detected share lands near the configured target
    // (calibrated against the full-scale long-term dataset).
    let periodic_budget = 1.4 * config.targets.periodic_share * config.target_events as f64;
    plant_periodic_flows(
        config,
        &clients,
        &mut universe,
        periodic_budget,
        &mut truth,
        &mut events,
        &mut rng,
    );

    // ---- Everything else ----------------------------------------------
    // Plan sequentially (main RNG, may create personalized objects), then
    // generate each client's events in parallel from its private seed.
    let remaining = (config.target_events as f64 - truth.expected_periodic_events).max(0.0);
    let total_activity: f64 = clients.iter().map(|c| c.activity).sum();
    let plans: Vec<ClientPlan> = clients
        .iter()
        .enumerate()
        .filter_map(|(index, client)| {
            let budget = remaining * client.activity / total_activity;
            plan_client_traffic(
                config,
                index as u32,
                client,
                budget,
                &domains,
                &mut universe,
                &mut rng,
            )
        })
        .collect();
    drop(plan_span);
    let _generate_span = jcdn_obs::span!("workload.generate");
    let per_client =
        jcdn_exec::scatter_gather_labeled("workload.generate", plans.len(), threads, |i| {
            generate_planned(&plans[i], config.duration)
        });
    for client_events in per_client {
        events.extend(client_events);
    }

    // Total-order key: ties on (time, client, object) are broken by method
    // so the final order never depends on the append order above.
    events.sort_by_key(|e| (e.time, e.client, e.object, e.method));

    Workload {
        config: config.clone(),
        domains,
        objects: universe.objects,
        clients,
        events,
        truth,
    }
}

fn build_domains(config: &WorkloadConfig, rng: &mut StdRng) -> Vec<DomainInfo> {
    let weights: Vec<f64> = IndustryCategory::ALL
        .iter()
        .map(|c| c.domain_weight())
        .collect();
    (0..config.domains)
        .map(|i| {
            let industry = IndustryCategory::ALL[weighted_index(rng, &weights).unwrap_or(0)];
            let profile = industry.cache_profile();
            let roll: f64 = rng.gen();
            let cache_policy = if roll < profile.never {
                CachePolicy::Never
            } else if roll < profile.never + profile.always {
                CachePolicy::Always
            } else {
                CachePolicy::Mixed(rng.gen_range(0.2..0.8))
            };
            DomainInfo {
                host: format!("{}-{i}.example", industry.host_token()),
                industry,
                cache_policy,
                // Zipf-ish popularity over domain rank.
                popularity: 1.0 / ((i + 1) as f64).powf(0.6),
            }
        })
        .collect()
}

fn build_universe(
    config: &WorkloadConfig,
    domains: &[DomainInfo],
    rng: &mut StdRng,
) -> UniverseBuilder {
    let mut u = UniverseBuilder {
        objects: Vec::new(),
        api_pools: vec![Vec::new(); domains.len()],
        json_manifests: vec![Vec::new(); domains.len()],
        html_manifests: vec![Vec::new(); domains.len()],
        periodic_candidates: Vec::new(),
    };

    for (d, domain) in domains.iter().enumerate() {
        let cacheable_fraction = domain.cache_policy.cacheable_fraction();
        let is_content = matches!(
            domain.industry,
            IndustryCategory::NewsMedia
                | IndustryCategory::Sports
                | IndustryCategory::Entertainment
        );
        let hosts_periodic = matches!(
            domain.industry,
            IndustryCategory::Gaming
                | IndustryCategory::Social
                | IndustryCategory::Advertising
                | IndustryCategory::Technology
                | IndustryCategory::Streaming
        );

        // Interactive API pool: every domain has one.
        let pool_size = rng.gen_range(8..32);
        for k in 0..pool_size {
            let obj = push_object(
                &mut u.objects,
                config,
                d as u32,
                format!("https://{}/api/v1/{}/{}", domain.host, api_section(rng), k),
                MimeType::Json,
                rng.gen_bool(cacheable_fraction),
                SimDuration::from_secs(rng.gen_range(30..180)),
                rng,
            );
            u.api_pools[d].push(obj);
        }

        // Content domains: manifest apps (JSON root for native apps, HTML
        // root for browsers) over a shared article set.
        if is_content {
            for m in 0..rng.gen_range(1..=2usize) {
                let article_count = rng.gen_range(10..25);
                let mut articles = Vec::with_capacity(article_count);
                let mut media = Vec::with_capacity(article_count);
                for a in 0..article_count {
                    let article = push_object(
                        &mut u.objects,
                        config,
                        d as u32,
                        format!(
                            "https://{}/api/articles/{}",
                            domain.host,
                            m * 1000 + a + 100
                        ),
                        MimeType::Json,
                        rng.gen_bool(cacheable_fraction),
                        SimDuration::from_secs(rng.gen_range(60..600)),
                        rng,
                    );
                    let media_count = rng.gen_range(0..=2usize);
                    let mut article_media = Vec::with_capacity(media_count);
                    for im in 0..media_count {
                        let media_obj = push_object(
                            &mut u.objects,
                            config,
                            d as u32,
                            format!(
                                "https://{}/media/image{}.jpg",
                                domain.host,
                                (m * 1000 + a) * 10 + im
                            ),
                            MimeType::Image,
                            // Media is static: cacheable unless the domain
                            // forbids caching entirely.
                            cacheable_fraction > 0.0,
                            SimDuration::HOUR,
                            rng,
                        );
                        article_media.push(media_obj);
                    }
                    articles.push(article);
                    media.push(article_media);
                }

                // JSON manifest root, with a real JSON body referencing the
                // articles (Table 1's pattern).
                let body = manifest_body(&u.objects, &articles, &media);
                let json_root = push_object_with_body(
                    &mut u.objects,
                    d as u32,
                    format!("https://{}/api/v2/stories/{}", domain.host, m),
                    MimeType::Json,
                    rng.gen_bool(cacheable_fraction),
                    SimDuration::from_secs(rng.gen_range(30..120)),
                    body,
                );
                u.json_manifests[d].push(ManifestTemplate {
                    root: json_root,
                    articles: articles.clone(),
                    media: media.clone(),
                });

                // HTML page root for browser sessions over the same content.
                let html_root = push_object(
                    &mut u.objects,
                    config,
                    d as u32,
                    format!("https://{}/section/{}", domain.host, m),
                    MimeType::Html,
                    rng.gen_bool(cacheable_fraction),
                    SimDuration::from_secs(rng.gen_range(60..300)),
                    rng,
                );
                u.html_manifests[d].push(ManifestTemplate {
                    root: html_root,
                    articles,
                    media,
                });
            }
        }

        // Periodic endpoints on machine-to-machine-heavy industries.
        if hosts_periodic {
            for p in 0..rng.gen_range(2..=4usize) {
                // "78% upload traffic": most periodic endpoints take POSTs.
                let (path, _is_upload) = if rng.gen_bool(config.targets.periodic_upload_share) {
                    (format!("telemetry/beat/{p}"), true)
                } else {
                    (format!("api/live/poll/{p}"), false)
                };
                // Telemetry uploads follow the domain policy (mostly
                // dynamic); shared score/feed polls are briefly cacheable
                // even on personalization-heavy domains. Net effect lands
                // near the paper's 56.2% uncacheable periodic traffic.
                let cacheable = if path.starts_with("telemetry") {
                    rng.gen_bool(cacheable_fraction)
                } else {
                    rng.gen_bool(cacheable_fraction.max(0.5))
                };
                let obj = push_object(
                    &mut u.objects,
                    config,
                    d as u32,
                    format!("https://{}/{}", domain.host, path),
                    MimeType::Json,
                    cacheable,
                    SimDuration::from_secs(rng.gen_range(15..60)),
                    rng,
                );
                u.periodic_candidates.push(obj);
            }
        }
    }
    u
}

fn api_section(rng: &mut StdRng) -> &'static str {
    const SECTIONS: &[&str] = &[
        "items", "search", "config", "catalog", "session", "quotes", "events", "status",
    ];
    SECTIONS[rng.gen_range(0..SECTIONS.len())]
}

#[allow(clippy::too_many_arguments)]
fn push_object(
    objects: &mut Vec<ObjectInfo>,
    config: &WorkloadConfig,
    domain: u32,
    url: String,
    mime: MimeType,
    cacheable: bool,
    ttl: SimDuration,
    _rng: &mut StdRng,
) -> u32 {
    let (median, sigma) = match mime {
        MimeType::Json => config.sizes.json,
        MimeType::Html => config.sizes.html,
        MimeType::Image => config.sizes.image,
        _ => config.sizes.json,
    };
    let id = objects.len() as u32;
    objects.push(ObjectInfo {
        url,
        domain,
        mime,
        cacheable,
        ttl,
        size_median: median,
        size_sigma: sigma,
        body: None,
    });
    id
}

fn push_object_with_body(
    objects: &mut Vec<ObjectInfo>,
    domain: u32,
    url: String,
    mime: MimeType,
    cacheable: bool,
    ttl: SimDuration,
    body: String,
) -> u32 {
    let id = objects.len() as u32;
    objects.push(ObjectInfo {
        url,
        domain,
        mime,
        cacheable,
        ttl,
        size_median: body.len() as f64,
        size_sigma: 0.0,
        body: Some(body),
    });
    id
}

/// Builds the JSON manifest body of Table 1: an array of story stubs with
/// direct URL references to article and media objects.
fn manifest_body(objects: &[ObjectInfo], articles: &[u32], media: &[Vec<u32>]) -> String {
    use jcdn_json::{Map, Value};
    let stories: Vec<Value> = articles
        .iter()
        .zip(media.iter())
        .enumerate()
        .map(|(i, (&article, article_media))| {
            let mut story = Map::new();
            story.insert("article_id", Value::from(1000 + i as u64));
            story.insert("article_title", Value::from(format!("Story {i}")));
            story.insert(
                "article_url",
                Value::from(objects[article as usize].url.as_str()),
            );
            if let Some(&first_media) = article_media.first() {
                story.insert(
                    "image_url",
                    Value::from(objects[first_media as usize].url.as_str()),
                );
            }
            Value::Object(story)
        })
        .collect();
    jcdn_json::to_string(&Value::Array(stories))
}

fn build_clients(config: &WorkloadConfig, rng: &mut StdRng) -> Vec<ClientInfo> {
    let t = &config.targets;
    let unknown_share =
        1.0 - t.mobile_request_share - t.embedded_request_share - t.desktop_request_share;
    let device_weights = [
        t.mobile_request_share,
        t.desktop_request_share,
        t.embedded_request_share,
        unknown_share,
    ];
    let devices = [
        DeviceType::Mobile,
        DeviceType::Desktop,
        DeviceType::Embedded,
        DeviceType::Unknown,
    ];
    let mobile_browser_fraction = t.mobile_browser_share / t.mobile_request_share;
    let activity_dist = Pareto::new(1.0, 1.8);

    (0..config.clients)
        .map(|i| {
            let device = devices[weighted_index(rng, &device_weights).unwrap_or(0)];
            let browser = match device {
                DeviceType::Mobile => rng.gen_bool(mobile_browser_fraction),
                DeviceType::Desktop => true,
                _ => false,
            };
            // Cap the activity tail so a single client cannot dominate.
            let activity = activity_dist.sample(rng).min(20.0);
            make_client(rng, i, device, browser, activity)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn plant_periodic_flows(
    config: &WorkloadConfig,
    clients: &[ClientInfo],
    universe: &mut UniverseBuilder,
    budget: f64,
    truth: &mut GroundTruth,
    events: &mut Vec<RequestEvent>,
    rng: &mut StdRng,
) {
    // Machine traffic comes from non-desktop, non-browser clients.
    let machine_clients: Vec<u32> = clients
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_browser && c.device != DeviceType::Desktop)
        .map(|(i, _)| i as u32)
        .collect();
    if machine_clients.is_empty() || universe.periodic_candidates.is_empty() {
        return;
    }

    let period_weights: Vec<f64> = PERIOD_SPIKES.iter().map(|&(_, w)| w).collect();
    // Interleave telemetry (POST) and poll (GET) endpoints so the planted
    // mix matches the paper's 78% upload share regardless of which
    // candidates happen to come first.
    let mut telemetry: Vec<u32> = universe
        .periodic_candidates
        .iter()
        .copied()
        .filter(|&o| universe.objects[o as usize].url.contains("telemetry"))
        .collect();
    let mut polls: Vec<u32> = universe
        .periodic_candidates
        .iter()
        .copied()
        .filter(|&o| !universe.objects[o as usize].url.contains("telemetry"))
        .collect();
    telemetry.shuffle(rng);
    polls.shuffle(rng);
    let mut candidates = Vec::with_capacity(telemetry.len() + polls.len());
    while !telemetry.is_empty() || !polls.is_empty() {
        let want_upload = rng.gen_bool(config.targets.periodic_upload_share);
        let next = if want_upload {
            telemetry.pop().or_else(|| polls.pop())
        } else {
            polls.pop().or_else(|| telemetry.pop())
        };
        match next {
            Some(object) => candidates.push(object),
            None => break,
        }
    }

    let duration = config.duration;
    let mut expected = 0.0;
    'outer: for object in candidates.into_iter().cycle() {
        if expected >= budget {
            break 'outer;
        }
        // Re-planting the same object on a second pass keeps its period.
        let period_secs = match truth.periodic_objects.get(&object) {
            Some(p) => p.as_secs(),
            None => {
                let idx = weighted_index(rng, &period_weights).unwrap_or(0);
                PERIOD_SPIKES[idx].0
            }
        };
        let period = SimDuration::from_secs(period_secs);
        let ticks = duration.as_secs_f64() / period_secs as f64;
        if ticks < 4.0 {
            // This period cannot produce a detectable flow within the
            // capture window; skip (short-term dataset vs 30m pollers).
            if PERIOD_SPIKES
                .iter()
                .all(|&(p, _)| duration.as_secs_f64() / (p as f64) < 4.0)
            {
                break 'outer; // nothing fits; avoid infinite loop
            }
            continue;
        }
        truth.periodic_objects.insert(object, period);

        // How many clients participate, and what share of them really are
        // periodic. Figure 6 target: ~20% of periodic objects have a >50%
        // periodic-client majority.
        let participant_count = rng.gen_range(10..18).min(machine_clients.len());
        let periodic_fraction: f64 = if rng.gen_bool(0.2) {
            rng.gen_range(0.55..0.95)
        } else {
            rng.gen_range(0.08..0.48)
        };
        let periodic_count =
            ((participant_count as f64 * periodic_fraction).round() as usize).max(1);

        let mut participants = machine_clients.clone();
        participants.shuffle(rng);
        participants.truncate(participant_count);

        let method = if universe.objects[object as usize].url.contains("telemetry") {
            Method::Post
        } else {
            Method::Get
        };

        let mut buffer = Vec::new();
        for (rank, &client) in participants.iter().enumerate() {
            // Pollers run while their app session is open: a bounded
            // window of 80-200 ticks, placed anywhere in the capture. This
            // keeps one 30s flow from eating the whole periodic budget in
            // a 24h capture while leaving every flow comfortably above the
            // >= 10 requests significance filter.
            let window_ticks = rng.gen_range(48..120) as f64;
            let active_secs = (window_ticks * period_secs as f64).min(duration.as_secs_f64());
            let start_secs = if active_secs >= duration.as_secs_f64() {
                0.0
            } else {
                rng.gen_range(0.0..duration.as_secs_f64() - active_secs)
            };
            if rank < periodic_count {
                // A genuinely periodic client-object flow.
                let jitter_cap = (period_secs as f64 * 0.03).clamp(0.2, 2.0);
                let poller = PeriodicPoller {
                    object,
                    period,
                    jitter: SimDuration::from_secs_f64(rng.gen_range(0.0..jitter_cap)),
                    phase: SimDuration::from_secs_f64(rng.gen_range(0.0..period_secs as f64)),
                    start: SimDuration::from_secs_f64(start_secs),
                    active: SimDuration::from_secs_f64(active_secs),
                    method,
                };
                buffer.clear();
                poller.generate(rng, duration, &mut buffer);
                expected += poller.expected_requests(duration);
                truth.periodic_pairs.insert((client, object), period);
                for r in &buffer {
                    events.push(to_event(client, r));
                }
            } else {
                // A non-periodic client of the same object: Poisson with a
                // comparable volume over its own session window, so the
                // object flow has real non-periodic members (Figure 6's
                // denominator).
                let api = InteractiveApi {
                    objects: vec![object],
                    zipf: 1.0,
                    rate_per_hour: 3600.0 / period_secs as f64 * rng.gen_range(0.35..0.7),
                    post_fraction: if method == Method::Post { 1.0 } else { 0.0 },
                    chain_prob: 0.0,
                };
                buffer.clear();
                api.generate(rng, SimDuration::from_secs_f64(active_secs), &mut buffer);
                // Shift the session into its window.
                let offset = SimDuration::from_secs_f64(start_secs);
                expected += api.expected_requests(SimDuration::from_secs_f64(active_secs));
                for r in &buffer {
                    let mut shifted = *r;
                    shifted.time += offset;
                    events.push(to_event(client, &shifted));
                }
            }
            if expected >= budget {
                break 'outer;
            }
        }
    }
    truth.expected_periodic_events = expected;
}

/// One client's traffic plan: the apps it will run (parameters fixed by
/// the sequential planning pass) and the private seed its event RNG is
/// derived from. Generation from a plan is pure, so plans can fan out
/// across worker threads without perturbing determinism.
#[derive(Clone, Debug)]
struct ClientPlan {
    client: u32,
    manifest: Option<ManifestApp>,
    api: Option<InteractiveApi>,
    seed: u64,
}

/// Generates one planned client's events from its private RNG.
fn generate_planned(plan: &ClientPlan, duration: SimDuration) -> Vec<RequestEvent> {
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut buffer: Vec<AppRequest> = Vec::new();
    let mut events = Vec::new();
    if let Some(app) = &plan.manifest {
        app.generate(&mut rng, duration, &mut buffer);
        events.extend(buffer.iter().map(|r| to_event(plan.client, r)));
        buffer.clear();
    }
    if let Some(api) = &plan.api {
        api.generate(&mut rng, duration, &mut buffer);
        events.extend(buffer.iter().map(|r| to_event(plan.client, r)));
    }
    events
}

/// Decides a client's apps on the main RNG stream (including creating its
/// personalized objects) and draws the private seed event generation will
/// run from. Returns `None` for clients too inactive to generate traffic.
#[allow(clippy::too_many_arguments)]
fn plan_client_traffic(
    config: &WorkloadConfig,
    client_index: u32,
    client: &ClientInfo,
    budget: f64,
    domains: &[DomainInfo],
    universe: &mut UniverseBuilder,
    rng: &mut StdRng,
) -> Option<ClientPlan> {
    if budget < 0.5 {
        return None;
    }
    let duration = config.duration;
    let hours = duration.as_secs_f64() / 3600.0;

    // Pick this client's home domains, popularity-weighted.
    let domain_weights: Vec<f64> = domains.iter().map(|d| d.popularity).collect();

    let manifest_budget_share = match client.device {
        _ if client.is_browser => 0.75,
        DeviceType::Mobile => 0.60,
        _ => 0.0,
    };
    let manifest_budget = budget * manifest_budget_share;
    let interactive_budget = budget - manifest_budget;
    let mut manifest_app: Option<ManifestApp> = None;
    let mut api_app: Option<InteractiveApi> = None;

    // ---- Manifest/page sessions ---------------------------------------
    if manifest_budget >= 1.0 {
        let templates = if client.is_browser {
            &universe.html_manifests
        } else {
            &universe.json_manifests
        };
        // Find a content domain that has templates (popularity-weighted).
        let mut chosen: Option<(usize, usize)> = None;
        for _ in 0..32 {
            let d = weighted_index(rng, &domain_weights).unwrap_or(0);
            if !templates[d].is_empty() {
                chosen = Some((d, rng.gen_range(0..templates[d].len())));
                break;
            }
        }
        if let Some((d, m)) = chosen {
            let template = &templates[d][m];
            let articles_per_session = (1usize, 3usize);
            let mean_media: f64 = if template.articles.is_empty() {
                0.0
            } else {
                template.media.iter().map(Vec::len).sum::<usize>() as f64
                    / template.articles.len() as f64
            };
            let session_cost = 1.0 + 2.0 * (1.0 + mean_media);
            let sessions_per_hour = (manifest_budget / session_cost / hours).max(0.01);
            manifest_app = Some(ManifestApp {
                root: template.root,
                articles: template.articles.clone(),
                media: template.media.clone(),
                article_zipf: 1.1,
                sessions_per_hour,
                articles_per_session,
                mean_think: SimDuration::from_secs(8),
            });
        }
    }

    // ---- Interactive API traffic ----------------------------------------
    if interactive_budget >= 1.0 {
        // Personalized traffic (unique per-client URLs) comes from
        // machine-ish clients hitting personalization-heavy industries.
        let personalized = !client.is_browser
            && matches!(client.device, DeviceType::Mobile | DeviceType::Unknown)
            && rng.gen_bool(0.32);

        let objects: Vec<u32> = if personalized {
            // Create this client's private endpoints on an uncacheable-
            // leaning domain.
            let d = pick_domain_of(
                domains,
                rng,
                &[
                    IndustryCategory::FinancialServices,
                    IndustryCategory::Social,
                    IndustryCategory::Gaming,
                ],
            );
            let host = &domains[d].host;
            let token = format!("{:016x}", client.ip_hash);
            let mut ids = Vec::new();
            for k in 0..rng.gen_range(3..7) {
                let id = push_object_with_body(
                    &mut universe.objects,
                    d as u32,
                    format!("https://{host}/user/{token}/{}", personal_endpoint(k)),
                    MimeType::Json,
                    false, // personalized content is never cacheable
                    SimDuration::from_secs(30),
                    String::new(),
                );
                // Personalized responses are dynamic JSON, not empty.
                let obj = &mut universe.objects[id as usize];
                obj.body = None;
                obj.size_median = config.sizes.json.0 * 0.8;
                obj.size_sigma = config.sizes.json.1;
                ids.push(id);
            }
            ids
        } else {
            // A few shared API pools, popularity-weighted. Spanning several
            // domains keeps one domain's cache policy from dominating a
            // client's whole traffic mix.
            let mut pool = Vec::new();
            for _ in 0..2 {
                let d = weighted_index(rng, &domain_weights).unwrap_or(0);
                pool.extend_from_slice(&universe.api_pools[d]);
            }
            pool
        };

        let post_fraction = if personalized { 0.30 } else { 0.18 };
        api_app = Some(InteractiveApi {
            objects,
            zipf: 1.2,
            rate_per_hour: (interactive_budget / hours).max(0.01),
            post_fraction,
            // Real API traffic walks application step chains (§5.2's
            // premise); roughly two thirds of requests follow the chain.
            chain_prob: 0.72,
        });
    }

    if manifest_app.is_none() && api_app.is_none() {
        return None;
    }
    Some(ClientPlan {
        client: client_index,
        manifest: manifest_app,
        api: api_app,
        seed: rng.gen(),
    })
}

fn personal_endpoint(k: usize) -> &'static str {
    const ENDPOINTS: &[&str] = &[
        "feed",
        "inbox",
        "balance",
        "recs",
        "cart",
        "profile",
        "notifications",
    ];
    ENDPOINTS[k % ENDPOINTS.len()]
}

fn pick_domain_of(
    domains: &[DomainInfo],
    rng: &mut StdRng,
    preferred: &[IndustryCategory],
) -> usize {
    let candidates: Vec<usize> = domains
        .iter()
        .enumerate()
        .filter(|(_, d)| preferred.contains(&d.industry))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        rng.gen_range(0..domains.len())
    } else {
        candidates[rng.gen_range(0..candidates.len())]
    }
}

fn to_event(client: u32, r: &AppRequest) -> RequestEvent {
    RequestEvent {
        time: r.time,
        client,
        object: r.object,
        method: r.method,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    fn tiny() -> Workload {
        build(&WorkloadConfig::tiny(0xFEED))
    }

    #[test]
    fn builds_a_nonempty_sorted_workload() {
        let w = tiny();
        assert!(!w.is_empty());
        assert!(w.events.windows(2).all(|p| p[0].time <= p[1].time));
        assert!(!w.domains.is_empty());
        assert!(!w.objects.is_empty());
        assert_eq!(w.clients.len(), w.config.clients);
        // Every event references valid indices.
        assert!(w.events.iter().all(
            |e| (e.client as usize) < w.clients.len() && (e.object as usize) < w.objects.len()
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(&WorkloadConfig::tiny(7));
        let b = build(&WorkloadConfig::tiny(7));
        assert_eq!(a.events, b.events);
        let c = build(&WorkloadConfig::tiny(8));
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        let sequential = build(&WorkloadConfig::tiny(7));
        for threads in [2, 4, 8] {
            let parallel = build_parallel(&WorkloadConfig::tiny(7), threads);
            assert_eq!(sequential.events, parallel.events, "{threads} threads");
            assert_eq!(sequential.objects.len(), parallel.objects.len());
        }
    }

    #[test]
    fn event_volume_is_near_target() {
        let w = tiny();
        let target = w.config.target_events as f64;
        let actual = w.len() as f64;
        assert!(
            (actual - target).abs() / target < 0.35,
            "target {target}, got {actual}"
        );
    }

    #[test]
    fn device_mix_lands_near_targets() {
        let w = tiny();
        let mut by_device: HashMap<DeviceType, usize> = HashMap::new();
        for e in &w.events {
            *by_device
                .entry(w.clients[e.client as usize].device)
                .or_default() += 1;
        }
        let total = w.len() as f64;
        let share = |d: DeviceType| by_device.get(&d).copied().unwrap_or(0) as f64 / total;
        assert!(
            (share(DeviceType::Mobile) - 0.55).abs() < 0.12,
            "mobile {}",
            share(DeviceType::Mobile)
        );
        assert!(
            (share(DeviceType::Embedded) - 0.12).abs() < 0.08,
            "embedded {}",
            share(DeviceType::Embedded)
        );
        assert!(
            (share(DeviceType::Unknown) - 0.24).abs() < 0.10,
            "unknown {}",
            share(DeviceType::Unknown)
        );
    }

    #[test]
    fn get_share_lands_near_target() {
        let w = tiny();
        let json_events: Vec<_> = w
            .events
            .iter()
            .filter(|e| w.objects[e.object as usize].mime == MimeType::Json)
            .collect();
        let gets = json_events
            .iter()
            .filter(|e| e.method == Method::Get)
            .count();
        let share = gets as f64 / json_events.len() as f64;
        assert!((share - 0.84).abs() < 0.08, "GET share {share}");
    }

    #[test]
    fn periodic_share_lands_near_target() {
        let w = tiny();
        let periodic = w
            .events
            .iter()
            .filter(|e| w.truth.periodic_pairs.contains_key(&(e.client, e.object)))
            .count();
        let share = periodic as f64 / w.len() as f64;
        assert!((0.02..0.13).contains(&share), "periodic share {share}");
        assert!(!w.truth.periodic_objects.is_empty());
        // All planted periods are on the paper's spikes.
        for period in w.truth.periodic_objects.values() {
            assert!(
                PERIOD_SPIKES.iter().any(|&(p, _)| p == period.as_secs()),
                "unexpected period {period}"
            );
        }
    }

    #[test]
    fn manifest_truth_references_real_objects() {
        let w = tiny();
        assert!(!w.truth.manifest_children.is_empty());
        for (&root, children) in &w.truth.manifest_children {
            assert!((root as usize) < w.objects.len());
            assert!(!children.is_empty());
            for &c in children {
                assert!((c as usize) < w.objects.len());
            }
        }
    }

    #[test]
    fn manifest_bodies_parse_and_reference_children() {
        let w = tiny();
        let with_body = w.objects.iter().filter(|o| o.body.is_some()).count();
        assert!(with_body > 0, "some manifests must carry bodies");
        for o in w.objects.iter().filter(|o| o.body.is_some()) {
            let body = o.body.as_ref().unwrap();
            let doc = jcdn_json::parse(body).expect("manifest bodies are valid JSON");
            let refs = jcdn_json::extract_url_refs(&doc);
            assert!(!refs.is_empty(), "manifest must reference children: {body}");
        }
    }

    #[test]
    fn personalized_objects_are_uncacheable_and_unique() {
        let w = tiny();
        let personalized: Vec<_> = w
            .objects
            .iter()
            .filter(|o| o.url.contains("/user/"))
            .collect();
        assert!(!personalized.is_empty());
        assert!(personalized.iter().all(|o| !o.cacheable));
        // Unique per client: URL contains the ip hash token.
        let mut urls: Vec<&str> = personalized.iter().map(|o| o.url.as_str()).collect();
        urls.sort_unstable();
        let before = urls.len();
        urls.dedup();
        assert_eq!(before, urls.len());
    }

    #[test]
    fn uncacheable_share_is_majority() {
        // The tiny universe has only 40 domains, so domain-level cache
        // policy luck swings this share by ±10pp for any single seed;
        // average a few seeds here and leave the tight calibration check
        // against the paper's 55% to the repro harness, which runs over
        // the 600-domain short-term dataset.
        let mut total_json = 0usize;
        let mut total_uncacheable = 0usize;
        for seed in [0xFEED, 0xBEEF, 0xACE5] {
            let w = build(&WorkloadConfig::tiny(seed));
            for e in &w.events {
                let o = &w.objects[e.object as usize];
                if o.mime == MimeType::Json {
                    total_json += 1;
                    total_uncacheable += usize::from(!o.cacheable);
                }
            }
        }
        let share = total_uncacheable as f64 / total_json as f64;
        assert!((0.45..0.78).contains(&share), "uncacheable share {share}");
    }

    #[test]
    fn json_dominates_the_event_mix() {
        let w = tiny();
        let share = w.json_share();
        assert!(share > 0.6, "JSON share {share}");
    }
}
