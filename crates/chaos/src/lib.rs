//! # jcdn-chaos — deterministic fault injection for crash-safety tests
//!
//! The crash-safety contract (DESIGN.md §13) is only testable if faults
//! can be produced on demand, at exact points, reproducibly. This crate is
//! that switchboard: a seed-deterministic [`FailPlan`] names the fail
//! points — fail the Nth durable write, land a write truncated or with a
//! flipped bit, panic in task K of a named worker pool — and the
//! production crates consult the plan through the [`Chaos`] trait at the
//! few places where a fault can be injected.
//!
//! Production pays nothing for this: the default [`Quiet`] implementation
//! is a no-op behind one atomic load ([`handle`]), no plan is ever
//! installed outside tests, and the hooks sit on cold paths (one call per
//! file write, one per pool task) — never inside per-record loops.
//!
//! A plan is installed process-wide exactly once ([`install`]), which is
//! how the `chaos_recovery` integration suite drives the real `jcdn`
//! binary: the CLI parses the `JCDN_CHAOS` environment variable at startup
//! and installs the plan before dispatching the command. Library tests
//! that want isolation instead pass a plan (or any `Chaos` impl) directly
//! to the APIs that accept one, e.g. the trace store's writer.
//!
//! Determinism: a plan's behavior is a pure function of its spec string
//! (plus the explicit `seed=` entry for `*` offsets). Fail points keyed on
//! "the Nth write" assume the instrumented writes happen in a fixed order,
//! which holds for the shard store (commits are sequential on the caller
//! thread); points keyed on a pool label and task index are order-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// An injected I/O failure, surfaced by [`Chaos::on_write`]. Callers map
/// it onto their native error type (the trace store turns it into a
/// `std::io::Error`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedIoError {
    /// Which fail point fired (human-readable, deterministic).
    pub what: String,
}

impl std::fmt::Display for InjectedIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos: injected I/O error ({})", self.what)
    }
}

impl std::error::Error for InjectedIoError {}

/// The fault-injection hooks production code consults. Every method
/// defaults to "do nothing", so an implementation only overrides the
/// faults it models.
pub trait Chaos: Send + Sync {
    /// Called once per durable write with the bytes about to hit disk.
    /// May return an injected error (the write never happens), or mutate
    /// the buffer in place to simulate a torn or corrupted write that
    /// *succeeds* from the writer's point of view.
    fn on_write(&self, label: &str, bytes: &mut Vec<u8>) -> Result<(), InjectedIoError> {
        let _ = (label, bytes);
        Ok(())
    }

    /// Called at the start of task `index` of the worker pool labeled
    /// `label`, inside the pool's panic-quarantine boundary. An injected
    /// fault panics here; the pool is expected to contain it.
    fn on_task(&self, label: &str, index: usize) {
        let _ = (label, index);
    }
}

/// The production implementation: injects nothing.
pub struct Quiet;

impl Chaos for Quiet {}

static QUIET: Quiet = Quiet;
static ACTIVE: OnceLock<FailPlan> = OnceLock::new();

/// Installs `plan` as the process-wide chaos source. Returns `false` if a
/// plan was already installed (the first one wins; plans are per-process
/// by design — tests that need isolation run subprocesses or pass a plan
/// explicitly).
pub fn install(plan: FailPlan) -> bool {
    ACTIVE.set(plan).is_ok()
}

/// The process-wide [`Chaos`] handle: the installed [`FailPlan`], or
/// [`Quiet`] when none was installed (the production state).
pub fn handle() -> &'static dyn Chaos {
    match ACTIVE.get() {
        Some(plan) => plan,
        None => &QUIET,
    }
}

/// One fault in a [`FailPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailPoint {
    /// The `nth` durable write (1-based, counted process-wide) fails with
    /// an [`InjectedIoError`]; nothing is written.
    WriteError {
        /// 1-based write ordinal.
        nth: u64,
    },
    /// The `nth` durable write lands truncated to `keep` bytes but
    /// reports success — a torn write / power-loss simulation. `None`
    /// derives `keep` from the plan seed (strictly inside the buffer).
    TruncateWrite {
        /// 1-based write ordinal.
        nth: u64,
        /// Bytes to keep, or `None` for seed-derived.
        keep: Option<u64>,
    },
    /// The `nth` durable write lands with one bit flipped at byte
    /// `offset` (wrapped into the buffer) but reports success — silent
    /// media corruption. `None` derives the offset from the plan seed.
    BitFlipWrite {
        /// 1-based write ordinal.
        nth: u64,
        /// Byte offset to corrupt, or `None` for seed-derived.
        offset: Option<u64>,
    },
    /// Task `index` of the pool labeled `label` panics on its first
    /// attempt only — the pool's sequential retry then succeeds.
    PanicOnce {
        /// Pool label (e.g. `characterize.shards`).
        label: String,
        /// Task index within the fan-out.
        index: usize,
    },
    /// Task `index` of the pool labeled `label` panics on every attempt —
    /// the retry fails too and the shard is quarantined.
    PanicAlways {
        /// Pool label.
        label: String,
        /// Task index within the fan-out.
        index: usize,
    },
}

/// A parsed, seed-deterministic fail-point plan. Implements [`Chaos`];
/// build one with [`FailPlan::parse`] and either [`install`] it (CLI
/// subprocess tests via `JCDN_CHAOS`) or pass it directly to an API that
/// takes a `&dyn Chaos`.
#[derive(Debug)]
pub struct FailPlan {
    points: Vec<PlannedPoint>,
    seed: u64,
    writes_seen: AtomicU64,
}

#[derive(Debug)]
struct PlannedPoint {
    point: FailPoint,
    fired: AtomicBool,
}

impl FailPlan {
    /// Parses a plan spec: semicolon-separated fail points, e.g.
    /// `seed=7;write-error:2;panic:characterize.shards:0`.
    ///
    /// ```text
    /// seed=S                    seed for `*` offsets (default 0)
    /// write-error:N             Nth durable write fails with an I/O error
    /// truncate:N:B              Nth durable write keeps only B bytes (B=* seed-derived)
    /// bitflip:N:OFF             Nth durable write flips a bit at byte OFF (OFF=* seed-derived)
    /// panic:LABEL:K             task K of pool LABEL panics once (retry succeeds)
    /// panic-always:LABEL:K      task K of pool LABEL panics on every attempt
    /// ```
    pub fn parse(spec: &str) -> Result<FailPlan, String> {
        let mut points = Vec::new();
        let mut seed = 0u64;
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(value) = part.strip_prefix("seed=") {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad seed in chaos spec: {value:?}"))?;
                continue;
            }
            let mut fields = part.split(':');
            let kind = fields.next().unwrap_or_default();
            let point = match kind {
                "write-error" => FailPoint::WriteError {
                    nth: parse_num(part, fields.next())?,
                },
                "truncate" => FailPoint::TruncateWrite {
                    nth: parse_num(part, fields.next())?,
                    keep: parse_opt_num(part, fields.next())?,
                },
                "bitflip" => FailPoint::BitFlipWrite {
                    nth: parse_num(part, fields.next())?,
                    offset: parse_opt_num(part, fields.next())?,
                },
                "panic" | "panic-always" => {
                    let label = fields
                        .next()
                        .filter(|l| !l.is_empty())
                        .ok_or_else(|| format!("chaos point {part:?} needs a pool label"))?
                        .to_string();
                    let index = parse_num(part, fields.next())? as usize;
                    if kind == "panic" {
                        FailPoint::PanicOnce { label, index }
                    } else {
                        FailPoint::PanicAlways { label, index }
                    }
                }
                other => return Err(format!("unknown chaos point kind {other:?}")),
            };
            if fields.next().is_some() {
                return Err(format!("trailing fields in chaos point {part:?}"));
            }
            points.push(PlannedPoint {
                point,
                fired: AtomicBool::new(false),
            });
        }
        Ok(FailPlan {
            points,
            seed,
            writes_seen: AtomicU64::new(0),
        })
    }

    /// The fail points of this plan, in spec order.
    pub fn points(&self) -> Vec<FailPoint> {
        self.points.iter().map(|p| p.point.clone()).collect()
    }

    /// Derives a deterministic value in `0..bound` for point `salt`
    /// (SplitMix64 over the plan seed; `bound` 0 maps to 0).
    fn derived(&self, salt: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let mut z = self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        z % bound
    }
}

fn parse_num(point: &str, field: Option<&str>) -> Result<u64, String> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("chaos point {point:?} needs a numeric field"))
}

/// Parses a numeric field that may be `*` ("derive from the seed").
fn parse_opt_num(point: &str, field: Option<&str>) -> Result<Option<u64>, String> {
    match field {
        Some("*") => Ok(None),
        other => parse_num(point, other).map(Some),
    }
}

impl Chaos for FailPlan {
    fn on_write(&self, label: &str, bytes: &mut Vec<u8>) -> Result<(), InjectedIoError> {
        let nth_now = self.writes_seen.fetch_add(1, Ordering::SeqCst) + 1;
        for (salt, planned) in self.points.iter().enumerate() {
            match &planned.point {
                FailPoint::WriteError { nth }
                    if *nth == nth_now && !planned.fired.swap(true, Ordering::SeqCst) =>
                {
                    return Err(InjectedIoError {
                        what: format!("write #{nth_now} [{label}]"),
                    });
                }
                FailPoint::TruncateWrite { nth, keep }
                    if *nth == nth_now && !planned.fired.swap(true, Ordering::SeqCst) =>
                {
                    let len = bytes.len() as u64;
                    let keep = keep.unwrap_or_else(|| self.derived(salt as u64, len.max(1)));
                    bytes.truncate(keep.min(len) as usize);
                }
                FailPoint::BitFlipWrite { nth, offset }
                    if *nth == nth_now
                        && !planned.fired.swap(true, Ordering::SeqCst)
                        && !bytes.is_empty() =>
                {
                    let len = bytes.len() as u64;
                    let at = offset.unwrap_or_else(|| self.derived(salt as u64, len)) % len;
                    bytes[at as usize] ^= 0x01;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn on_task(&self, label: &str, index: usize) {
        for planned in &self.points {
            match &planned.point {
                FailPoint::PanicOnce { label: l, index: k }
                    if l == label && *k == index && !planned.fired.swap(true, Ordering::SeqCst) =>
                {
                    // jcdn-lint: allow(D3) -- panicking is this fail point's entire purpose; fires only from an installed test plan
                    panic!("chaos: injected panic in task {index} of {label}");
                }
                FailPoint::PanicAlways { label: l, index: k } if l == label && *k == index => {
                    // jcdn-lint: allow(D3) -- panicking is this fail point's entire purpose; fires only from an installed test plan
                    panic!("chaos: injected persistent panic in task {index} of {label}");
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_point_kind() {
        let plan = FailPlan::parse(
            "seed=9;write-error:1;truncate:2:10;bitflip:3:*;panic:pool.x:4;panic-always:pool.y:5",
        )
        .expect("parses");
        assert_eq!(plan.seed, 9);
        assert_eq!(
            plan.points(),
            vec![
                FailPoint::WriteError { nth: 1 },
                FailPoint::TruncateWrite {
                    nth: 2,
                    keep: Some(10)
                },
                FailPoint::BitFlipWrite {
                    nth: 3,
                    offset: None
                },
                FailPoint::PanicOnce {
                    label: "pool.x".into(),
                    index: 4
                },
                FailPoint::PanicAlways {
                    label: "pool.y".into(),
                    index: 5
                },
            ]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FailPlan::parse("write-error").is_err());
        assert!(FailPlan::parse("truncate:1:x").is_err());
        assert!(FailPlan::parse("panic::3").is_err());
        assert!(FailPlan::parse("frobnicate:1").is_err());
        assert!(FailPlan::parse("write-error:1:2").is_err());
        assert!(FailPlan::parse("seed=abc").is_err());
    }

    #[test]
    fn write_error_fires_on_exactly_the_nth_write() {
        let plan = FailPlan::parse("write-error:2").unwrap();
        let mut buf = vec![1, 2, 3];
        assert!(plan.on_write("a", &mut buf).is_ok());
        assert!(plan.on_write("b", &mut buf).is_err());
        assert!(plan.on_write("c", &mut buf).is_ok(), "fires once");
        assert_eq!(buf, vec![1, 2, 3], "buffer untouched");
    }

    #[test]
    fn truncate_and_bitflip_mutate_but_report_success() {
        let plan = FailPlan::parse("truncate:1:2;bitflip:2:0").unwrap();
        let mut buf = vec![0xAA; 8];
        assert!(plan.on_write("w", &mut buf).is_ok());
        assert_eq!(buf, vec![0xAA, 0xAA], "torn write kept 2 bytes");
        let mut buf = vec![0xAA; 8];
        assert!(plan.on_write("w", &mut buf).is_ok());
        assert_eq!(buf[0], 0xAB, "bit 0 of byte 0 flipped");
        assert_eq!(&buf[1..], &[0xAA; 7][..], "rest untouched");
    }

    #[test]
    fn derived_offsets_are_seed_deterministic() {
        let a = FailPlan::parse("seed=7;bitflip:1:*").unwrap();
        let b = FailPlan::parse("seed=7;bitflip:1:*").unwrap();
        let c = FailPlan::parse("seed=8;bitflip:1:*").unwrap();
        let (mut ba, mut bb, mut bc) = (vec![0u8; 64], vec![0u8; 64], vec![0u8; 64]);
        a.on_write("w", &mut ba).unwrap();
        b.on_write("w", &mut bb).unwrap();
        c.on_write("w", &mut bc).unwrap();
        assert_eq!(ba, bb, "same seed, same corruption");
        assert_ne!(ba, vec![0u8; 64], "something was corrupted");
        // Different seeds *may* collide on an offset, but not silently do
        // nothing; both corrupt exactly one bit.
        assert_eq!(bc.iter().filter(|&&b| b != 0).count(), 1);
    }

    #[test]
    fn panic_once_fires_once_panic_always_fires_always() {
        let plan = FailPlan::parse("panic:p:3").unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.on_task("p", 3);
        }));
        assert!(err.is_err(), "first attempt panics");
        plan.on_task("p", 3); // retry: no panic
        plan.on_task("other", 3); // different label: never panics

        let plan = FailPlan::parse("panic-always:p:0").unwrap();
        for _ in 0..2 {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.on_task("p", 0);
            }));
            assert!(err.is_err(), "every attempt panics");
        }
    }

    #[test]
    fn quiet_handle_injects_nothing() {
        let mut buf = vec![1, 2, 3];
        assert!(handle().on_write("w", &mut buf).is_ok());
        assert_eq!(buf, vec![1, 2, 3]);
        handle().on_task("p", 0); // no panic
    }
}
