//! Property tests: any generated JSON value survives serialize → parse, and
//! pretty/compact forms agree.

use jcdn_json::{parse, to_string, to_string_pretty, Map, Number, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values of bounded depth/size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::from),
        any::<u64>().prop_map(Value::from),
        // Finite floats only; JSON cannot carry NaN/inf.
        any::<f64>().prop_filter_map("finite", |f| { Number::from_f64(f).map(Value::Number) }),
        // Include escapes-heavy and unicode strings.
        "[ -~]{0,20}".prop_map(Value::from),
        any::<String>().prop_map(Value::from),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::vec((any::<String>(), inner), 0..8)
                .prop_map(|entries| { Value::Object(entries.into_iter().collect::<Map>()) }),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trips(v in arb_value()) {
        let text = to_string(&v);
        let back = parse(&text).expect("serialized JSON must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trips_and_agrees_with_compact(v in arb_value()) {
        let pretty = to_string_pretty(&v);
        let back = parse(&pretty).expect("pretty JSON must parse");
        prop_assert_eq!(&back, &v);
        // Compact and pretty forms must denote the same value.
        prop_assert_eq!(parse(&to_string(&v)).unwrap(), back);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in any::<String>()) {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_jsonish_input(s in "[\\[\\]{}:,\"0-9a-z\\\\ .eE+-]{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn pointer_finds_every_array_element(items in prop::collection::vec(any::<i64>(), 0..16)) {
        let v = Value::Array(items.iter().copied().map(Value::from).collect());
        for (i, expected) in items.iter().enumerate() {
            let got = v.pointer(&format!("/{i}")).and_then(Value::as_i64);
            prop_assert_eq!(got, Some(*expected));
        }
    }
}
