//! # jcdn-json — minimal JSON substrate
//!
//! A small, dependency-free JSON implementation used throughout the jcdn
//! workspace. The paper this workspace reproduces (*Characterizing JSON
//! Traffic Patterns on a CDN*, IMC '19) studies `application/json` traffic;
//! the synthetic workload generator emits real JSON bodies (e.g. the manifest
//! pattern of Table 1) and the prefetcher parses them, so the workspace
//! carries its own JSON model rather than an external dependency.
//!
//! The crate provides:
//!
//! * [`Value`] — an owned JSON document tree ([`Value::Object`] preserves
//!   insertion order, which keeps generated manifests deterministic),
//! * [`parse`] / [`parse_with`] — a recursive-descent parser with
//!   position-tracked errors and a configurable depth limit,
//! * [`to_string`] / [`to_string_pretty`] — serializers that round-trip
//!   every value produced by the parser,
//! * [`pointer`][Value::pointer] — RFC 6901 JSON Pointer lookup, used by the
//!   manifest prefetcher to pull URL references out of response bodies.
//!
//! ## Example
//!
//! ```
//! use jcdn_json::{parse, Value};
//!
//! let doc = parse(r#"{"article_id": 1234, "image_url": "news.example/image1234.jpg"}"#)
//!     .expect("valid JSON");
//! assert_eq!(doc.get("article_id").and_then(Value::as_i64), Some(1234));
//! assert_eq!(
//!     doc.pointer("/image_url").and_then(Value::as_str),
//!     Some("news.example/image1234.jpg"),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod number;
mod parse;
mod ser;
mod value;

pub use number::Number;
pub use parse::{parse, parse_with, Error, ErrorKind, ParseOptions};
pub use ser::{to_string, to_string_pretty};
pub use value::{Map, Value};

/// Extracts every string in `value` that looks like a URL or URL path.
///
/// This is the primitive behind *manifest prefetching* (Table 1 of the
/// paper): a JSON manifest response references follow-up objects either by
/// absolute URL (`"news_example.com/image1234.jpg"`) or by a rooted path
/// (`"/article/1234"`). The walk is depth-first and preserves document
/// order, so the result order matches the order an application would issue
/// the follow-up requests in.
///
/// A string is considered URL-like when it
///
/// * starts with `http://`, `https://`, or `//`, or
/// * starts with `/` and has at least one more character, or
/// * contains a `.` before the first `/` and no whitespace (host-relative
///   references such as `cdn.example.com/v1/data.json`).
pub fn extract_url_refs(value: &Value) -> Vec<&str> {
    fn looks_like_url(s: &str) -> bool {
        if s.is_empty() || s.chars().any(char::is_whitespace) {
            return false;
        }
        if s.starts_with("http://") || s.starts_with("https://") || s.starts_with("//") {
            return true;
        }
        if s.starts_with('/') {
            return s.len() > 1;
        }
        // Host-relative: a dot in the authority part followed by a path.
        match s.find('/') {
            Some(slash) if slash > 0 => s[..slash].contains('.'),
            _ => false,
        }
    }

    fn walk<'v>(value: &'v Value, out: &mut Vec<&'v str>) {
        match value {
            Value::String(s) if looks_like_url(s) => {
                out.push(s);
            }
            Value::Array(items) => {
                for item in items {
                    walk(item, out);
                }
            }
            Value::Object(map) => {
                for (_, v) in map.iter() {
                    walk(v, out);
                }
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    walk(value, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_manifest_refs_in_document_order() {
        let doc = parse(
            r#"[
                {"article_id": 1234,
                 "article_title": "Lorem Ipsum",
                 "image_url": "news_example.com/image1234.jpg"},
                {"article_id": 5678,
                 "video": "/video/5678.mp4"}
            ]"#,
        )
        .unwrap();
        assert_eq!(
            extract_url_refs(&doc),
            vec!["news_example.com/image1234.jpg", "/video/5678.mp4"],
        );
    }

    #[test]
    fn plain_strings_are_not_urls() {
        let doc = parse(r#"{"title": "Lorem ipsum dolor", "id": "1234", "slash": "/"}"#).unwrap();
        assert!(extract_url_refs(&doc).is_empty());
    }

    #[test]
    fn absolute_and_protocol_relative_urls() {
        let doc = parse(
            r#"{"a": "https://api.example.com/v2/items",
                "b": "//cdn.example.net/x.js",
                "c": "http://example.org"}"#,
        )
        .unwrap();
        assert_eq!(extract_url_refs(&doc).len(), 3);
    }
}
