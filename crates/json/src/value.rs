//! The owned JSON document tree.

use std::fmt;

use crate::number::Number;

/// An order-preserving string-keyed map used for JSON objects.
///
/// CDN manifests are generated deterministically and compared structurally
/// in tests, so key order must be stable: `Map` keeps entries in insertion
/// order and does lookups by linear scan. JSON objects in traffic logs are
/// small (tens of keys), where a scan beats hashing; the type is not meant
/// as a general-purpose map.
#[derive(Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Returns a mutable reference to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Inserts `value` under `key`, returning a previous value if the key
    /// already existed (the entry keeps its original position).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Removes and returns the value for `key`, if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True when the map contains `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl fmt::Debug for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string (already unescaped).
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// Returns the object member `key`, or `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Returns the array element at `index`, or `None` for non-arrays.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64`, if this is an in-range integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64`, if this is an in-range non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The array content, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object content, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// RFC 6901 JSON Pointer lookup.
    ///
    /// `""` addresses the whole document; `"/a/0/b"` descends through object
    /// member `a`, array index `0`, object member `b`. The escapes `~0` (→
    /// `~`) and `~1` (→ `/`) are decoded. Returns `None` when any step does
    /// not resolve.
    ///
    /// ```
    /// # use jcdn_json::parse;
    /// let v = parse(r#"{"a": [{"b~/c": 7}]}"#).unwrap();
    /// assert_eq!(v.pointer("/a/0/b~0~1c").unwrap().as_i64(), Some(7));
    /// ```
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut current = self;
        for raw_token in pointer[1..].split('/') {
            let token = raw_token.replace("~1", "/").replace("~0", "~");
            current = match current {
                Value::Object(map) => map.get(&token)?,
                Value::Array(items) => {
                    // Leading zeros are invalid array indices per RFC 6901.
                    if token != "0" && token.starts_with('0') {
                        return None;
                    }
                    let idx: usize = token.parse().ok()?;
                    items.get(idx)?
                }
                _ => return None,
            };
        }
        Some(current)
    }

    /// Total number of nodes in the tree (the value itself, all array
    /// elements, and all object members, recursively). Used by tests and by
    /// response-size accounting in the workload generator.
    pub fn node_count(&self) -> usize {
        match self {
            Value::Array(items) => 1 + items.iter().map(Value::node_count).sum::<usize>(),
            Value::Object(map) => 1 + map.values().map(Value::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Number(Number::from(i))
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Number(Number::from(i))
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Self {
        Value::Number(Number::from(u))
    }
}

impl From<u32> for Value {
    fn from(u: u32) -> Self {
        Value::Number(Number::from(u))
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::Number(Number::from(u))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn map_preserves_insertion_order() {
        let mut map = Map::new();
        map.insert("z", Value::from(1));
        map.insert("a", Value::from(2));
        map.insert("m", Value::from(3));
        let keys: Vec<_> = map.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut map = Map::new();
        map.insert("a", Value::from(1));
        map.insert("b", Value::from(2));
        let old = map.insert("a", Value::from(10));
        assert_eq!(old, Some(Value::from(1)));
        let keys: Vec<_> = map.keys().collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(map.get("a"), Some(&Value::from(10)));
    }

    #[test]
    fn map_remove() {
        let mut map = Map::new();
        map.insert("a", Value::from(1));
        assert_eq!(map.remove("a"), Some(Value::from(1)));
        assert_eq!(map.remove("a"), None);
        assert!(map.is_empty());
    }

    #[test]
    fn pointer_whole_document_and_misses() {
        let v = parse(r#"{"a": 1}"#).unwrap();
        assert_eq!(v.pointer(""), Some(&v));
        assert!(v.pointer("/missing").is_none());
        assert!(v.pointer("a").is_none()); // must start with '/'
    }

    #[test]
    fn pointer_rejects_leading_zero_indices() {
        let v = parse(r#"[10, 20]"#).unwrap();
        assert_eq!(v.pointer("/0").unwrap().as_i64(), Some(10));
        assert!(v.pointer("/01").is_none());
    }

    #[test]
    fn node_count_counts_every_node() {
        let v = parse(r#"{"a": [1, 2, {"b": null}]}"#).unwrap();
        // object + array + 1 + 2 + inner object + null
        assert_eq!(v.node_count(), 6);
    }
}
