//! Recursive-descent JSON parser (RFC 8259) with positioned errors.

use std::fmt;

use crate::number::Number;
use crate::value::{Map, Value};

/// Options controlling the parser.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// Maximum nesting depth of arrays/objects. Exceeding it yields
    /// [`ErrorKind::DepthLimit`] instead of blowing the stack — CDN edge
    /// parsers face adversarial bodies, so the limit is load-bearing.
    pub max_depth: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { max_depth: 128 }
    }
}

/// What went wrong while parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A byte that cannot start or continue the expected production.
    UnexpectedChar(char),
    /// Nesting exceeded [`ParseOptions::max_depth`].
    DepthLimit,
    /// Numeric literal was malformed or out of range.
    InvalidNumber,
    /// String contained an invalid escape or control character.
    InvalidString,
    /// A `\uXXXX` escape did not form a valid scalar (bad hex or lone
    /// surrogate).
    InvalidUnicodeEscape,
    /// Valid JSON value followed by trailing non-whitespace.
    TrailingData,
}

/// Parse error with byte offset and 1-based line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// The error category.
    pub kind: ErrorKind,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes from the line start).
    pub column: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            ErrorKind::UnexpectedEof => "unexpected end of input".to_owned(),
            ErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            ErrorKind::DepthLimit => "nesting depth limit exceeded".to_owned(),
            ErrorKind::InvalidNumber => "invalid number literal".to_owned(),
            ErrorKind::InvalidString => "invalid string literal".to_owned(),
            ErrorKind::InvalidUnicodeEscape => "invalid \\u escape".to_owned(),
            ErrorKind::TrailingData => "trailing data after value".to_owned(),
        };
        write!(f, "{what} at line {} column {}", self.line, self.column)
    }
}

impl std::error::Error for Error {}

/// Parses `input` with default [`ParseOptions`].
pub fn parse(input: &str) -> Result<Value, Error> {
    parse_with(input, ParseOptions::default())
}

/// Parses `input` with explicit options.
pub fn parse_with(input: &str, options: ParseOptions) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
        options,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error(ErrorKind::TrailingData));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    fn error(&self, kind: ErrorKind) -> Error {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = self.pos - consumed.rfind('\n').map_or(0, |i| i + 1) + 1;
        Error {
            kind,
            offset: self.pos,
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.input[self.pos..].starts_with(literal) {
            self.pos += literal.len();
            Ok(value)
        } else {
            // Point at the first diverging character for a precise error.
            match self.peek() {
                Some(b) => Err(self.error(ErrorKind::UnexpectedChar(b as char))),
                None => Err(self.error(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > self.options.max_depth {
            return Err(self.error(ErrorKind::DepthLimit));
        }
        match self.peek() {
            None => Err(self.error(ErrorKind::UnexpectedEof)),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.error(ErrorKind::UnexpectedChar(b as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.bump(); // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.error(ErrorKind::UnexpectedChar(b as char)));
                }
                None => return Err(self.error(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.bump(); // '{'
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return match self.peek() {
                    Some(b) => Err(self.error(ErrorKind::UnexpectedChar(b as char))),
                    None => Err(self.error(ErrorKind::UnexpectedEof)),
                };
            }
            let key = self.string()?;
            self.skip_ws();
            match self.bump() {
                Some(b':') => {}
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.error(ErrorKind::UnexpectedChar(b as char)));
                }
                None => return Err(self.error(ErrorKind::UnexpectedEof)),
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            // RFC 8259 leaves duplicate-key behaviour implementation-defined;
            // we keep the last value, matching serde_json.
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.error(ErrorKind::UnexpectedChar(b as char)));
                }
                None => return Err(self.error(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    Some(_) => {
                        self.pos -= 1;
                        return Err(self.error(ErrorKind::InvalidString));
                    }
                    None => return Err(self.error(ErrorKind::UnexpectedEof)),
                },
                Some(b) if b < 0x20 => {
                    self.pos -= 1;
                    return Err(self.error(ErrorKind::InvalidString));
                }
                Some(_) => unreachable!("fast path consumed plain bytes"),
                None => return Err(self.error(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error(ErrorKind::UnexpectedEof))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error(ErrorKind::InvalidUnicodeEscape))?;
            v = (v << 4) | digit as u16;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: must be followed by \uDC00..=\uDFFF.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.error(ErrorKind::InvalidUnicodeEscape));
            }
            let second = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.error(ErrorKind::InvalidUnicodeEscape));
            }
            let scalar =
                0x10000 + ((u32::from(first) - 0xD800) << 10) + (u32::from(second) - 0xDC00);
            char::from_u32(scalar).ok_or_else(|| self.error(ErrorKind::InvalidUnicodeEscape))
        } else if (0xDC00..=0xDFFF).contains(&first) {
            Err(self.error(ErrorKind::InvalidUnicodeEscape))
        } else {
            char::from_u32(u32::from(first))
                .ok_or_else(|| self.error(ErrorKind::InvalidUnicodeEscape))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        // Integer part: either a single 0, or 1-9 followed by digits.
        match self.bump() {
            Some(b'0') => {}
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => {
                self.pos = start;
                return Err(self.error(ErrorKind::InvalidNumber));
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error(ErrorKind::InvalidNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error(ErrorKind::InvalidNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = &self.input[start..self.pos];
        let number = if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| self.error(ErrorKind::InvalidNumber))?;
            Number::from_f64(f).ok_or_else(|| self.error(ErrorKind::InvalidNumber))?
        } else if let Ok(i) = text.parse::<i64>() {
            Number::from(i)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::from(u)
        } else {
            // Integer overflowing u64: fall back to float, as serde_json's
            // default (arbitrary_precision off) does.
            let f: f64 = text
                .parse()
                .map_err(|_| self.error(ErrorKind::InvalidNumber))?;
            Number::from_f64(f).ok_or_else(|| self.error(ErrorKind::InvalidNumber))?
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse(r#""hi""#).unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": [true, null]}], "c": "x"}"#).unwrap();
        assert_eq!(v.pointer("/a/1/b/0").unwrap(), &Value::Bool(true));
        assert!(v.pointer("/a/1/b/1").unwrap().is_null());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.pointer("/a/1").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\u{8}\u{c}\n\r\t"));
    }

    #[test]
    fn unicode_escapes_including_surrogate_pairs() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // U+1F600 as surrogate pair.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn lone_surrogates_rejected() {
        assert_eq!(
            parse(r#""\ud83d""#).unwrap_err().kind,
            ErrorKind::InvalidUnicodeEscape
        );
        assert_eq!(
            parse(r#""\ude00""#).unwrap_err().kind,
            ErrorKind::InvalidUnicodeEscape
        );
        assert_eq!(
            parse(r#""\ud83dx""#).unwrap_err().kind,
            ErrorKind::InvalidUnicodeEscape
        );
    }

    #[test]
    fn rejects_malformed_numbers() {
        for bad in ["01", "1.", ".5", "1e", "1e+", "-", "+1", "0x10", "1.2.3"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        assert_eq!(
            parse("\"a\nb\"").unwrap_err().kind,
            ErrorKind::InvalidString
        );
    }

    #[test]
    fn rejects_trailing_data_and_eof() {
        assert_eq!(parse("1 2").unwrap_err().kind, ErrorKind::TrailingData);
        assert_eq!(parse("[1,").unwrap_err().kind, ErrorKind::UnexpectedEof);
        assert_eq!(parse(r#"{"a""#).unwrap_err().kind, ErrorKind::UnexpectedEof);
        assert_eq!(parse("").unwrap_err().kind, ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_trailing_commas_and_bare_words() {
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1,}"#).is_err());
        assert!(parse("nul").is_err());
        assert!(parse("truth").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(parse(&deep).unwrap_err().kind, ErrorKind::DepthLimit);
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
        let opts = ParseOptions { max_depth: 10 };
        let just_over = "[".repeat(12) + &"]".repeat(12);
        assert_eq!(
            parse_with(&just_over, opts).unwrap_err().kind,
            ErrorKind::DepthLimit
        );
    }

    #[test]
    fn error_positions_are_line_and_column_accurate() {
        let err = parse("{\n  \"a\": @\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 8);
        assert_eq!(err.offset, 9);
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('@'));
    }

    #[test]
    fn duplicate_keys_keep_last_value() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn huge_integers_fall_back_to_float() {
        let v = parse("18446744073709551616").unwrap(); // u64::MAX + 1
        assert_eq!(v.as_u64(), None);
        assert!(v.as_f64().unwrap() > 1.8e19);
    }

    #[test]
    fn u64_range_integers_preserved() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
