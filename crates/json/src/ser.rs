//! JSON serialization (compact and pretty).

use std::fmt::Write as _;

use crate::value::Value;

/// Serializes `value` in compact form (no insignificant whitespace).
///
/// Output always re-parses to a `Value` equal to the input; this invariant
/// is enforced by a property test in `tests/roundtrip.rs`.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes `value` with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::value::Map;

    #[test]
    fn compact_output() {
        let v = parse(r#"{ "a" : [ 1 , "x" ] , "b" : null }"#).unwrap();
        assert_eq!(to_string(&v), r#"{"a":[1,"x"],"b":null}"#);
    }

    #[test]
    fn pretty_output() {
        let v = parse(r#"{"a":[1],"b":{}}"#).unwrap();
        let expected = "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}";
        assert_eq!(to_string_pretty(&v), expected);
    }

    #[test]
    fn escapes_control_and_special_chars() {
        let v = Value::String("a\"b\\c\n\u{1}".to_owned());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\n\\u0001\"");
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])), "[]");
        assert_eq!(to_string(&Value::Object(Map::new())), "{}");
        assert_eq!(to_string_pretty(&Value::Array(vec![])), "[]");
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        let v = Value::String("héllo 😀".to_owned());
        assert_eq!(to_string(&v), "\"héllo 😀\"");
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip() {
        for text in ["0", "-1", "42", "2.5", "-0.125", "18446744073709551615"] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&to_string(&v)).unwrap(), v, "round-trip of {text}");
        }
    }
}
