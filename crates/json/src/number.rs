//! JSON number representation.
//!
//! JSON does not distinguish integers from floats, but CDN log payloads are
//! full of identifiers (`"article_id": 1234`) that must survive a
//! parse → serialize round trip without turning into `1234.0`. [`Number`]
//! therefore keeps three internal variants (signed, unsigned, float) in the
//! same spirit as `serde_json::Number`, while exposing a small, total API.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary JSON number.
///
/// Construction goes through the `From` impls; inspection through
/// [`as_i64`][Number::as_i64] / [`as_u64`][Number::as_u64] /
/// [`as_f64`][Number::as_f64].
#[derive(Clone, Copy, Debug)]
pub struct Number(Repr);

#[derive(Clone, Copy, Debug)]
enum Repr {
    /// Negative integers (and any integer that arrived as `i64`).
    Int(i64),
    /// Non-negative integers too large for `i64`.
    UInt(u64),
    /// Everything with a fraction or exponent. Never NaN.
    Float(f64),
}

impl Number {
    /// Creates a float number, returning `None` for NaN (JSON has no NaN).
    ///
    /// Infinities are also rejected: they are unrepresentable in JSON text.
    pub fn from_f64(f: f64) -> Option<Self> {
        if f.is_finite() {
            Some(Number(Repr::Float(f)))
        } else {
            None
        }
    }

    /// Returns the value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::Int(i) => Some(i),
            Repr::UInt(u) => i64::try_from(u).ok(),
            Repr::Float(_) => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::Int(i) => u64::try_from(i).ok(),
            Repr::UInt(u) => Some(u),
            Repr::Float(_) => None,
        }
    }

    /// Returns the value as `f64` (always possible, possibly lossy for huge
    /// integers).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            Repr::Int(i) => i as f64,
            Repr::UInt(u) => u as f64,
            Repr::Float(f) => f,
        }
    }

    /// True when the number was parsed/constructed as an integer.
    pub fn is_integer(&self) -> bool {
        !matches!(self.0, Repr::Float(_))
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Self {
        Number(Repr::Int(i))
    }
}

impl From<u64> for Number {
    fn from(u: u64) -> Self {
        match i64::try_from(u) {
            Ok(i) => Number(Repr::Int(i)),
            Err(_) => Number(Repr::UInt(u)),
        }
    }
}

impl From<i32> for Number {
    fn from(i: i32) -> Self {
        Number(Repr::Int(i64::from(i)))
    }
}

impl From<u32> for Number {
    fn from(u: u32) -> Self {
        Number(Repr::Int(i64::from(u)))
    }
}

impl From<usize> for Number {
    fn from(u: usize) -> Self {
        Number::from(u as u64)
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (Repr::Int(a), Repr::Int(b)) => a == b,
            (Repr::UInt(a), Repr::UInt(b)) => a == b,
            (Repr::Int(a), Repr::UInt(b)) | (Repr::UInt(b), Repr::Int(a)) => {
                a >= 0 && a as u64 == b
            }
            // A float compares equal to an integer only when it is that
            // integer exactly; this keeps Eq consistent with serialization.
            (Repr::Float(a), Repr::Float(b)) => a == b,
            (Repr::Float(f), Repr::Int(i)) | (Repr::Int(i), Repr::Float(f)) => {
                f.fract() == 0.0 && f == i as f64
            }
            (Repr::Float(f), Repr::UInt(u)) | (Repr::UInt(u), Repr::Float(f)) => {
                f.fract() == 0.0 && f == u as f64
            }
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.as_f64().partial_cmp(&other.as_f64())
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::Int(i) => write!(f, "{i}"),
            Repr::UInt(u) => write!(f, "{u}"),
            Repr::Float(x) => {
                // `{}` on f64 prints the shortest representation that
                // round-trips; ensure a fraction/exponent marker survives so
                // the value re-parses as a float.
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        let n = Number::from(i64::MIN);
        assert_eq!(n.as_i64(), Some(i64::MIN));
        assert_eq!(n.to_string(), i64::MIN.to_string());

        let n = Number::from(u64::MAX);
        assert_eq!(n.as_u64(), Some(u64::MAX));
        assert_eq!(n.as_i64(), None);
        assert_eq!(n.to_string(), u64::MAX.to_string());
    }

    #[test]
    fn nan_and_infinity_rejected() {
        assert!(Number::from_f64(f64::NAN).is_none());
        assert!(Number::from_f64(f64::INFINITY).is_none());
        assert!(Number::from_f64(f64::NEG_INFINITY).is_none());
        assert!(Number::from_f64(0.5).is_some());
    }

    #[test]
    fn float_display_reparses_as_float() {
        let n = Number::from_f64(2.0).unwrap();
        assert_eq!(n.to_string(), "2.0");
        assert!(!n.is_integer());
    }

    #[test]
    fn cross_repr_equality() {
        assert_eq!(Number::from(5i64), Number::from(5u64));
        assert_eq!(Number::from(5i64), Number::from_f64(5.0).unwrap());
        assert_ne!(Number::from(5i64), Number::from_f64(5.5).unwrap());
        assert_ne!(Number::from(-1i64), Number::from(u64::MAX));
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Number::from(1i64) < Number::from_f64(1.5).unwrap());
        assert!(Number::from_f64(1.5).unwrap() < Number::from(2i64));
    }
}
