//! # jcdn-exec — scatter–gather execution for sharded pipelines
//!
//! The sharded trace pipeline follows one parallelism shape everywhere:
//! split work into independent items (workload client blocks, trace
//! shards, edge partitions), farm the items out to a bounded worker pool,
//! and gather the results back **in item order** so downstream merging is
//! deterministic regardless of worker count or scheduling.
//!
//! [`scatter_gather`] is that shape: `std::thread::scope` for borrowing
//! worker closures, crossbeam MPMC channels as the job queue, and an
//! index-tagged result channel so out-of-order completion never reorders
//! results. With `threads <= 1` it degrades to a plain sequential map —
//! callers need no separate serial path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

use jcdn_obs::clock::Stopwatch;
use jcdn_obs::metrics::Histogram;
use jcdn_obs::pool::PoolReport;

/// Runs `f(0..items)` on a pool of `threads` workers and returns the
/// results indexed by item, exactly as `(0..items).map(f).collect()`
/// would. Items are pulled from a shared queue, so uneven item costs
/// balance across workers. A panicking worker propagates the panic.
///
/// Equivalent to [`scatter_gather_labeled`] with the label `"exec.pool"`;
/// call sites in the pipeline pass a stage label so their pool reports
/// are attributable.
pub fn scatter_gather<T, F>(items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    scatter_gather_labeled("exec.pool", items, threads, f)
}

/// Per-worker tallies, gathered after the scope joins.
struct WorkerStats {
    tasks: u64,
    busy_us: u64,
    latency: Histogram,
}

/// [`scatter_gather`] with an attribution label. Every fan-out files a
/// [`PoolReport`] (per-worker task counts, gather-queue high-water mark,
/// task-latency histogram) into the `jcdn-obs` pool sink, so a starved
/// worker or a backed-up channel is visible in the run manifest instead
/// of silent; with `jcdn_obs::pool::set_logging(true)` each fan-out also
/// logs a one-line summary. The report is wall-clock perf data — the
/// *results* stay deterministic for any thread count, exactly as before.
pub fn scatter_gather_labeled<T, F>(
    label: &'static str,
    items: usize,
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let wall = Stopwatch::start();
    let threads = threads.min(items);
    if threads <= 1 {
        let mut stats = WorkerStats {
            tasks: 0,
            busy_us: 0,
            latency: Histogram::default(),
        };
        let results = (0..items)
            .map(|i| {
                let task = Stopwatch::start();
                let value = f(i);
                let us = task.elapsed_us();
                stats.tasks += 1;
                stats.busy_us += us;
                stats.latency.observe(us);
                value
            })
            .collect();
        if items > 0 {
            file_report(label, items, vec![stats], 0, wall.elapsed_us());
        }
        return results;
    }

    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    for i in 0..items {
        // jcdn-lint: allow(D3) -- job_rx is dropped only after the scope below; send cannot fail yet
        job_tx.send(i).expect("job receiver alive");
    }
    drop(job_tx);

    // Results waiting in the gather channel: workers increment after
    // sending, the gatherer decrements after receiving and tracks the
    // high-water mark — the "channel backing up" signal.
    let backlog = AtomicU64::new(0);
    let f = &f;
    let backlog = &backlog;
    let (slots, worker_stats, high_water) = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let jobs = job_rx.clone();
            let results = result_tx.clone();
            handles.push(scope.spawn(move |_| {
                let mut stats = WorkerStats {
                    tasks: 0,
                    busy_us: 0,
                    latency: Histogram::default(),
                };
                while let Ok(i) = jobs.recv() {
                    let task = Stopwatch::start();
                    let value = f(i);
                    let us = task.elapsed_us();
                    stats.tasks += 1;
                    stats.busy_us += us;
                    stats.latency.observe(us);
                    // Increment BEFORE the send: the gatherer decrements
                    // after each recv, so incrementing after would let the
                    // decrement land first and wrap the counter below zero.
                    backlog.fetch_add(1, Ordering::Relaxed);
                    if results.send((i, value)).is_err() {
                        // Gatherer gone (a sibling panicked); stop early.
                        backlog.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                }
                stats
            }));
        }
        drop(result_tx);
        drop(job_rx);

        let mut high_water = 0u64;
        let mut slots: Vec<Option<T>> = (0..items).map(|_| None).collect();
        while let Ok((i, value)) = result_rx.recv() {
            // Sample depth before decrementing: this recv observed the
            // queue at its fullest from the gatherer's point of view.
            high_water = high_water.max(backlog.load(Ordering::Relaxed));
            backlog.fetch_sub(1, Ordering::Relaxed);
            slots[i] = Some(value);
        }
        let worker_stats: Vec<WorkerStats> = handles
            .into_iter()
            // jcdn-lint: allow(D3) -- a panicked worker makes the enclosing scope Err below; this join only runs on clean workers
            .map(|h| h.join().expect("worker joined"))
            .collect();
        (slots, worker_stats, high_water)
    })
    // jcdn-lint: allow(D3) -- scope Err means a worker panicked; re-panicking propagates it (documented contract)
    .expect("worker pool joined");

    file_report(label, items, worker_stats, high_water, wall.elapsed_us());
    slots
        .into_iter()
        // jcdn-lint: allow(D3) -- the scope joined without panic, so every index was sent exactly once
        .map(|slot| slot.expect("every item produced a result"))
        .collect()
}

/// Assembles and files the [`PoolReport`] for one fan-out.
fn file_report(
    label: &str,
    items: usize,
    worker_stats: Vec<WorkerStats>,
    queue_high_water: u64,
    wall_us: u64,
) {
    let mut report = PoolReport {
        label: label.to_string(),
        items: items as u64,
        workers: worker_stats.len() as u64,
        worker_tasks: Vec::with_capacity(worker_stats.len()),
        queue_high_water,
        busy_us: 0,
        wall_us,
        task_latency_us: Histogram::default(),
    };
    for stats in worker_stats {
        report.worker_tasks.push(stats.tasks);
        report.busy_us += stats.busy_us;
        report.task_latency_us.merge(&stats.latency);
    }
    jcdn_obs::pool::record(report);
}

/// Splits `len` items into at most `parts` contiguous index ranges of
/// near-equal size (the first `len % parts` ranges get one extra item).
/// Empty ranges are never returned, so fewer than `parts` ranges come back
/// when `len < parts`.
pub fn partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_any_thread_count() {
        let expected: Vec<u64> = (0..37).map(|i| (i as u64) * (i as u64)).collect();
        for threads in [0, 1, 2, 4, 16] {
            let got = scatter_gather(37, threads, |i| (i as u64) * (i as u64));
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn borrows_environment() {
        let data: Vec<u64> = (0..100).collect();
        let sums = scatter_gather(4, 2, |i| data[i * 25..(i + 1) * 25].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u8> = scatter_gather(0, 4, |_| unreachable!("no items"));
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_item_costs_still_return_in_order() {
        let got = scatter_gather(16, 4, |i| {
            // Early items sleep longest, so completion order inverts
            // submission order if the pool doesn't re-index results.
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn partition_covers_exactly_once() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (8, 1), (100, 7)] {
            let ranges = partition(len, parts);
            let mut covered = 0;
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous");
                assert!(!r.is_empty(), "no empty ranges");
                covered += r.len();
                next = r.end;
            }
            assert_eq!(covered, len, "len={len} parts={parts}");
            assert!(ranges.len() <= parts.max(1));
        }
        // Near-equal sizes: 10 into 3 → 4,3,3.
        let sizes: Vec<usize> = partition(10, 3).iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn fan_out_files_a_pool_report() {
        // The sink is process-global; filter to this test's unique label
        // rather than assuming an empty sink.
        let _ = scatter_gather_labeled("exec.test.report", 16, 4, |i| i);
        let (reports, _) = jcdn_obs::pool::drain();
        let report = reports
            .iter()
            .find(|r| r.label == "exec.test.report")
            .expect("fan-out filed a report");
        assert_eq!(report.items, 16);
        assert_eq!(report.workers, 4);
        assert_eq!(report.worker_tasks.iter().sum::<u64>(), 16);
        assert_eq!(report.task_latency_us.count(), 16);
    }

    #[test]
    fn sequential_path_files_a_report_too() {
        let _ = scatter_gather_labeled("exec.test.seq", 5, 1, |i| i * 2);
        let (reports, _) = jcdn_obs::pool::drain();
        let report = reports
            .iter()
            .find(|r| r.label == "exec.test.seq")
            .expect("sequential fan-out filed a report");
        assert_eq!(report.workers, 1);
        assert_eq!(report.worker_tasks, vec![5]);
        assert_eq!(report.queue_high_water, 0);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        scatter_gather(8, 2, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
