//! # jcdn-exec — scatter–gather execution for sharded pipelines
//!
//! The sharded trace pipeline follows one parallelism shape everywhere:
//! split work into independent items (workload client blocks, trace
//! shards, edge partitions), farm the items out to a bounded worker pool,
//! and gather the results back **in item order** so downstream merging is
//! deterministic regardless of worker count or scheduling.
//!
//! [`scatter_gather`] is that shape: `std::thread::scope` for borrowing
//! worker closures, crossbeam MPMC channels as the job queue, and an
//! index-tagged result channel so out-of-order completion never reorders
//! results. With `threads <= 1` it degrades to a plain sequential map —
//! callers need no separate serial path.
//!
//! ## Panic isolation
//!
//! Every task runs inside the workspace's one sanctioned unwind boundary
//! ([`run_quarantined`]): a panicking task costs *that item*, never the
//! pool. A failed item is retried once, sequentially, after the pool
//! drains — transient failures (a poisoned scratch state, an injected
//! fault that fires once) recover with no caller involvement. Items that
//! fail both attempts are **quarantined**:
//!
//! * [`scatter_gather_isolated`] reports them explicitly — the result slot
//!   stays `None` and the index lands in [`Gathered::quarantined`] so the
//!   caller can finish with a partial result and say so.
//! * [`scatter_gather`] / [`scatter_gather_labeled`] keep their historical
//!   contract — if any item is still failing after the retry, the first
//!   panic payload is re-raised on the calling thread.
//!
//! Both surface `task_panics` in the filed [`PoolReport`], so a run
//! manifest shows every caught panic even when the retry recovered it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};

use jcdn_obs::clock::Stopwatch;
use jcdn_obs::metrics::Histogram;
use jcdn_obs::pool::PoolReport;

/// Runs `f(0..items)` on a pool of `threads` workers and returns the
/// results indexed by item, exactly as `(0..items).map(f).collect()`
/// would. Items are pulled from a shared queue, so uneven item costs
/// balance across workers. A panicking item is retried once sequentially;
/// if it panics again the original panic propagates to the caller.
///
/// Equivalent to [`scatter_gather_labeled`] with the label `"exec.pool"`;
/// call sites in the pipeline pass a stage label so their pool reports
/// are attributable.
pub fn scatter_gather<T, F>(items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    scatter_gather_labeled("exec.pool", items, threads, f)
}

/// Outcome of a panic-isolated fan-out ([`scatter_gather_isolated`]).
///
/// `results` is indexed by item; a `None` slot means the item panicked in
/// the pool *and* in the sequential retry, and its index is listed in
/// `quarantined`. Callers that merge partials should skip `None` slots and
/// surface the quarantined shard list to the user — a partial report that
/// says it is partial beats an aborted pipeline.
pub struct Gathered<T> {
    /// Per-item results; `None` marks a quarantined item.
    pub results: Vec<Option<T>>,
    /// Total panics caught, counting a pool failure and its failed retry
    /// separately (so a recovered item contributes 1, a quarantined one 2).
    pub task_panics: u64,
    /// Item indices (sorted) that failed both attempts.
    pub quarantined: Vec<usize>,
}

impl<T> Gathered<T> {
    /// Whether every item produced a result.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Per-worker tallies, gathered after the scope joins.
struct WorkerStats {
    tasks: u64,
    busy_us: u64,
    latency: Histogram,
}

impl WorkerStats {
    fn new() -> Self {
        WorkerStats {
            tasks: 0,
            busy_us: 0,
            latency: Histogram::default(),
        }
    }
}

/// Internal result of one pool pass plus its retry bookkeeping.
struct PoolRun<T> {
    results: Vec<Option<T>>,
    task_panics: u64,
    quarantined: Vec<usize>,
    first_panic: Option<Box<dyn Any + Send>>,
    worker_stats: Vec<WorkerStats>,
    high_water: u64,
}

/// Runs one task inside the unwind boundary, after giving an installed
/// chaos plan the chance to inject a fault for this `(label, index)`.
///
/// This is the single sanctioned `catch_unwind` site in the workspace
/// (jcdn-lint D3 flags any other): the boundary exists so a panic in one
/// shard's task is converted into a typed per-item failure instead of
/// tearing down the whole pipeline, and every use of it funnels through
/// the quarantine-and-retry policy above.
fn run_quarantined<T, F>(label: &'static str, index: usize, f: &F) -> Result<T, Box<dyn Any + Send>>
where
    F: Fn(usize) -> T + Sync,
{
    // jcdn-lint: allow(D3) -- the one sanctioned unwind boundary: converts a task panic into a per-item failure that the quarantine/retry policy handles
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        jcdn_chaos::handle().on_task(label, index);
        f(index)
    }))
}

/// One pass over `0..items` with `threads` workers, panics caught per
/// item. Does not file a report — callers do, after folding in any retry.
fn pool_run<T, F>(label: &'static str, items: usize, threads: usize, f: &F) -> PoolRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(items);
    if threads <= 1 {
        let mut stats = WorkerStats::new();
        let mut run = PoolRun {
            results: Vec::with_capacity(items),
            task_panics: 0,
            quarantined: Vec::new(),
            first_panic: None,
            worker_stats: Vec::new(),
            high_water: 0,
        };
        for i in 0..items {
            let task = Stopwatch::start();
            let outcome = run_quarantined(label, i, f);
            let us = task.elapsed_us();
            stats.tasks += 1;
            stats.busy_us += us;
            stats.latency.observe(us);
            match outcome {
                Ok(value) => run.results.push(Some(value)),
                Err(payload) => {
                    run.results.push(None);
                    run.task_panics += 1;
                    run.quarantined.push(i);
                    if run.first_panic.is_none() {
                        run.first_panic = Some(payload);
                    }
                }
            }
        }
        run.worker_stats.push(stats);
        return run;
    }

    type TaskOutcome<T> = Result<T, Box<dyn Any + Send>>;
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, TaskOutcome<T>)>();
    for i in 0..items {
        // jcdn-lint: allow(D3) -- job_rx is dropped only after the scope below; send cannot fail yet
        job_tx.send(i).expect("job receiver alive");
    }
    drop(job_tx);

    // Results waiting in the gather channel: workers increment after
    // sending, the gatherer decrements after receiving and tracks the
    // high-water mark — the "channel backing up" signal.
    let backlog = AtomicU64::new(0);
    let backlog = &backlog;
    let (mut run, worker_stats) = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let jobs = job_rx.clone();
            let results = result_tx.clone();
            handles.push(scope.spawn(move |_| {
                let mut stats = WorkerStats::new();
                while let Ok(i) = jobs.recv() {
                    let task = Stopwatch::start();
                    let outcome = run_quarantined(label, i, f);
                    let us = task.elapsed_us();
                    stats.tasks += 1;
                    stats.busy_us += us;
                    stats.latency.observe(us);
                    // Increment BEFORE the send: the gatherer decrements
                    // after each recv, so incrementing after would let the
                    // decrement land first and wrap the counter below zero.
                    backlog.fetch_add(1, Ordering::Relaxed);
                    if results.send((i, outcome)).is_err() {
                        // Gatherer gone; stop early.
                        backlog.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                }
                stats
            }));
        }
        drop(result_tx);
        drop(job_rx);

        let mut run = PoolRun {
            results: (0..items).map(|_| None).collect(),
            task_panics: 0,
            quarantined: Vec::new(),
            first_panic: None,
            worker_stats: Vec::new(),
            high_water: 0,
        };
        while let Ok((i, outcome)) = result_rx.recv() {
            // Sample depth before decrementing: this recv observed the
            // queue at its fullest from the gatherer's point of view.
            run.high_water = run.high_water.max(backlog.load(Ordering::Relaxed));
            backlog.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(value) => run.results[i] = Some(value),
                Err(payload) => {
                    run.task_panics += 1;
                    run.quarantined.push(i);
                    if run.first_panic.is_none() {
                        run.first_panic = Some(payload);
                    }
                }
            }
        }
        let worker_stats: Vec<WorkerStats> = handles
            .into_iter()
            // jcdn-lint: allow(D3) -- task panics are caught inside run_quarantined, so a worker thread body cannot unwind
            .map(|h| h.join().expect("worker joined"))
            .collect();
        (run, worker_stats)
    })
    // jcdn-lint: allow(D3) -- scope Err requires a spawned thread to panic, and every task panic is already caught inside run_quarantined
    .expect("worker pool joined");

    // Arrival order is scheduling-dependent; sort so the retry pass and
    // the caller-visible quarantine list are deterministic.
    run.quarantined.sort_unstable();
    run.worker_stats = worker_stats;
    run
}

/// Retries each quarantined item once, sequentially, on the calling
/// thread. Recovered items fill their result slot; persistent failures
/// stay quarantined. Retry timings are appended as one extra
/// [`WorkerStats`] entry so the filed report covers all work done.
fn retry_quarantined<T, F>(label: &'static str, run: &mut PoolRun<T>, f: &F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if run.quarantined.is_empty() {
        return;
    }
    let failed = std::mem::take(&mut run.quarantined);
    let mut stats = WorkerStats::new();
    for i in failed {
        let task = Stopwatch::start();
        let outcome = run_quarantined(label, i, f);
        let us = task.elapsed_us();
        stats.tasks += 1;
        stats.busy_us += us;
        stats.latency.observe(us);
        match outcome {
            Ok(value) => run.results[i] = Some(value),
            Err(payload) => {
                run.task_panics += 1;
                run.quarantined.push(i);
                if run.first_panic.is_none() {
                    run.first_panic = Some(payload);
                }
            }
        }
    }
    run.worker_stats.push(stats);
}

/// [`scatter_gather`] with an attribution label. Every fan-out files a
/// [`PoolReport`] (per-worker task counts, gather-queue high-water mark,
/// task-latency histogram, caught-panic count) into the `jcdn-obs` pool
/// sink, so a starved worker or a backed-up channel is visible in the run
/// manifest instead of silent; with `jcdn_obs::pool::set_logging(true)`
/// each fan-out also logs a one-line summary. The report is wall-clock
/// perf data — the *results* stay deterministic for any thread count,
/// exactly as before.
///
/// Panic contract: a panicking item is retried once sequentially; if it
/// panics both times, the first captured payload is re-raised here after
/// the report is filed. Use [`scatter_gather_isolated`] to receive the
/// partial result instead.
pub fn scatter_gather_labeled<T, F>(
    label: &'static str,
    items: usize,
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let wall = Stopwatch::start();
    let mut run = pool_run(label, items, threads, &f);
    retry_quarantined(label, &mut run, &f);
    if items > 0 {
        file_report(
            label,
            items,
            run.worker_stats,
            run.high_water,
            run.task_panics,
            wall.elapsed_us(),
        );
    }
    if !run.quarantined.is_empty() {
        if let Some(payload) = run.first_panic {
            std::panic::resume_unwind(payload);
        }
    }
    run.results
        .into_iter()
        // jcdn-lint: allow(D3) -- quarantined is empty here, so every slot was filled by the pool or the retry
        .map(|slot| slot.expect("every item produced a result"))
        .collect()
}

/// Fallible fan-out: [`scatter_gather_labeled`] for tasks returning
/// `Result`. Every item runs (the pool does not cancel work in flight);
/// if any failed, the error of the **lowest-indexed** failing item is
/// returned — exactly what a sequential loop stopping at its first
/// failure would report, so parallel callers keep deterministic,
/// order-independent error behavior.
pub fn try_scatter_gather_labeled<T, E, F>(
    label: &'static str,
    items: usize,
    threads: usize,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(items);
    // Results come back in item order, so the first `?` hit below is the
    // lowest-indexed error.
    for result in scatter_gather_labeled(label, items, threads, f) {
        out.push(result?);
    }
    Ok(out)
}

/// Panic-isolated fan-out: like [`scatter_gather_labeled`] but instead of
/// re-raising a persistent panic it returns the partial result, with the
/// failing items quarantined (see [`Gathered`]). The filed [`PoolReport`]
/// carries the caught-panic count either way.
pub fn scatter_gather_isolated<T, F>(
    label: &'static str,
    items: usize,
    threads: usize,
    f: F,
) -> Gathered<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let wall = Stopwatch::start();
    let mut run = pool_run(label, items, threads, &f);
    retry_quarantined(label, &mut run, &f);
    if items > 0 {
        file_report(
            label,
            items,
            run.worker_stats,
            run.high_water,
            run.task_panics,
            wall.elapsed_us(),
        );
    }
    Gathered {
        results: run.results,
        task_panics: run.task_panics,
        quarantined: run.quarantined,
    }
}

/// Assembles and files the [`PoolReport`] for one fan-out.
fn file_report(
    label: &str,
    items: usize,
    worker_stats: Vec<WorkerStats>,
    queue_high_water: u64,
    task_panics: u64,
    wall_us: u64,
) {
    let mut report = PoolReport {
        label: label.to_string(),
        items: items as u64,
        workers: worker_stats.len() as u64,
        worker_tasks: Vec::with_capacity(worker_stats.len()),
        queue_high_water,
        busy_us: 0,
        wall_us,
        task_panics,
        task_latency_us: Histogram::default(),
    };
    for stats in worker_stats {
        report.worker_tasks.push(stats.tasks);
        report.busy_us += stats.busy_us;
        report.task_latency_us.merge(&stats.latency);
    }
    jcdn_obs::pool::record(report);
}

/// Splits `len` items into at most `parts` contiguous index ranges of
/// near-equal size (the first `len % parts` ranges get one extra item).
/// Empty ranges are never returned, so fewer than `parts` ranges come back
/// when `len < parts`.
pub fn partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_map_for_any_thread_count() {
        let expected: Vec<u64> = (0..37).map(|i| (i as u64) * (i as u64)).collect();
        for threads in [0, 1, 2, 4, 16] {
            let got = scatter_gather(37, threads, |i| (i as u64) * (i as u64));
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn borrows_environment() {
        let data: Vec<u64> = (0..100).collect();
        let sums = scatter_gather(4, 2, |i| data[i * 25..(i + 1) * 25].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u8> = scatter_gather(0, 4, |_| unreachable!("no items"));
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_item_costs_still_return_in_order() {
        let got = scatter_gather(16, 4, |i| {
            // Early items sleep longest, so completion order inverts
            // submission order if the pool doesn't re-index results.
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn partition_covers_exactly_once() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (8, 1), (100, 7)] {
            let ranges = partition(len, parts);
            let mut covered = 0;
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous");
                assert!(!r.is_empty(), "no empty ranges");
                covered += r.len();
                next = r.end;
            }
            assert_eq!(covered, len, "len={len} parts={parts}");
            assert!(ranges.len() <= parts.max(1));
        }
        // Near-equal sizes: 10 into 3 → 4,3,3.
        let sizes: Vec<usize> = partition(10, 3).iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn fan_out_files_a_pool_report() {
        // The sink is process-global; filter to this test's unique label
        // rather than assuming an empty sink.
        let _ = scatter_gather_labeled("exec.test.report", 16, 4, |i| i);
        let (reports, _) = jcdn_obs::pool::drain();
        let report = reports
            .iter()
            .find(|r| r.label == "exec.test.report")
            .expect("fan-out filed a report");
        assert_eq!(report.items, 16);
        assert_eq!(report.workers, 4);
        assert_eq!(report.worker_tasks.iter().sum::<u64>(), 16);
        assert_eq!(report.task_latency_us.count(), 16);
        assert_eq!(report.task_panics, 0);
    }

    #[test]
    fn sequential_path_files_a_report_too() {
        let _ = scatter_gather_labeled("exec.test.seq", 5, 1, |i| i * 2);
        let (reports, _) = jcdn_obs::pool::drain();
        let report = reports
            .iter()
            .find(|r| r.label == "exec.test.seq")
            .expect("sequential fan-out filed a report");
        assert_eq!(report.workers, 1);
        assert_eq!(report.worker_tasks, vec![5]);
        assert_eq!(report.queue_high_water, 0);
    }

    #[test]
    fn try_fan_out_returns_all_results_on_success() {
        let got: Result<Vec<usize>, &str> =
            try_scatter_gather_labeled("exec.test.try-ok", 9, 3, |i| Ok(i * 3));
        assert_eq!(got.unwrap(), (0..9).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn try_fan_out_reports_the_lowest_indexed_error() {
        for threads in [1, 4] {
            let got: Result<Vec<usize>, usize> =
                try_scatter_gather_labeled("exec.test.try-err", 12, threads, |i| {
                    if i == 7 || i == 3 || i == 11 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                });
            assert_eq!(got.unwrap_err(), 3, "{threads} threads");
        }
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        scatter_gather(8, 2, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn transient_panic_recovers_via_retry() {
        // Panics the first time item 3 runs, succeeds on the retry — the
        // caller sees a complete, ordered result and a panic count of 1.
        let failures = AtomicUsize::new(0);
        let got = scatter_gather_labeled("exec.test.retry", 8, 4, |i| {
            if i == 3 && failures.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            i * 10
        });
        assert_eq!(got, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        let (reports, _) = jcdn_obs::pool::drain();
        let report = reports
            .iter()
            .find(|r| r.label == "exec.test.retry")
            .expect("fan-out filed a report");
        assert_eq!(report.task_panics, 1);
        // The retry pass contributes one extra stats entry.
        assert_eq!(report.workers, 5);
        assert_eq!(report.worker_tasks.iter().sum::<u64>(), 9);
    }

    #[test]
    fn isolated_quarantines_persistent_failures() {
        let gathered = scatter_gather_isolated("exec.test.isolated", 6, 3, |i| {
            if i == 2 || i == 4 {
                panic!("always fails");
            }
            i as u64
        });
        assert!(!gathered.is_complete());
        assert_eq!(gathered.quarantined, vec![2, 4]);
        // Each quarantined item panicked in the pool and in the retry.
        assert_eq!(gathered.task_panics, 4);
        let values: Vec<Option<u64>> = gathered.results;
        assert_eq!(values.len(), 6);
        assert!(values[2].is_none() && values[4].is_none());
        assert_eq!(values[0], Some(0));
        assert_eq!(values[5], Some(5));
    }

    #[test]
    fn isolated_sequential_path_also_quarantines() {
        let gathered = scatter_gather_isolated("exec.test.isolated.seq", 4, 1, |i| {
            if i == 1 {
                panic!("always fails");
            }
            i
        });
        assert_eq!(gathered.quarantined, vec![1]);
        assert_eq!(gathered.results[0], Some(0));
        assert_eq!(gathered.results[3], Some(3));
    }
}
