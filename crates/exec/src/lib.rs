//! # jcdn-exec — scatter–gather execution for sharded pipelines
//!
//! The sharded trace pipeline follows one parallelism shape everywhere:
//! split work into independent items (workload client blocks, trace
//! shards, edge partitions), farm the items out to a bounded worker pool,
//! and gather the results back **in item order** so downstream merging is
//! deterministic regardless of worker count or scheduling.
//!
//! [`scatter_gather`] is that shape: `std::thread::scope` for borrowing
//! worker closures, crossbeam MPMC channels as the job queue, and an
//! index-tagged result channel so out-of-order completion never reorders
//! results. With `threads <= 1` it degrades to a plain sequential map —
//! callers need no separate serial path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Runs `f(0..items)` on a pool of `threads` workers and returns the
/// results indexed by item, exactly as `(0..items).map(f).collect()`
/// would. Items are pulled from a shared queue, so uneven item costs
/// balance across workers. A panicking worker propagates the panic.
pub fn scatter_gather<T, F>(items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(items);
    if threads <= 1 {
        return (0..items).map(f).collect();
    }

    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    for i in 0..items {
        // jcdn-lint: allow(D3) -- job_rx is dropped only after the scope below; send cannot fail yet
        job_tx.send(i).expect("job receiver alive");
    }
    drop(job_tx);

    let f = &f;
    let slots = crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let jobs = job_rx.clone();
            let results = result_tx.clone();
            scope.spawn(move |_| {
                while let Ok(i) = jobs.recv() {
                    if results.send((i, f(i))).is_err() {
                        // Gatherer gone (a sibling panicked); stop early.
                        return;
                    }
                }
            });
        }
        drop(result_tx);
        drop(job_rx);

        let mut slots: Vec<Option<T>> = (0..items).map(|_| None).collect();
        while let Ok((i, value)) = result_rx.recv() {
            slots[i] = Some(value);
        }
        slots
    })
    // jcdn-lint: allow(D3) -- scope Err means a worker panicked; re-panicking propagates it (documented contract)
    .expect("worker pool joined");

    slots
        .into_iter()
        // jcdn-lint: allow(D3) -- the scope joined without panic, so every index was sent exactly once
        .map(|slot| slot.expect("every item produced a result"))
        .collect()
}

/// Splits `len` items into at most `parts` contiguous index ranges of
/// near-equal size (the first `len % parts` ranges get one extra item).
/// Empty ranges are never returned, so fewer than `parts` ranges come back
/// when `len < parts`.
pub fn partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_any_thread_count() {
        let expected: Vec<u64> = (0..37).map(|i| (i as u64) * (i as u64)).collect();
        for threads in [0, 1, 2, 4, 16] {
            let got = scatter_gather(37, threads, |i| (i as u64) * (i as u64));
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn borrows_environment() {
        let data: Vec<u64> = (0..100).collect();
        let sums = scatter_gather(4, 2, |i| data[i * 25..(i + 1) * 25].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u8> = scatter_gather(0, 4, |_| unreachable!("no items"));
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_item_costs_still_return_in_order() {
        let got = scatter_gather(16, 4, |i| {
            // Early items sleep longest, so completion order inverts
            // submission order if the pool doesn't re-index results.
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn partition_covers_exactly_once() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (8, 1), (100, 7)] {
            let ranges = partition(len, parts);
            let mut covered = 0;
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous");
                assert!(!r.is_empty(), "no empty ranges");
                covered += r.len();
                next = r.end;
            }
            assert_eq!(covered, len, "len={len} parts={parts}");
            assert!(ranges.len() <= parts.max(1));
        }
        // Near-equal sizes: 10 into 3 → 4,3,3.
        let sizes: Vec<usize> = partition(10, 3).iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        scatter_gather(8, 2, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
