//! The rule engine: file context construction (function spans, test
//! ranges) and the file-local determinism/safety rules D1–D6 and D9–D10,
//! plus S1 for malformed suppressions. The cross-file flow rules D7/D8
//! live in [`crate::taint`] and run over the call graph built by
//! [`crate::graph`]; they share this module's [`Finding`] type (with a
//! populated call [`ChainHop`] trail) and suppression machinery.
//!
//! Every rule is a token-sequence check — deliberately type-blind, so the
//! pass stays a lexer walk (microseconds per file) rather than a rustc
//! plugin. Where a rule needs type-ish knowledge (which bindings are hash
//! maps, which fields are floats) it recovers it from file-local
//! declaration patterns, and the documented limitation is that
//! cross-file types are invisible. The scopes in [`crate::config`] are
//! chosen so that limitation does not matter in this workspace.

use crate::config::Config;
use crate::lexer::{Lexed, Suppression, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// How bad a finding is. Every current rule gates CI, so everything is an
/// error; the distinction is kept for future advisory rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only; does not affect the exit code.
    Warning,
    /// Gates CI.
    Error,
}

impl Severity {
    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One hop in a cross-file call chain attached to a flow finding: the
/// function entered and where (for the root, its definition site; for
/// every later hop, the call site in the previous hop's function).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainHop {
    /// Display-qualified function name (`cdnsim::sim::Machine::run_until`).
    pub func: String,
    /// Workspace-relative path of the hop's location.
    pub path: String,
    /// 1-based line of the hop's location.
    pub line: u32,
}

/// One lint finding, anchored to a file position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`–`D10`, `S1`).
    pub rule: &'static str,
    /// Severity (currently always [`Severity::Error`]).
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// For flow rules (D7/D8): the call chain from the root function to
    /// the flagged site. Empty for token-local findings.
    pub chain: Vec<ChainHop>,
}

/// A function body located in the token stream.
#[derive(Clone, Debug)]
struct FnSpan {
    /// The function's name.
    name: String,
    /// Token-index range `[open_brace, close_brace]` of the body.
    body: (usize, usize),
}

/// Everything the rules need about one file.
struct FileCtx<'a> {
    path: &'a str,
    tokens: &'a [Token<'a>],
    fns: Vec<FnSpan>,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Lints one file's source. `path` must be workspace-relative with
/// forward slashes (it is matched against scopes and allowlists).
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = crate::lexer::lex(src);
    let ctx = FileCtx::build(path, &lexed.tokens);
    let mut findings = Vec::new();

    if cfg.applies("D1", path) {
        ctx.rule_d1(&mut findings);
    }
    if cfg.applies("D2", path) {
        ctx.rule_d2(&mut findings);
    }
    if cfg.applies("D3", path) {
        ctx.rule_d3(&mut findings);
    }
    if cfg.applies("D4", path) {
        ctx.rule_d4(&mut findings);
    }
    if cfg.applies("D5", path) {
        ctx.rule_d5(&mut findings);
    }
    if cfg.applies("D6", path) {
        ctx.rule_d6(&mut findings);
    }
    if cfg.applies("D9", path) {
        ctx.rule_d9(&mut findings);
    }
    if cfg.applies("D10", path) {
        ctx.rule_d10(&mut findings);
    }

    apply_suppressions(path, &lexed, findings)
}

/// The `line → suppressed rule ids` map from the *well-formed* directives
/// in `sups`. Malformed directives (unknown rules, missing reason) are
/// ignored here — [`apply_suppressions`] reports them as S1; this map is
/// also rebuilt in stage 2 to filter cross-file findings without
/// re-emitting S1.
pub(crate) fn suppression_map(sups: &[Suppression]) -> BTreeMap<u32, BTreeSet<&'static str>> {
    let mut map: BTreeMap<u32, BTreeSet<&'static str>> = BTreeMap::new();
    for sup in sups {
        if sup.rules.is_empty() || !sup.has_reason {
            continue;
        }
        if sup
            .rules
            .iter()
            .any(|r| !crate::config::RULE_IDS.contains(&r.as_str()))
        {
            continue;
        }
        let target = if sup.own_line { sup.line + 1 } else { sup.line };
        for rule in &sup.rules {
            if let Some(&known) = crate::config::RULE_IDS.iter().find(|k| *k == rule) {
                map.entry(target).or_default().insert(known);
            }
        }
    }
    map
}

/// Drops findings covered by a well-formed suppression directive and
/// reports malformed directives as S1 findings.
fn apply_suppressions(path: &str, lexed: &Lexed<'_>, findings: Vec<Finding>) -> Vec<Finding> {
    let suppressed = suppression_map(&lexed.suppressions);
    let mut out = Vec::new();
    for sup in &lexed.suppressions {
        let bad_rules: Vec<&String> = sup
            .rules
            .iter()
            .filter(|r| !crate::config::RULE_IDS.contains(&r.as_str()))
            .collect();
        if sup.rules.is_empty() || !bad_rules.is_empty() {
            out.push(Finding {
                rule: "S1",
                severity: Severity::Error,
                path: path.to_string(),
                line: sup.line,
                col: 1,
                message: malformed_rules_message(sup, &bad_rules),
                chain: Vec::new(),
            });
            continue;
        }
        if !sup.has_reason {
            out.push(Finding {
                rule: "S1",
                severity: Severity::Error,
                path: path.to_string(),
                line: sup.line,
                col: 1,
                message: "suppression is missing its reason: write \
                          `// jcdn-lint: allow(Dx) -- <why this is sound>`"
                    .to_string(),
                chain: Vec::new(),
            });
        }
    }
    for f in findings {
        let hit = suppressed
            .get(&f.line)
            .is_some_and(|rules| rules.contains(f.rule));
        if !hit {
            out.push(f);
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn malformed_rules_message(sup: &Suppression, bad: &[&String]) -> String {
    if sup.rules.is_empty() {
        "suppression lists no rule ids: write `// jcdn-lint: allow(Dx) -- reason`".to_string()
    } else {
        let names: Vec<&str> = bad.iter().map(|s| s.as_str()).collect();
        format!("suppression names unknown rule id(s): {}", names.join(", "))
    }
}

impl<'a> FileCtx<'a> {
    fn build(path: &'a str, tokens: &'a [Token<'a>]) -> Self {
        let mut ctx = FileCtx {
            path,
            tokens,
            fns: Vec::new(),
            test_ranges: Vec::new(),
        };
        ctx.locate_test_ranges();
        ctx.locate_fns();
        ctx
    }

    fn is(&self, idx: usize, kind: TokKind, text: &str) -> bool {
        self.tokens
            .get(idx)
            .is_some_and(|t| t.kind == kind && t.text == text)
    }

    fn ident_at(&self, idx: usize) -> Option<&'a str> {
        self.tokens
            .get(idx)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
    }

    /// Finds the token index of the brace matching the `{` at `open`.
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Records the body ranges of items carrying `#[cfg(test)]` or
    /// `#[test]` so rules can skip test-only code.
    fn locate_test_ranges(&mut self) {
        let mut i = 0;
        while i < self.tokens.len() {
            if self.is(i, TokKind::Punct, "#") && self.is(i + 1, TokKind::Punct, "[") {
                // Scan the attribute tokens to its closing bracket.
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut is_test_attr = false;
                let mut first = true;
                while j < self.tokens.len() && depth > 0 {
                    let t = &self.tokens[j];
                    if t.kind == TokKind::Punct {
                        match t.text {
                            "[" => depth += 1,
                            "]" => depth -= 1,
                            _ => {}
                        }
                    } else if t.kind == TokKind::Ident {
                        if first && t.text == "test" {
                            is_test_attr = true;
                        }
                        if t.text == "cfg" || t.text == "cfg_attr" {
                            // Look inside for a `test` ident.
                            let mut k = j + 1;
                            let mut cdepth = 0usize;
                            while k < self.tokens.len() {
                                let u = &self.tokens[k];
                                if u.kind == TokKind::Punct {
                                    match u.text {
                                        "(" => cdepth += 1,
                                        ")" => {
                                            if cdepth <= 1 {
                                                break;
                                            }
                                            cdepth -= 1;
                                        }
                                        _ => {}
                                    }
                                } else if u.kind == TokKind::Ident && u.text == "test" {
                                    is_test_attr = true;
                                }
                                k += 1;
                            }
                        }
                        first = false;
                    }
                    j += 1;
                }
                if is_test_attr {
                    // The item body is the next `{` after the attribute
                    // (skipping any further attributes and doc comments).
                    let mut k = j;
                    while k < self.tokens.len() && !self.is(k, TokKind::Punct, "{") {
                        k += 1;
                    }
                    let close = self.matching_brace(k);
                    self.test_ranges.push((i, close));
                    i = close + 1;
                    continue;
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }

    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    fn locate_fns(&mut self) {
        let mut i = 0;
        while i < self.tokens.len() {
            if self.is(i, TokKind::Ident, "fn") {
                if let Some(name) = self.ident_at(i + 1) {
                    // The body opens at the first `{` outside parens or
                    // brackets after the signature.
                    let mut j = i + 2;
                    let mut pdepth = 0isize;
                    let mut open = None;
                    while j < self.tokens.len() {
                        let t = &self.tokens[j];
                        if t.kind == TokKind::Punct {
                            match t.text {
                                "(" | "[" => pdepth += 1,
                                ")" | "]" => pdepth -= 1,
                                "{" if pdepth == 0 => {
                                    open = Some(j);
                                    break;
                                }
                                ";" if pdepth == 0 => break, // trait decl / extern fn
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    if let Some(open) = open {
                        let close = self.matching_brace(open);
                        self.fns.push(FnSpan {
                            name: name.to_string(),
                            body: (open, close),
                        });
                    }
                }
            }
            i += 1;
        }
    }

    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, idx: usize, message: String) {
        let t = &self.tokens[idx];
        out.push(Finding {
            rule,
            severity: Severity::Error,
            path: self.path.to_string(),
            line: t.line,
            col: t.col,
            message,
            chain: Vec::new(),
        });
    }

    // ----------------------------------------------------------------- D1

    /// D1: wall-clock and ambient-randomness APIs. Any of
    /// `SystemTime::now`, `Instant::now`, `thread_rng`, `RandomState`
    /// makes output depend on when/where the process ran, which breaks
    /// bit-reproducibility. Applies to test code too: a test that reads
    /// the clock is a flaky test.
    fn rule_d1(&self, out: &mut Vec<Finding>) {
        for i in 0..self.tokens.len() {
            let Some(ident) = self.ident_at(i) else {
                continue;
            };
            let path_call = |head: &str| {
                ident == head
                    && self.is(i + 1, TokKind::Punct, ":")
                    && self.is(i + 2, TokKind::Punct, ":")
                    && self.ident_at(i + 3) == Some("now")
            };
            if path_call("SystemTime") || path_call("Instant") {
                self.push(
                    out,
                    "D1",
                    i,
                    format!(
                        "`{ident}::now()` reads the wall clock; simulated time \
                         (`SimTime`) is the only clock in deterministic code"
                    ),
                );
            } else if ident == "thread_rng" {
                self.push(
                    out,
                    "D1",
                    i,
                    "`thread_rng()` is ambient randomness; thread seeded RNGs \
                     (e.g. SplitMix64-derived streams) through the call graph instead"
                        .to_string(),
                );
            } else if ident == "RandomState" {
                self.push(
                    out,
                    "D1",
                    i,
                    "`RandomState` randomizes hash iteration order per process; \
                     use `BTreeMap`/`BTreeSet` or a fixed-seed hasher"
                        .to_string(),
                );
            }
        }
    }

    // ----------------------------------------------------------------- D2

    /// D2: iteration over `HashMap`/`HashSet` in output-order-sensitive
    /// modules. Hash iteration order varies across processes and std
    /// versions; anything feeding a report, codec frame, or merged
    /// partial must iterate a `BTreeMap` or canonicalize with a
    /// `sort_canonical` call in the same function.
    fn rule_d2(&self, out: &mut Vec<Finding>) {
        // File-level: field/binding names declared with a hash type.
        let mut hash_names: BTreeSet<&str> = BTreeSet::new();
        for i in 0..self.tokens.len() {
            let Some(ident) = self.ident_at(i) else {
                continue;
            };
            if ident != "HashMap" && ident != "HashSet" {
                continue;
            }
            // `name : HashMap` (declaration/field) or `name = HashMap`
            // (init), looking left past a `path::` qualifier and any
            // `&`/`&&`/`mut`/lifetime sigils before the type.
            let mut j = i;
            while j >= 3
                && self.is(j - 1, TokKind::Punct, ":")
                && self.is(j - 2, TokKind::Punct, ":")
                && self.ident_at(j - 3).is_some()
            {
                j -= 3;
            }
            while j >= 1
                && (self.is(j - 1, TokKind::Punct, "&")
                    || self.ident_at(j - 1) == Some("mut")
                    || self.tokens[j - 1].kind == TokKind::Lifetime)
            {
                j -= 1;
            }
            if j >= 2
                && (self.is(j - 1, TokKind::Punct, ":") || self.is(j - 1, TokKind::Punct, "="))
            {
                if let Some(name) = self.ident_at(j - 2) {
                    hash_names.insert(name);
                }
            }
        }
        if hash_names.is_empty() {
            return;
        }
        for f in &self.fns {
            if self.in_test(f.body.0) {
                continue;
            }
            let body = f.body.0..=f.body.1;
            // A `sort_canonical` call anywhere in the function certifies
            // that the output order is re-established after iteration.
            if body
                .clone()
                .any(|i| self.ident_at(i) == Some("sort_canonical"))
            {
                continue;
            }
            for i in body {
                let Some(name) = self.ident_at(i) else {
                    continue;
                };
                if !hash_names.contains(name) {
                    continue;
                }
                // `name.iter()` / `name.keys()` / …
                if self.is(i + 1, TokKind::Punct, ".") {
                    if let Some(method) = self.ident_at(i + 2) {
                        if HASH_ITER_METHODS.contains(&method)
                            && self.is(i + 3, TokKind::Punct, "(")
                        {
                            self.push(
                                out,
                                "D2",
                                i,
                                format!(
                                    "iteration over hash-ordered `{name}.{method}()` in an \
                                     output-order-sensitive module; use a `BTreeMap`/`BTreeSet` \
                                     or call `sort_canonical` in this function"
                                ),
                            );
                            continue;
                        }
                    }
                }
                // `for … in [&[mut]] path.to.name {` — the map is the
                // final segment of the iterated path expression.
                if self.is(i + 1, TokKind::Punct, "{") && self.for_in_precedes(i) {
                    self.push(
                        out,
                        "D2",
                        i,
                        format!(
                            "`for … in {name}` iterates hash order in an \
                             output-order-sensitive module; use a `BTreeMap`/`BTreeSet` \
                             or call `sort_canonical` in this function"
                        ),
                    );
                }
            }
        }
    }

    /// Whether token `i` (an identifier) is the tail of the expression in
    /// a `for … in <expr>` header: walking back over `seg.seg.` path
    /// segments and an optional `&`/`&mut` borrow lands on `in`.
    fn for_in_precedes(&self, i: usize) -> bool {
        let mut head = i;
        loop {
            let Some(dot) = self.prev_code_token(head) else {
                return false;
            };
            if !self.is(dot, TokKind::Punct, ".") {
                break;
            }
            let Some(base) = self.prev_code_token(dot) else {
                return false;
            };
            if self.ident_at(base).is_none() {
                return false;
            }
            head = base;
        }
        let mut p = self.prev_code_token(head);
        if p.is_some_and(|pi| self.ident_at(pi) == Some("mut")) {
            p = p.and_then(|pi| self.prev_code_token(pi));
        }
        if p.is_some_and(|pi| self.is(pi, TokKind::Punct, "&")) {
            p = p.and_then(|pi| self.prev_code_token(pi));
        }
        p.is_some_and(|pi| self.ident_at(pi) == Some("in"))
    }

    fn prev_code_token(&self, idx: usize) -> Option<usize> {
        let mut i = idx.checked_sub(1)?;
        loop {
            let t = self.tokens.get(i)?;
            if t.kind != TokKind::DocOuter && t.kind != TokKind::DocInner {
                return Some(i);
            }
            i = i.checked_sub(1)?;
        }
    }

    // ----------------------------------------------------------------- D3

    /// D3: `unwrap`/`expect`/`panic!`/`catch_unwind` in non-test library
    /// code. Library crates return typed errors (`EncodeError`,
    /// `InternError`, …); a panic in a shard worker takes down the whole
    /// pipeline, and ad-hoc unwind boundaries hide panics from the one
    /// sanctioned quarantine/retry policy in jcdn-exec.
    fn rule_d3(&self, out: &mut Vec<Finding>) {
        for i in 0..self.tokens.len() {
            if self.in_test(i) {
                continue;
            }
            let Some(ident) = self.ident_at(i) else {
                continue;
            };
            let method_call = |name: &str| {
                ident == name
                    && i >= 1
                    && self.is(i - 1, TokKind::Punct, ".")
                    && self.is(i + 1, TokKind::Punct, "(")
            };
            if method_call("unwrap") || method_call("expect") {
                self.push(
                    out,
                    "D3",
                    i,
                    format!(
                        "`.{ident}()` in library code; return a typed error \
                         (or restructure so the invariant is expressed without panicking)"
                    ),
                );
            } else if ident == "panic" && self.is(i + 1, TokKind::Punct, "!") {
                self.push(
                    out,
                    "D3",
                    i,
                    "`panic!` in library code; return a typed error instead".to_string(),
                );
            } else if ident == "catch_unwind" && self.is(i + 1, TokKind::Punct, "(") {
                self.push(
                    out,
                    "D3",
                    i,
                    "`catch_unwind` outside the sanctioned jcdn-exec isolation \
                     boundary; panics must reach the quarantine/retry policy, \
                     not be swallowed ad hoc"
                        .to_string(),
                );
            }
        }
    }

    // ----------------------------------------------------------------- D4

    /// D4: integer `as` casts in codec/interner code. `as` silently
    /// truncates; a corrupt length prefix must surface as a decode error,
    /// not wrap into a small allocation. Use `try_from` (or a documented
    /// suppression for bit-twiddling masks).
    fn rule_d4(&self, out: &mut Vec<Finding>) {
        for i in 0..self.tokens.len() {
            if self.in_test(i) {
                continue;
            }
            if self.ident_at(i) != Some("as") {
                continue;
            }
            let Some(ty) = self.ident_at(i + 1) else {
                continue;
            };
            if !INT_TYPES.contains(&ty) {
                continue;
            }
            // Exclude `use x as y` style: the token before a cast is an
            // expression end (ident/num/`)`/`]`), which `use … as` also
            // is, so instead check the statement start — cheaper: `as`
            // directly preceded by `::`-path puncts still casts. The only
            // real exclusion needed is an import, which names a module
            // path and ends with `;` right after the alias — but aliasing
            // *to an integer type name* would be perverse; accept the
            // false positive in principle, none exist in practice.
            self.push(
                out,
                "D4",
                i,
                format!(
                    "lossy `as {ty}` cast in codec/interner code; use \
                     `{ty}::try_from(…)` with a typed error (suppress with a \
                     reason only for masked bit-twiddling)"
                ),
            );
        }
    }

    // ----------------------------------------------------------------- D5

    /// D5: ad-hoc float accumulation in `merge` functions. Mergeable
    /// statistics must flow through the `jcdn-stats` helpers (`Summary`,
    /// `Histogram`, …) whose merges are exact or numerically stable;
    /// `self.mean += other.mean` style code silently breaks
    /// shard-invariance.
    fn rule_d5(&self, out: &mut Vec<Finding>) {
        // Field/binding names declared `: f64` / `: f32` anywhere in file.
        let mut float_names: BTreeSet<&str> = BTreeSet::new();
        for i in 0..self.tokens.len() {
            let Some(ty) = self.ident_at(i) else {
                continue;
            };
            if (ty == "f64" || ty == "f32") && i >= 2 && self.is(i - 1, TokKind::Punct, ":") {
                if let Some(name) = self.ident_at(i - 2) {
                    float_names.insert(name);
                }
            }
        }
        if float_names.is_empty() {
            return;
        }
        for f in &self.fns {
            if !f.name.starts_with("merge") || self.in_test(f.body.0) {
                continue;
            }
            for i in f.body.0..=f.body.1 {
                let Some(name) = self.ident_at(i) else {
                    continue;
                };
                if float_names.contains(name)
                    && self.is(i + 1, TokKind::Punct, "+")
                    && self.is(i + 2, TokKind::Punct, "=")
                {
                    self.push(
                        out,
                        "D5",
                        i,
                        format!(
                            "ad-hoc float accumulation `{name} += …` in `{}`; merge through \
                             the jcdn-stats helpers (Summary/Histogram/Ecdf merge) so \
                             shard merges stay exact",
                            f.name
                        ),
                    );
                }
            }
        }
    }

    // ----------------------------------------------------------------- D6

    /// D6: every `pub` item in the contract crates carries a doc comment.
    /// This is the statically-checked twin of `#![warn(missing_docs)]` —
    /// it also covers `pub` methods on private types and runs without
    /// compiling.
    fn rule_d6(&self, out: &mut Vec<Finding>) {
        const ITEM_KWS: [&str; 9] = [
            "fn", "struct", "enum", "trait", "type", "mod", "static", "const", "union",
        ];
        const SKIP_KWS: [&str; 4] = ["unsafe", "async", "extern", "default"];
        for i in 0..self.tokens.len() {
            if self.in_test(i) {
                continue;
            }
            if self.ident_at(i) != Some("pub") {
                continue;
            }
            // `pub(crate)` / `pub(super)` are not public API.
            if self.is(i + 1, TokKind::Punct, "(") {
                continue;
            }
            // Walk forward past qualifier keywords to the item keyword.
            let mut j = i + 1;
            let mut kw = None;
            for _ in 0..4 {
                match self.ident_at(j) {
                    Some(k) if k == "const" && self.ident_at(j + 1) == Some("fn") => {
                        j += 1;
                        continue;
                    }
                    Some(k) if SKIP_KWS.contains(&k) => {
                        j += 1;
                        // `extern "C"` — skip the ABI string too.
                        if self.tokens.get(j).is_some_and(|t| t.kind == TokKind::Str) {
                            j += 1;
                        }
                        continue;
                    }
                    Some(k) => {
                        kw = Some(k);
                        break;
                    }
                    None => break,
                }
            }
            let (item_kind, name_idx) = match kw {
                Some("use") => continue, // re-exports inherit their docs
                Some(k) if ITEM_KWS.contains(&k) => (k, j + 1),
                // `pub name: Type` — a struct field.
                Some(_) if self.is(j + 1, TokKind::Punct, ":") => ("field", j),
                _ => continue,
            };
            if self.has_doc(i) {
                continue;
            }
            let name = self.ident_at(name_idx).unwrap_or("<unnamed>");
            self.push(
                out,
                "D6",
                i,
                format!("public {item_kind} `{name}` is missing a doc comment"),
            );
        }
    }

    /// Whether the `pub` at `idx` is preceded by an outer doc comment or a
    /// `#[doc…]` attribute, skipping over other attributes.
    fn has_doc(&self, idx: usize) -> bool {
        let mut i = idx;
        loop {
            let Some(prev) = i.checked_sub(1) else {
                return false;
            };
            let t = &self.tokens[prev];
            match t.kind {
                TokKind::DocOuter => return true,
                TokKind::Punct if t.text == "]" => {
                    // Walk back over the attribute; `#[doc = "…"]` counts.
                    let mut depth = 1usize;
                    let mut k = prev;
                    let mut saw_doc = false;
                    while depth > 0 {
                        let Some(p) = k.checked_sub(1) else {
                            return false;
                        };
                        k = p;
                        let u = &self.tokens[k];
                        if u.kind == TokKind::Punct {
                            match u.text {
                                "]" => depth += 1,
                                "[" => depth -= 1,
                                _ => {}
                            }
                        } else if u.kind == TokKind::Ident && u.text == "doc" {
                            saw_doc = true;
                        }
                    }
                    if saw_doc {
                        return true;
                    }
                    // Move past the `#`.
                    i = k.saturating_sub(1);
                }
                _ => return false,
            }
        }
    }

    // ----------------------------------------------------------------- D9

    /// D9: unchecked arithmetic on lengths derived from untrusted decode
    /// input. A binding initialized from `get_varint`/`get_u16_le`/… holds
    /// an attacker-controlled value; `+`/`*`/`<<` on it can overflow and
    /// wrap into a small (or huge) allocation before any bound check runs.
    /// Use `checked_add`/`checked_mul`/`checked_shl` (or an explicit
    /// `min`/`clamp` first).
    fn rule_d9(&self, out: &mut Vec<Finding>) {
        const GETTERS: [&str; 6] = [
            "get_varint",
            "get_u16_le",
            "get_u32_le",
            "get_u64_le",
            "get_u8",
            "get_uvarint",
        ];
        const SANCTIONERS: [&str; 4] = ["min", "clamp", "to_usize", "usize"];
        // Taint is function-local: a `len` read off the wire in one
        // function must not condemn an unrelated same-named binding in
        // another (the encode path reuses decode's naming).
        for f in &self.fns {
            if self.in_test(f.body.0) {
                continue;
            }
            // Pass 1: names let-bound in this body to an initializer that
            // reads a decode getter anywhere in its statement.
            let mut tainted: BTreeSet<&str> = BTreeSet::new();
            let mut i = f.body.0;
            while i <= f.body.1 {
                if self.ident_at(i) != Some("let") {
                    i += 1;
                    continue;
                }
                let mut k = i + 1;
                if self.ident_at(k) == Some("mut") {
                    k += 1;
                }
                let Some(name) = self.ident_at(k) else {
                    i += 1;
                    continue;
                };
                // Statement extent: to the `;` at paren/brace depth 0.
                let mut depth = 0isize;
                let mut j = k + 1;
                let mut reads_getter = false;
                while j <= f.body.1 {
                    let t = &self.tokens[j];
                    if t.kind == TokKind::Punct {
                        match t.text {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth <= 0 => break,
                            _ => {}
                        }
                    } else if t.kind == TokKind::Ident && GETTERS.contains(&t.text) {
                        reads_getter = true;
                    }
                    j += 1;
                }
                if reads_getter {
                    tainted.insert(name);
                }
                i = j + 1;
            }
            if tainted.is_empty() {
                continue;
            }
            // Pass 2: infix `+`/`*`/`<<` touching a tainted name, unless
            // the enclosing statement sanctions the value first.
            let mut i = f.body.0;
            while i <= f.body.1 {
                let Some(name) = self.ident_at(i) else {
                    i += 1;
                    continue;
                };
                if !tainted.contains(name) {
                    i += 1;
                    continue;
                }
                let op = self.infix_op_near(i);
                let Some(op) = op else {
                    i += 1;
                    continue;
                };
                if self.statement_sanctions(i, f.body, &SANCTIONERS) {
                    i += 1;
                    continue;
                }
                let hint = match op {
                    "+" => "checked_add",
                    "*" => "checked_mul",
                    _ => "checked_shl",
                };
                self.push(
                    out,
                    "D9",
                    i,
                    format!(
                        "unchecked `{op}` on `{name}`, a length derived from untrusted \
                         decode input ({}); use `{hint}` or clamp the value first",
                        "get_varint/frame header",
                    ),
                );
                i += 1;
            }
        }
    }

    /// The infix arithmetic operator directly adjacent to the identifier
    /// at `i`, if any: `name +`, `name *`, `name <<`, or the mirrored
    /// `+ name` / `* name` / `<< name`.
    fn infix_op_near(&self, i: usize) -> Option<&'static str> {
        let punct = |idx: usize, text: &str| self.is(idx, TokKind::Punct, text);
        // `name << …` / `… << name`
        if punct(i + 1, "<") && punct(i + 2, "<") {
            return Some("<<");
        }
        if i >= 2 && punct(i - 1, "<") && punct(i - 2, "<") {
            return Some("<<");
        }
        // `name + …` (not `+=`? `+=` still accumulates unchecked — keep).
        // Exclude `name *` that is a dereference `*name` handled below.
        if punct(i + 1, "+") {
            return Some("+");
        }
        if punct(i + 1, "*") {
            return Some("*");
        }
        // `… + name`: the token before must be the operator and the one
        // before *that* an expression end (ident/num/`)`/`]`), so a unary
        // `*name` deref or `&name` borrow does not count.
        if i >= 2 {
            let before = &self.tokens[i - 2];
            let expr_end = matches!(before.kind, TokKind::Ident | TokKind::Num)
                || (before.kind == TokKind::Punct && (before.text == ")" || before.text == "]"));
            if expr_end && punct(i - 1, "+") {
                return Some("+");
            }
            if expr_end && punct(i - 1, "*") {
                return Some("*");
            }
        }
        None
    }

    /// Whether the statement containing token `i` sanctions the arithmetic
    /// (calls a `checked_*`/`saturating_*`/`wrapping_*` method or clamps).
    fn statement_sanctions(&self, i: usize, body: (usize, usize), extra: &[&str]) -> bool {
        let mut start = i;
        while start > body.0 {
            let t = &self.tokens[start - 1];
            if t.kind == TokKind::Punct && (t.text == ";" || t.text == "{" || t.text == "}") {
                break;
            }
            start -= 1;
        }
        let mut end = i;
        while end < body.1 {
            let t = &self.tokens[end];
            if t.kind == TokKind::Punct && t.text == ";" {
                break;
            }
            end += 1;
        }
        (start..=end).any(|k| {
            self.ident_at(k).is_some_and(|id| {
                id.starts_with("checked_")
                    || id.starts_with("saturating_")
                    || id.starts_with("wrapping_")
                    || extra.contains(&id)
            })
        })
    }

    // ---------------------------------------------------------------- D10

    /// D10: every `match` over the codec version space must explicitly
    /// cover v1–v4. A wildcard arm does not count as coverage: the whole
    /// point is that introducing v5 must force the compiler/reviewer to
    /// revisit each dispatch, not let the new version silently ride an arm
    /// meant for an older format. Symbolic range patterns over the
    /// `VERSION`/`MIN_VERSION` consts are accepted (they track the space
    /// by construction).
    fn rule_d10(&self, out: &mut Vec<Finding>) {
        const SPACE: std::ops::RangeInclusive<u64> = 1..=4;
        let mut i = 0;
        while i < self.tokens.len() {
            if self.ident_at(i) != Some("match") || self.in_test(i) {
                i += 1;
                continue;
            }
            // Scrutinee: tokens to the `{` at depth 0. It is a *version
            // dispatch* only when a `version`-named identifier appears at
            // depth 0 — `match version` / `match self.version`, but not
            // `match decode(cur, version)`, which matches the call's
            // Result, not the version space.
            let mut j = i + 1;
            let mut depth = 0isize;
            let mut is_version = false;
            let mut scrutinee = String::new();
            while j < self.tokens.len() {
                let t = &self.tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident
                    && depth == 0
                    && t.text.to_lowercase().contains("version")
                {
                    is_version = true;
                }
                if !scrutinee.is_empty() {
                    scrutinee.push(' ');
                }
                scrutinee.push_str(t.text);
                j += 1;
            }
            if !is_version || j >= self.tokens.len() {
                i = j.max(i + 1);
                continue;
            }
            let open = j;
            let close = self.matching_brace(open);
            let (covered, symbolic) = self.version_arm_coverage(open + 1, close);
            if !symbolic {
                let missing: Vec<String> = SPACE
                    .clone()
                    .filter(|v| !covered.contains(v))
                    .map(|v| format!("v{v}"))
                    .collect();
                if !missing.is_empty() {
                    self.push(
                        out,
                        "D10",
                        i,
                        format!(
                            "`match {scrutinee}` over the codec version space does not \
                             explicitly cover {} — wildcard arms do not count; every \
                             version in v1–v4 needs its own pattern so a future v5 \
                             cannot silently ride an older arm",
                            missing.join(", "),
                        ),
                    );
                }
            }
            i = close + 1;
        }
    }

    /// Walks the arm *patterns* of a match body (token range between the
    /// braces), returning the set of literal versions covered and whether
    /// a symbolic `VERSION`-const pattern was seen. Guard expressions and
    /// arm bodies are skipped.
    fn version_arm_coverage(&self, start: usize, end: usize) -> (BTreeSet<u64>, bool) {
        let mut covered: BTreeSet<u64> = BTreeSet::new();
        let mut symbolic = false;
        let mut i = start;
        while i < end {
            // Pattern: tokens up to `=>` at depth 0.
            let mut pat: Vec<&Token<'_>> = Vec::new();
            let mut depth = 0isize;
            let mut j = i;
            while j < end {
                let t = &self.tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" if depth == 0 && self.is(j + 1, TokKind::Punct, ">") => break,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && t.text == "if" && depth == 0 {
                    // Guard: the pattern ended; skip the guard expression.
                    while j < end
                        && !(self.is(j, TokKind::Punct, "=") && self.is(j + 1, TokKind::Punct, ">"))
                    {
                        j += 1;
                    }
                    break;
                }
                pat.push(t);
                j += 1;
            }
            // Collect literals and ranges from the pattern tokens.
            let mut k = 0;
            while k < pat.len() {
                let t = pat[k];
                match t.kind {
                    TokKind::Num => {
                        if let Ok(lo) = parse_int(t.text) {
                            // `lo ..= hi` / `lo .. hi`?
                            let dots = k + 1 < pat.len()
                                && pat[k + 1].text == "."
                                && k + 2 < pat.len()
                                && pat[k + 2].text == ".";
                            if dots {
                                let (hi_idx, inclusive) =
                                    if k + 3 < pat.len() && pat[k + 3].text == "=" {
                                        (k + 4, true)
                                    } else {
                                        (k + 3, false)
                                    };
                                if hi_idx < pat.len() && pat[hi_idx].kind == TokKind::Num {
                                    if let Ok(hi) = parse_int(pat[hi_idx].text) {
                                        let hi = if inclusive { hi } else { hi.saturating_sub(1) };
                                        for v in lo..=hi.min(64) {
                                            covered.insert(v);
                                        }
                                    }
                                    k = hi_idx + 1;
                                    continue;
                                }
                            }
                            covered.insert(lo);
                        }
                    }
                    TokKind::Ident if t.text.contains("VERSION") => symbolic = true,
                    _ => {}
                }
                k += 1;
            }
            // Arm body: `{…}` block or expression to `,` at depth 0.
            while j < end
                && !(self.is(j, TokKind::Punct, "=") && self.is(j + 1, TokKind::Punct, ">"))
            {
                j += 1;
            }
            j += 2; // past `=>`
            if j < end && self.is(j, TokKind::Punct, "{") {
                j = self.matching_brace(j) + 1;
                // Optional trailing comma.
                if j < end && self.is(j, TokKind::Punct, ",") {
                    j += 1;
                }
            } else {
                let mut depth = 0isize;
                while j < end {
                    let t = &self.tokens[j];
                    if t.kind == TokKind::Punct {
                        match t.text {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => {
                                j += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
            }
            i = j.max(i + 1);
        }
        (covered, symbolic)
    }
}

/// Parses a decimal or hex numeric literal, ignoring `_` separators and
/// any trailing type suffix (`3u8` → 3).
fn parse_int(text: &str) -> Result<u64, ()> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(hex) = clean.strip_prefix("0x") {
        (hex, 16u32)
    } else {
        (clean.as_str(), 10)
    };
    let lead: String = digits.chars().take_while(|c| c.is_digit(radix)).collect();
    if lead.is_empty() {
        return Err(());
    }
    u64::from_str_radix(&lead, radix).map_err(|_| ())
}
