//! A minimal Rust lexer producing a flat token stream with spans.
//!
//! This is not a full grammar — the rules in [`crate::rules`] only need
//! identifier/punctuation sequences with accurate line/column positions,
//! comments classified (doc vs. plain), and string/char literals opaque so
//! their contents never look like code. Raw strings, nested block
//! comments, lifetimes, and byte literals are handled; everything else is
//! a single-character punctuation token.

/// What a token is, at the granularity the rules care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, `+`, …).
    Punct,
    /// Numeric literal, consumed with its suffix (`0x7f`, `1_000u64`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), opaque.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Outer doc comment (`/// …` or `/** … */`).
    DocOuter,
    /// Inner doc comment (`//! …` or `/*! … */`).
    DocInner,
}

/// One token: kind, source text, and 1-based position of its first byte.
#[derive(Clone, Debug)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokKind,
    /// The exact source slice.
    pub text: &'a str,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// An inline `// jcdn-lint: allow(D3) -- reason` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line —
    /// such a directive targets the *next* line; a trailing comment
    /// targets its own line.
    pub own_line: bool,
    /// The rule ids listed in `allow(…)`.
    pub rules: Vec<String>,
    /// Whether a non-empty reason followed `--`.
    pub has_reason: bool,
}

/// Lexer output: the token stream plus any suppression directives found
/// in plain comments.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// All suppression directives, in source order.
    pub suppressions: Vec<Suppression>,
}

/// Lexes `src` into tokens and suppression directives. Never fails: on
/// malformed input (unterminated string, stray byte) the lexer degrades to
/// single-character punctuation tokens rather than erroring, which is the
/// right behavior for a linter running over code rustc already accepted.
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        token_on_line: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Whether a token has been emitted on the current line (used to
    /// classify suppression comments as own-line vs. trailing).
    token_on_line: bool,
    out: Lexed<'a>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, maintaining line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column. A no-op at end of
    /// input so multi-byte consumers (`\\` escapes near EOF) can never
    /// push the cursor past the buffer and slice out of bounds.
    fn bump(&mut self) {
        if self.pos >= self.bytes.len() {
            return;
        }
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.token_on_line = false;
        } else if (b & 0xC0) != 0x80 {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
            col,
        });
        self.token_on_line = true;
    }

    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(start, line, col),
                b'/' if self.peek(1) == b'*' => self.block_comment(start, line, col),
                b'r' | b'b' => {
                    if !self.raw_or_byte_literal(start, line, col) {
                        self.ident(start, line, col);
                    }
                }
                b'"' => {
                    self.string_literal();
                    self.emit(TokKind::Str, start, line, col);
                }
                b'\'' => self.char_or_lifetime(start, line, col),
                b'0'..=b'9' => {
                    self.number();
                    self.emit(TokKind::Num, start, line, col);
                }
                _ if is_ident_start(b) => self.ident(start, line, col),
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn ident(&mut self, start: usize, line: u32, col: u32) {
        while is_ident_continue(self.peek(0)) && self.pos < self.bytes.len() {
            self.bump();
        }
        self.emit(TokKind::Ident, start, line, col);
    }

    fn line_comment(&mut self, start: usize, line: u32, col: u32) {
        let own_line = !self.token_on_line;
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        if text.starts_with("///") && !text.starts_with("////") {
            self.emit(TokKind::DocOuter, start, line, col);
        } else if text.starts_with("//!") {
            self.emit(TokKind::DocInner, start, line, col);
        } else if let Some(sup) = parse_suppression(text, line, own_line) {
            self.out.suppressions.push(sup);
        }
    }

    fn block_comment(&mut self, start: usize, line: u32, col: u32) {
        self.bump_n(2);
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        let text = &self.src[start..self.pos];
        if text.starts_with("/**") && !text.starts_with("/***") && text.len() > 5 {
            self.emit(TokKind::DocOuter, start, line, col);
        } else if text.starts_with("/*!") {
            self.emit(TokKind::DocInner, start, line, col);
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'`. Returns
    /// false when the `r`/`b` at the cursor is just an identifier start.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32, col: u32) -> bool {
        let mut ahead = 1;
        if self.peek(0) == b'b' && self.peek(1) == b'r' {
            ahead = 2;
        }
        if self.peek(0) == b'b' && self.peek(1) == b'\'' {
            self.bump();
            self.char_body();
            self.emit(TokKind::Char, start, line, col);
            return true;
        }
        let mut hashes = 0;
        while self.peek(ahead + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != b'"' {
            return false;
        }
        if ahead == 1 && self.peek(0) == b'b' && hashes == 0 {
            // b"…" — plain byte string.
            self.bump();
            self.string_literal();
            self.emit(TokKind::Str, start, line, col);
            return true;
        }
        if self.peek(ahead - 1) != b'r' && !(ahead == 1 && self.peek(0) == b'b') {
            return false;
        }
        // Raw string: skip prefix, hashes, opening quote; scan for `"#…#`.
        self.bump_n(ahead + hashes + 1);
        loop {
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.peek(0) == b'"' {
                let mut closing = 0;
                while closing < hashes && self.peek(1 + closing) == b'#' {
                    closing += 1;
                }
                if closing == hashes {
                    self.bump_n(1 + hashes);
                    break;
                }
            }
            self.bump();
        }
        self.emit(TokKind::Str, start, line, col);
        true
    }

    /// Consumes a `"…"` body (cursor on the opening quote).
    fn string_literal(&mut self) {
        self.bump();
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a `'…'` body (cursor on the opening quote).
    fn char_body(&mut self) {
        self.bump();
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    fn char_or_lifetime(&mut self, start: usize, line: u32, col: u32) {
        // 'x' / '\n' → char; 'ident (no closing quote soon) → lifetime.
        let next = self.peek(1);
        if next == b'\\' || (self.peek(2) == b'\'' && next != b'\'') {
            self.char_body();
            self.emit(TokKind::Char, start, line, col);
        } else if is_ident_start(next) {
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.emit(TokKind::Lifetime, start, line, col);
        } else {
            self.char_body();
            self.emit(TokKind::Char, start, line, col);
        }
    }

    fn number(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the number; `1..n` does not.
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Parses `jcdn-lint: allow(D3, D4) -- reason` out of a plain line
/// comment. Returns `None` when the comment is not a directive at all.
/// A directive with a missing/empty reason is returned with
/// `has_reason == false` so the engine can report it.
fn parse_suppression(comment: &str, line: u32, own_line: bool) -> Option<Suppression> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("jcdn-lint:")?.trim();
    let rest = rest.strip_prefix("allow").unwrap_or(rest).trim();
    let inner_end = rest.find(')')?;
    let inner = rest.strip_prefix('(')?.get(..inner_end.saturating_sub(1))?;
    let rules: Vec<String> = inner
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = rest.get(inner_end + 1..).unwrap_or("").trim();
    let has_reason = after
        .strip_prefix("--")
        .map(|r| !r.trim().is_empty())
        .unwrap_or(false);
    Some(Suppression {
        line,
        own_line,
        rules,
        has_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts_with_positions() {
        let l = lex("fn main() {\n  x.unwrap();\n}");
        let unwrap = l.tokens.iter().find(|t| t.text == "unwrap");
        let unwrap = unwrap.as_ref();
        assert_eq!(unwrap.map(|t| t.line), Some(2));
        assert_eq!(unwrap.map(|t| t.col), Some(5));
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds("let s = \"x.unwrap()\"; let r = r#\"SystemTime\"# ;");
        assert!(toks.iter().all(|(_, t)| t != "unwrap"));
        assert!(toks.iter().all(|(_, t)| t != "SystemTime"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
    }

    #[test]
    fn doc_comments_classified() {
        let toks = kinds("/// outer\npub fn f() {}\n//! inner\n// plain");
        assert_eq!(toks[0].0, TokKind::DocOuter);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::DocInner));
        assert!(toks.iter().all(|(_, t)| !t.contains("plain")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn suppression_parsing() {
        let l = lex(
            "let x = 1; // jcdn-lint: allow(D3, D4) -- invariant holds\n// jcdn-lint: allow(D1)\n",
        );
        assert_eq!(l.suppressions.len(), 2);
        assert_eq!(l.suppressions[0].rules, vec!["D3", "D4"]);
        assert!(l.suppressions[0].has_reason);
        assert!(!l.suppressions[0].own_line);
        assert!(!l.suppressions[1].has_reason);
        assert!(l.suppressions[1].own_line);
    }

    #[test]
    fn suppression_on_final_line_without_trailing_newline() {
        // A directive on the file's last line must be recognized whether
        // or not the file ends in `\n`, in both trailing and own-line
        // positions.
        let trailing = lex("let x = 1; // jcdn-lint: allow(D1) -- final line");
        assert_eq!(trailing.suppressions.len(), 1);
        assert_eq!(trailing.suppressions[0].rules, vec!["D1"]);
        assert!(!trailing.suppressions[0].own_line);
        assert!(trailing.suppressions[0].has_reason);

        let own_line = lex("let x = 1;\n// jcdn-lint: allow(D3) -- next-line form");
        assert_eq!(own_line.suppressions.len(), 1);
        assert_eq!(own_line.suppressions[0].line, 2);
        assert!(own_line.suppressions[0].own_line);

        // Missing reason on a final unterminated line must still surface
        // (the engine reports it as S1).
        let bad = lex("let x = 1; // jcdn-lint: allow(D1)");
        assert_eq!(bad.suppressions.len(), 1);
        assert!(!bad.suppressions[0].has_reason);
    }

    #[test]
    fn trailing_escape_at_eof_does_not_panic() {
        // Regression: `\` as the final byte of a string/char body used to
        // push the cursor past the buffer and panic slicing the token.
        lex("let s = \"abc\\");
        lex("let c = '\\");
        lex("let b = b\"x\\");
        lex("let r = r#\"unterminated");
        lex("/* unterminated block *");
    }

    #[test]
    fn numbers_consume_suffixes() {
        let toks = kinds("let x = 0x7fu64 + 1_000 + 1.5e3;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "0x7fu64"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5e3"));
    }
}
