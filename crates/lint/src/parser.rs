//! The second-stage item parser: a lightweight structural pass over the
//! token stream that recovers *items* — functions (with their `impl` type
//! and module path), `mod` nesting, and `use` declarations — plus the
//! per-function facts the cross-file rules need: call sites, local type
//! bindings, and determinism-source observations.
//!
//! This is deliberately not an AST. The flow-aware rules (D7/D8) only
//! need "who calls whom" with enough receiver typing to disambiguate, so
//! the parser extracts owned summaries ([`ParsedFile`]) that survive
//! after the source text is dropped — which is what lets the workspace
//! pass parse files in parallel on the jcdn-exec pool and hand one owned
//! index to the graph builder.
//!
//! Documented limitations (shared with the token rules): type recovery is
//! file-local (`let x: T`, parameter annotations, `Type::new()`
//! initializers, and `for`-loop inheritance from a typed iterable);
//! a method call whose receiver type cannot be recovered resolves only if
//! the method name is unambiguous workspace-wide (see [`crate::graph`]).

use crate::lexer::{Lexed, Suppression, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `f(...)` — a bare function call.
    Bare,
    /// `recv.f(...)` — a method call; `recv` is the receiver chain
    /// root-first (`tiers[0].cache.insert` → `["tiers", "cache"]`), empty
    /// when the receiver is a complex expression (call result, literal).
    Method {
        /// Receiver chain segments, root first; empty when unrecoverable.
        recv: Vec<String>,
    },
    /// `A::b::f(...)` — a path-qualified call; the qualifier segments
    /// (`["A", "b"]`) precede the callee name.
    Path {
        /// Qualifier segments in source order.
        qualifier: Vec<String>,
    },
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// How the callee is named.
    pub kind: CallKind,
    /// The callee's simple name (last path segment / method name).
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
}

/// A determinism-source observation inside a function body: a wall-clock
/// or ambient-randomness call, or hash-ordered iteration. These are the
/// taint sources D7 propagates backwards from `merge*`/`finalize*`/codec
/// `encode*` roots.
#[derive(Clone, Debug)]
pub struct SourceFact {
    /// Human-readable description (`` `SystemTime::now()` `` …).
    pub what: String,
    /// True for hash-iteration facts (gated on the D2 scope; clock and
    /// randomness facts are gated on the D1 scope/allowlist instead).
    pub hash_order: bool,
    /// 1-based line of the source expression.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One function item with everything the graph builder needs.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The simple name (`merge`, `run_until`).
    pub name: String,
    /// Display-qualified name (`cdnsim::sim::Machine::run_until`).
    pub qual: String,
    /// The `impl` type the function is defined on, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Whether the item sits under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
    /// Call sites in source order.
    pub calls: Vec<CallSite>,
    /// Determinism sources observed in the body.
    pub sources: Vec<SourceFact>,
    /// File-local type recovery: binding/parameter name → type text
    /// (tokens joined with spaces, e.g. `& [ SharedTier ]`).
    pub bindings: BTreeMap<String, String>,
}

/// The owned per-file summary stage 2 consumes.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Module path derived from the file location (`["cdnsim", "sim"]`).
    pub module: Vec<String>,
    /// All function items in source order.
    pub fns: Vec<FnItem>,
    /// `use` aliases: simple name → full path segments.
    pub uses: BTreeMap<String, Vec<String>>,
    /// Suppression directives (owned), for cross-file finding filtering.
    pub suppressions: Vec<Suppression>,
}

/// Identifier tokens that look like calls but are control flow.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "move", "in", "let", "where",
    "impl", "dyn",
];

const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Parses one lexed file into its owned item summary.
pub fn parse_file(path: &str, lexed: &Lexed<'_>) -> ParsedFile {
    let p = Parser {
        tokens: &lexed.tokens,
        test_ranges: locate_test_ranges(&lexed.tokens),
        hash_names: collect_declared(&lexed.tokens, &["HashMap", "HashSet"]),
        tier_names: collect_declared(&lexed.tokens, &["SharedTier"]),
        out: ParsedFile {
            path: path.to_string(),
            module: module_path(path),
            fns: Vec::new(),
            uses: BTreeMap::new(),
            suppressions: lexed.suppressions.clone(),
        },
    };
    p.run()
}

/// Derives the display module path from a workspace-relative file path:
/// `crates/cdnsim/src/sim.rs` → `["cdnsim", "sim"]`, `src/lib.rs` →
/// `["jcdn"]`, anything else → the file stem.
pub fn module_path(path: &str) -> Vec<String> {
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    if let Some(rest) = path.strip_prefix("crates/") {
        let krate = rest.split('/').next().unwrap_or("").to_string();
        if stem == "lib" || stem == "mod" || stem == "main" {
            return vec![krate];
        }
        return vec![krate, stem.to_string()];
    }
    if path.starts_with("src/") {
        if stem == "lib" || stem == "main" {
            return vec!["jcdn".to_string()];
        }
        return vec!["jcdn".to_string(), stem.to_string()];
    }
    vec![stem.to_string()]
}

struct Parser<'a> {
    tokens: &'a [Token<'a>],
    test_ranges: Vec<(usize, usize)>,
    /// File-level names declared with a hash-ordered type.
    hash_names: BTreeSet<String>,
    /// File-level names declared with a shared-tier type.
    tier_names: BTreeSet<String>,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn run(mut self) -> ParsedFile {
        let end = self.tokens.len();
        let mods: Vec<String> = self.out.module.clone();
        self.parse_items(0, end, &mods, None);
        self.out
    }

    fn is(&self, idx: usize, kind: TokKind, text: &str) -> bool {
        self.tokens
            .get(idx)
            .is_some_and(|t| t.kind == kind && t.text == text)
    }

    fn ident_at(&self, idx: usize) -> Option<&'a str> {
        self.tokens
            .get(idx)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
    }

    fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Token index of the `}` matching the `{` at `open`, clamped to
    /// `limit`.
    fn matching_brace(&self, open: usize, limit: usize) -> usize {
        let mut depth = 0usize;
        for i in open..limit.min(self.tokens.len()) {
            if self.tokens[i].kind == TokKind::Punct {
                match self.tokens[i].text {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
        }
        limit.min(self.tokens.len()).saturating_sub(1)
    }

    /// Walks one item region, recursing into `mod`/`impl` blocks.
    fn parse_items(&mut self, mut i: usize, end: usize, mods: &[String], impl_ty: Option<&str>) {
        while i < end {
            match self.ident_at(i) {
                Some("mod") => {
                    // `mod name { … }` — `mod name;` declarations have no body.
                    if let Some(name) = self.ident_at(i + 1) {
                        if self.is(i + 2, TokKind::Punct, "{") {
                            let close = self.matching_brace(i + 2, end);
                            let mut inner = mods.to_vec();
                            inner.push(name.to_string());
                            self.parse_items(i + 3, close, &inner, impl_ty);
                            i = close + 1;
                            continue;
                        }
                    }
                    i += 1;
                }
                Some("impl") => {
                    // Find the body `{` at angle/paren depth 0, extracting
                    // the implemented type (`impl<T> Trait for Type` →
                    // `Type`; `impl Type<'a>` → `Type`).
                    let mut j = i + 1;
                    let mut angle = 0isize;
                    let mut ty: Option<&str> = None;
                    let mut after_for: Option<&str> = None;
                    let mut saw_for = false;
                    while j < end {
                        let t = &self.tokens[j];
                        match t.kind {
                            TokKind::Punct => match t.text {
                                "<" => angle += 1,
                                ">" => angle -= 1,
                                "{" if angle <= 0 => break,
                                ";" if angle <= 0 => break,
                                _ => {}
                            },
                            TokKind::Ident if angle <= 0 => {
                                if t.text == "for" {
                                    saw_for = true;
                                } else if saw_for {
                                    if after_for.is_none() {
                                        after_for = Some(t.text);
                                    }
                                } else if ty.is_none() {
                                    ty = Some(t.text);
                                } else {
                                    // later path segment: `impl a::B` — keep
                                    // the last segment as the type name.
                                    if self.is(j - 1, TokKind::Punct, ":") {
                                        ty = Some(t.text);
                                    }
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if j < end && self.is(j, TokKind::Punct, "{") {
                        let close = self.matching_brace(j, end);
                        let resolved = after_for.or(ty).map(str::to_string);
                        self.parse_items(i + 1, j, mods, impl_ty); // generics region: no items, cheap
                        self.parse_items(j + 1, close, mods, resolved.as_deref());
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                Some("use") => {
                    i = self.parse_use(i + 1, end);
                }
                Some("fn") => {
                    i = self.parse_fn(i, end, mods, impl_ty);
                }
                _ => i += 1,
            }
        }
    }

    /// Records `use a::b::C;`, `use a::b::{C, d};`, and `use x as y;`
    /// aliases into the simple-name → path map. Returns the index after
    /// the terminating `;`.
    fn parse_use(&mut self, mut i: usize, end: usize) -> usize {
        let mut prefix: Vec<String> = Vec::new();
        let mut current: Option<String> = None;
        let mut group_depth = 0usize;
        while i < end {
            let t = &self.tokens[i];
            match t.kind {
                TokKind::Ident => {
                    if t.text == "as" {
                        // alias: `use path as name;` — record under the alias.
                        if let (Some(orig), Some(alias)) = (current.take(), self.ident_at(i + 1)) {
                            let mut full = prefix.clone();
                            full.push(orig);
                            self.out.uses.insert(alias.to_string(), full);
                            i += 1;
                        }
                    } else {
                        current = Some(t.text.to_string());
                    }
                }
                TokKind::Punct => match t.text {
                    ":" if self.is(i + 1, TokKind::Punct, ":") => {
                        if let Some(seg) = current.take() {
                            prefix.push(seg);
                        }
                        i += 1;
                    }
                    "{" => group_depth += 1,
                    "}" | "," => {
                        if let Some(name) = current.take() {
                            let mut full = prefix.clone();
                            full.push(name.clone());
                            self.out.uses.insert(name, full);
                        }
                        if t.text == "}" {
                            group_depth = group_depth.saturating_sub(1);
                            // Group prefixes are not popped per-item; nested
                            // groups are rare enough to over-approximate.
                        }
                    }
                    ";" => {
                        if let Some(name) = current.take() {
                            let mut full = prefix;
                            full.push(name.clone());
                            self.out.uses.insert(name, full);
                        }
                        return i + 1;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        let _ = group_depth;
        i
    }

    /// Parses one `fn` item starting at the `fn` keyword; returns the
    /// index to resume scanning from (after the body, or after the
    /// signature for bodyless trait/extern declarations).
    fn parse_fn(&mut self, i: usize, end: usize, mods: &[String], impl_ty: Option<&str>) -> usize {
        let Some(name) = self.ident_at(i + 1) else {
            return i + 1;
        };
        let t = &self.tokens[i];
        let mut item = FnItem {
            name: name.to_string(),
            qual: qualify(mods, impl_ty, name),
            impl_type: impl_ty.map(str::to_string),
            line: t.line,
            col: t.col,
            is_test: self.in_test(i),
            calls: Vec::new(),
            sources: Vec::new(),
            bindings: BTreeMap::new(),
        };
        // Signature: find the parameter `(`…`)` then the body `{` at
        // paren/bracket depth 0 (a `;` first means no body).
        let mut j = i + 2;
        let mut pdepth = 0isize;
        let mut params: Option<(usize, usize)> = None;
        let mut param_open = None;
        let mut open = None;
        while j < end {
            let t = &self.tokens[j];
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" => {
                        if pdepth == 0 && param_open.is_none() {
                            param_open = Some(j);
                        }
                        pdepth += 1;
                    }
                    ")" => {
                        pdepth -= 1;
                        if pdepth == 0 {
                            if let (Some(po), None) = (param_open, params) {
                                params = Some((po, j));
                            }
                        }
                    }
                    "[" => pdepth += 1,
                    "]" => pdepth -= 1,
                    "{" if pdepth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if pdepth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if let Some((po, pc)) = params {
            self.collect_params(po + 1, pc, impl_ty, &mut item.bindings);
        }
        let Some(open) = open else {
            return j + 1;
        };
        let close = self.matching_brace(open, end);
        self.scan_body(open + 1, close, &mut item);
        self.out.fns.push(item);
        close + 1
    }

    /// Records `name: Type` parameter pairs at paren depth 0 within the
    /// parameter list, plus `self` → the impl type.
    fn collect_params(
        &self,
        start: usize,
        end: usize,
        impl_ty: Option<&str>,
        bindings: &mut BTreeMap<String, String>,
    ) {
        let mut i = start;
        let mut depth = 0isize;
        while i < end {
            let t = &self.tokens[i];
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && depth == 0 {
                if t.text == "self" {
                    if let Some(ty) = impl_ty {
                        bindings.insert("self".to_string(), ty.to_string());
                    }
                } else if self.is(i + 1, TokKind::Punct, ":")
                    && !self.is(i + 2, TokKind::Punct, ":")
                {
                    let ty = self.type_text(i + 2, end);
                    bindings.insert(t.text.to_string(), ty);
                    // Skip ahead past the type to the next `,` at depth 0.
                    let mut k = i + 2;
                    let mut d = 0isize;
                    while k < end {
                        let u = &self.tokens[k];
                        if u.kind == TokKind::Punct {
                            match u.text {
                                "(" | "[" | "<" => d += 1,
                                ")" | "]" | ">" => d -= 1,
                                "," if d == 0 => break,
                                _ => {}
                            }
                        }
                        k += 1;
                    }
                    i = k;
                }
            }
            i += 1;
        }
    }

    /// The type text starting at `i` up to a depth-0 `,`/`;`/`=`/`)` or
    /// `limit`, tokens joined with spaces.
    fn type_text(&self, i: usize, limit: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut depth = 0isize;
        let mut k = i;
        while k < limit.min(self.tokens.len()) {
            let t = &self.tokens[k];
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "," | ";" | "=" | "{" if depth == 0 => break,
                    _ => {}
                }
            }
            parts.push(t.text);
            k += 1;
        }
        parts.join(" ")
    }

    /// Walks a function body collecting `let` bindings, `for`-loop
    /// inherited types, call sites, and determinism-source facts.
    fn scan_body(&mut self, start: usize, end: usize, item: &mut FnItem) {
        let mut i = start;
        while i < end {
            let Some(ident) = self.ident_at(i) else {
                i += 1;
                continue;
            };
            match ident {
                "let" => {
                    let mut k = i + 1;
                    if self.ident_at(k) == Some("mut") {
                        k += 1;
                    }
                    if let Some(name) = self.ident_at(k) {
                        if self.is(k + 1, TokKind::Punct, ":")
                            && !self.is(k + 2, TokKind::Punct, ":")
                        {
                            let ty = self.type_text(k + 2, end);
                            item.bindings.insert(name.to_string(), ty);
                        } else if self.is(k + 1, TokKind::Punct, "=") {
                            // `let x = Type::new(…)` / `let x = Type { … }`
                            if let Some(init) = self.ident_at(k + 2) {
                                if init.starts_with(char::is_uppercase)
                                    && (self.is(k + 3, TokKind::Punct, ":")
                                        || self.is(k + 3, TokKind::Punct, "{"))
                                {
                                    item.bindings.insert(name.to_string(), init.to_string());
                                }
                            }
                        }
                    }
                    i += 1;
                }
                "for" => {
                    // `for name in expr {` — inherit element typing from
                    // the iterated binding, and note hash-order iteration.
                    if let Some(var) = self.ident_at(i + 1) {
                        let mut k = i + 2;
                        while k < end && self.ident_at(k) != Some("in") {
                            if self.is(k, TokKind::Punct, "{") {
                                break;
                            }
                            k += 1;
                        }
                        if self.ident_at(k) == Some("in") {
                            let mut e = k + 1;
                            while e < end
                                && (self.is(e, TokKind::Punct, "&")
                                    || self.ident_at(e) == Some("mut"))
                            {
                                e += 1;
                            }
                            if let Some(base) = self.ident_at(e) {
                                let base_ty = item.bindings.get(base).cloned();
                                if base_ty.as_deref().is_some_and(|t| t.contains("SharedTier"))
                                    || self.tier_names.contains(base)
                                {
                                    item.bindings
                                        .insert(var.to_string(), "SharedTier".to_string());
                                }
                                if self.is_hash_named(item, base) && self.iterates_directly(e, end)
                                {
                                    let t = &self.tokens[e];
                                    item.sources.push(SourceFact {
                                        what: format!("`for … in {base}` iterates hash order"),
                                        hash_order: true,
                                        line: t.line,
                                        col: t.col,
                                    });
                                }
                            }
                        }
                    }
                    i += 1;
                }
                "RandomState" => {
                    let t = &self.tokens[i];
                    item.sources.push(SourceFact {
                        what: "`RandomState` (per-process hash seeding)".to_string(),
                        hash_order: false,
                        line: t.line,
                        col: t.col,
                    });
                    i += 1;
                }
                _ if NON_CALL_KEYWORDS.contains(&ident) => i += 1,
                _ => {
                    // Macro invocation `name!(…)`: not a call edge.
                    if self.is(i + 1, TokKind::Punct, "!") {
                        i += 2;
                        continue;
                    }
                    if self.is(i + 1, TokKind::Punct, "(") {
                        self.record_call(i, ident, item);
                    }
                    i += 1;
                }
            }
        }
    }

    /// Whether `base` (the iterated expression root at `e`) is iterated
    /// directly (`for x in &base {`) rather than via an adaptor that
    /// re-orders (`base.keys().sorted()` — adaptors are handled by the
    /// method-call fact instead).
    fn iterates_directly(&self, e: usize, end: usize) -> bool {
        let mut k = e + 1;
        while k < end {
            let t = &self.tokens[k];
            if t.kind == TokKind::Punct && t.text == "{" {
                return true;
            }
            if t.kind == TokKind::Punct && (t.text == "." || t.text == "(") {
                return false;
            }
            k += 1;
        }
        false
    }

    fn is_hash_named(&self, item: &FnItem, name: &str) -> bool {
        self.hash_names.contains(name)
            || item
                .bindings
                .get(name)
                .is_some_and(|t| t.contains("HashMap") || t.contains("HashSet"))
    }

    /// Classifies and records the call whose callee ident sits at `i`.
    fn record_call(&mut self, i: usize, name: &str, item: &mut FnItem) {
        let t = &self.tokens[i];
        let (line, col) = (t.line, t.col);
        // Path call: `A::b(` — walk back over `seg ::` pairs.
        if i >= 2 && self.is(i - 1, TokKind::Punct, ":") && self.is(i - 2, TokKind::Punct, ":") {
            let mut segs: Vec<String> = Vec::new();
            let mut k = i - 2;
            while let Some(pi) = k.checked_sub(1) {
                let Some(seg) = self.ident_at(pi) else { break };
                segs.push(seg.to_string());
                if pi >= 2
                    && self.is(pi - 1, TokKind::Punct, ":")
                    && self.is(pi - 2, TokKind::Punct, ":")
                {
                    k = pi - 2;
                } else {
                    break;
                }
            }
            segs.reverse();
            // Wall-clock facts are path calls to types outside the
            // workspace; classify here so the graph need not know std.
            if name == "now"
                && segs
                    .last()
                    .is_some_and(|s| s == "SystemTime" || s == "Instant")
            {
                item.sources.push(SourceFact {
                    what: format!(
                        "`{}::now()` reads the wall clock",
                        segs.last().unwrap_or(&String::new())
                    ),
                    hash_order: false,
                    line,
                    col,
                });
            }
            item.calls.push(CallSite {
                kind: CallKind::Path { qualifier: segs },
                name: name.to_string(),
                line,
                col,
            });
            return;
        }
        // Method call: `recv.name(` — walk back the receiver chain.
        if i >= 1 && self.is(i - 1, TokKind::Punct, ".") {
            let recv = self.receiver_chain(i - 1);
            if HASH_ITER_METHODS.contains(&name) {
                if let Some(root) = recv.last() {
                    if self.is_hash_named(item, root) {
                        item.sources.push(SourceFact {
                            what: format!("`{root}.{name}()` iterates hash order"),
                            hash_order: true,
                            line,
                            col,
                        });
                    }
                }
            }
            let mut chain = recv;
            chain.reverse(); // stored root-first
            item.calls.push(CallSite {
                kind: CallKind::Method { recv: chain },
                name: name.to_string(),
                line,
                col,
            });
            return;
        }
        if name == "thread_rng" {
            item.sources.push(SourceFact {
                what: "`thread_rng()` is ambient randomness".to_string(),
                hash_order: false,
                line,
                col,
            });
        }
        item.calls.push(CallSite {
            kind: CallKind::Bare,
            name: name.to_string(),
            line,
            col,
        });
    }

    /// Receiver chain segments walking back from the `.` at `dot`,
    /// nearest-segment-first (`tiers[0].cache.` → `["cache", "tiers"]`).
    /// Stops (returning what it has) at a complex sub-expression.
    fn receiver_chain(&self, dot: usize) -> Vec<String> {
        let mut segs = Vec::new();
        let mut k = dot;
        while let Some(mut before) = k.checked_sub(1) {
            // Skip a `[…]` index back to its opener.
            if self.is(before, TokKind::Punct, "]") {
                let mut depth = 1usize;
                loop {
                    let Some(p) = before.checked_sub(1) else {
                        return segs;
                    };
                    before = p;
                    if self.is(before, TokKind::Punct, "]") {
                        depth += 1;
                    } else if self.is(before, TokKind::Punct, "[") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                let Some(p) = before.checked_sub(1) else {
                    return segs;
                };
                before = p;
            }
            let Some(seg) = self.ident_at(before) else {
                // `(expr).m()` / `f().m()` — receiver unrecoverable.
                return segs;
            };
            segs.push(seg.to_string());
            match before.checked_sub(1) {
                Some(p) if self.is(p, TokKind::Punct, ".") => k = p,
                _ => break,
            }
        }
        segs
    }
}

/// `mods::Impl::name` display form.
fn qualify(mods: &[String], impl_ty: Option<&str>, name: &str) -> String {
    let mut parts: Vec<&str> = mods.iter().map(String::as_str).collect();
    if let Some(ty) = impl_ty {
        parts.push(ty);
    }
    parts.push(name);
    parts.join("::")
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items (same
/// algorithm as the token-rule engine).
fn locate_test_ranges(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let is = |idx: usize, text: &str| {
        tokens
            .get(idx)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    };
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is(i, "#") && is(i + 1, "[") {
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_test_attr = false;
            let mut first = true;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident {
                    if first && t.text == "test" {
                        is_test_attr = true;
                    }
                    if (t.text == "cfg" || t.text == "cfg_attr")
                        && tokens[j..]
                            .iter()
                            .take_while(|u| !(u.kind == TokKind::Punct && u.text == "]"))
                            .any(|u| u.kind == TokKind::Ident && u.text == "test")
                    {
                        is_test_attr = true;
                    }
                    first = false;
                }
                j += 1;
            }
            if is_test_attr {
                let mut k = j;
                while k < tokens.len() && !is(k, "{") {
                    k += 1;
                }
                let mut depth = 0usize;
                let mut close = tokens.len().saturating_sub(1);
                for (idx, t) in tokens.iter().enumerate().skip(k) {
                    if t.kind == TokKind::Punct {
                        match t.text {
                            "{" => depth += 1,
                            "}" => {
                                depth = depth.saturating_sub(1);
                                if depth == 0 {
                                    close = idx;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                ranges.push((i, close));
                i = close + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// File-level names declared with any of `types` (struct fields, lets,
/// parameters): walks left from each type mention over `&`/`mut`/
/// lifetimes/path qualifiers to the `name :`/`name =` declaration —
/// the same recovery the D2 token rule uses.
fn collect_declared(tokens: &[Token<'_>], types: &[&str]) -> BTreeSet<String> {
    let is = |idx: usize, text: &str| {
        tokens
            .get(idx)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    };
    let ident = |idx: usize| {
        tokens
            .get(idx)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
    };
    let mut out = BTreeSet::new();
    for i in 0..tokens.len() {
        let Some(name) = ident(i) else { continue };
        if !types.contains(&name) {
            continue;
        }
        let mut j = i;
        while j >= 3 && is(j - 1, ":") && is(j - 2, ":") && ident(j - 3).is_some() {
            j -= 3;
        }
        while j >= 1
            && (is(j - 1, "&")
                || is(j - 1, "[")
                || ident(j - 1) == Some("mut")
                || tokens[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2 && (is(j - 1, ":") || is(j - 1, "=")) {
            if let Some(n) = ident(j - 2) {
                out.insert(n.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/y.rs", &lex(src))
    }

    #[test]
    fn fns_get_impl_and_mod_qualification() {
        let p = parse(
            "mod inner {\n  impl Machine {\n    fn run_until(&self) {}\n  }\n  fn free() {}\n}\nfn top() {}",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "x::y::inner::Machine::run_until",
                "x::y::inner::free",
                "x::y::top"
            ]
        );
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Machine"));
    }

    #[test]
    fn impl_trait_for_type_resolves_to_type() {
        let p = parse("impl fmt::Display for DecodeError {\n  fn fmt(&self) {}\n}");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("DecodeError"));
        assert_eq!(
            p.fns[0].bindings.get("self").map(String::as_str),
            Some("DecodeError")
        );
    }

    #[test]
    fn calls_classified_bare_method_path() {
        let p = parse(
            "fn f(tiers: &[SharedTier]) { helper(); tiers[0].cache.insert(1); SystemTime::now(); }",
        );
        let f = &p.fns[0];
        let kinds: Vec<(&str, &CallKind)> =
            f.calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert_eq!(kinds[0].0, "helper");
        assert_eq!(kinds[0].1, &CallKind::Bare);
        assert_eq!(kinds[1].0, "insert");
        assert_eq!(
            kinds[1].1,
            &CallKind::Method {
                recv: vec!["tiers".to_string(), "cache".to_string()]
            }
        );
        assert_eq!(kinds[2].0, "now");
        assert_eq!(f.sources.len(), 1, "{:?}", f.sources);
        assert!(f.sources[0].what.contains("SystemTime"));
        assert!(f.bindings["tiers"].contains("SharedTier"));
    }

    #[test]
    fn for_loop_inherits_shared_tier_typing() {
        let p = parse("fn f(tiers: &[SharedTier]) { for tier in tiers { tier.cache.touch(1); } }");
        let f = &p.fns[0];
        assert_eq!(
            f.bindings.get("tier").map(String::as_str),
            Some("SharedTier")
        );
    }

    #[test]
    fn hash_iteration_facts_require_hash_typing() {
        let p = parse(
            "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { g(x); } \
             let b: BTreeMap<u32, u32> = BTreeMap::new(); for y in &b { g(y); } }",
        );
        let f = &p.fns[0];
        assert_eq!(f.sources.len(), 1, "{:?}", f.sources);
        assert!(f.sources[0].hash_order);
        assert!(f.sources[0].what.contains("`for … in m`"));
    }

    #[test]
    fn use_aliases_recorded() {
        let p = parse("use crate::graph::{Graph, NodeId};\nuse std::time::SystemTime as Clock;\n");
        assert_eq!(p.uses["Graph"], vec!["crate", "graph", "Graph"]);
        assert_eq!(p.uses["Clock"], vec!["std", "time", "SystemTime"]);
    }

    #[test]
    fn test_items_are_marked() {
        let p = parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}");
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn module_paths_derived_from_location() {
        assert_eq!(
            module_path("crates/cdnsim/src/sim.rs"),
            vec!["cdnsim", "sim"]
        );
        assert_eq!(module_path("crates/trace/src/lib.rs"), vec!["trace"]);
        assert_eq!(module_path("src/lib.rs"), vec!["jcdn"]);
        assert_eq!(module_path("weird.rs"), vec!["weird"]);
    }
}
