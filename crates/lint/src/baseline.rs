//! The committed findings baseline: lets a new rule land
//! blocking-on-regression instead of big-bang.
//!
//! `lint-baseline.json` at the workspace root records accepted findings
//! as `(rule, path, key)` entries, where `key` is the finding's message
//! — deliberately line-free, so unrelated edits that shift line numbers
//! do not invalidate the baseline, while any change to the finding
//! itself (different receiver, different chain) surfaces as
//! fresh + stale. Matching is count-aware: two identical findings need
//! two entries.
//!
//! Workflow: `jcdn-lint --workspace --write-baseline lint-baseline.json`
//! to accept the current state; CI runs with `--baseline` and fails on
//! *fresh* findings only, warning about stale entries so the file
//! shrinks as debt is paid down. The format is a hand-rolled JSON subset
//! (the linter's only dependency is jcdn-exec).

use crate::rules::Finding;
use std::collections::BTreeMap;

/// A parsed baseline: `(rule, path, key) → accepted count`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

/// The result of diffing current findings against a baseline.
#[derive(Clone, Debug, Default)]
pub struct BaselineDiff {
    /// Findings not covered by the baseline — these gate CI.
    pub fresh: Vec<Finding>,
    /// Findings matched by a baseline entry — reported, non-blocking.
    pub baselined: Vec<Finding>,
    /// Baseline entries no finding matched — the debt was paid; the
    /// entry should be deleted. `(rule, path, key, count)`.
    pub stale: Vec<(String, String, String, usize)>,
}

impl Baseline {
    /// Builds a baseline accepting exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.to_string(), f.path.clone(), f.message.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Whether the baseline accepts nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of accepted findings (counting multiplicity).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// Splits `findings` into fresh vs. baselined and reports stale
    /// entries. Count-aware: each entry absorbs at most `count` findings.
    pub fn diff(&self, findings: Vec<Finding>) -> BaselineDiff {
        let mut remaining = self.entries.clone();
        let mut out = BaselineDiff::default();
        for f in findings {
            let key = (f.rule.to_string(), f.path.clone(), f.message.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    out.baselined.push(f);
                }
                _ => out.fresh.push(f),
            }
        }
        for ((rule, path, key), n) in remaining {
            if n > 0 {
                out.stale.push((rule, path, key, n));
            }
        }
        out
    }

    /// Renders the baseline as stable, sorted JSON (one entry per line).
    pub fn render(&self) -> String {
        use crate::report::json_str;
        use std::fmt::Write as _;
        let mut out = String::from("{\"entries\":[\n");
        let mut first = true;
        for ((rule, path, key), n) in &self.entries {
            for _ in 0..*n {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"rule\":{},\"path\":{},\"key\":{}}}",
                    json_str(rule),
                    json_str(path),
                    json_str(key)
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses the JSON produced by [`Baseline::render`] (tolerant of
    /// whitespace and key order inside each entry object).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut s = Scanner {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let mut entries: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        s.eat(b'{')?;
        let top = s.string()?;
        if top != "entries" {
            return Err(format!("expected \"entries\", got \"{top}\""));
        }
        s.eat(b':')?;
        s.eat(b'[')?;
        s.skip_ws();
        if s.peek() == Some(b']') {
            s.pos += 1;
        } else {
            loop {
                s.eat(b'{')?;
                let (mut rule, mut path, mut key) = (None, None, None);
                loop {
                    let field = s.string()?;
                    s.eat(b':')?;
                    let value = s.string()?;
                    match field.as_str() {
                        "rule" => rule = Some(value),
                        "path" => path = Some(value),
                        "key" => key = Some(value),
                        other => return Err(format!("unknown baseline field \"{other}\"")),
                    }
                    s.skip_ws();
                    match s.next() {
                        Some(b',') => continue,
                        Some(b'}') => break,
                        _ => return Err("expected `,` or `}` in entry".to_string()),
                    }
                }
                let (Some(rule), Some(path), Some(key)) = (rule, path, key) else {
                    return Err("baseline entry missing rule/path/key".to_string());
                };
                if !crate::config::RULE_IDS.contains(&rule.as_str()) {
                    return Err(format!("baseline names unknown rule id `{rule}`"));
                }
                *entries.entry((rule, path, key)).or_insert(0) += 1;
                s.skip_ws();
                match s.next() {
                    Some(b',') => continue,
                    Some(b']') => break,
                    _ => return Err("expected `,` or `]` after entry".to_string()),
                }
            }
        }
        s.eat(b'}')?;
        Ok(Baseline { entries })
    }
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        match self.next() {
            Some(b) if b == want => Ok(()),
            got => Err(format!(
                "expected `{}` at byte {}, got {:?}",
                want as char,
                self.pos.saturating_sub(1),
                got.map(|b| b as char)
            )),
        }
    }

    /// Reads a quoted JSON string with the escapes [`json_str`]
    /// produces (`\" \\ \n \r \t \u00XX`).
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..end]));
                    self.pos = end;
                }
                None => return Err("unterminated string in baseline".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn finding(rule: &'static str, path: &str, msg: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: msg.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn round_trip() {
        let fs = vec![
            finding("D7", "crates/a/src/x.rs", "msg \"with\" quotes"),
            finding("D9", "crates/b/src/y.rs", "other"),
            finding("D9", "crates/b/src/y.rs", "other"),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.render()).expect("round trips");
        assert_eq!(b, parsed);
        assert_eq!(parsed.len(), 3);
    }

    #[test]
    fn diff_splits_fresh_baselined_stale() {
        let accepted = Baseline::from_findings(&[
            finding("D7", "a.rs", "old"),
            finding("D9", "b.rs", "paid-down"),
        ]);
        let now = vec![finding("D7", "a.rs", "old"), finding("D7", "a.rs", "new")];
        let diff = accepted.diff(now);
        assert_eq!(diff.baselined.len(), 1);
        assert_eq!(diff.fresh.len(), 1);
        assert_eq!(diff.fresh[0].message, "new");
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].0, "D9");
    }

    #[test]
    fn count_aware_matching() {
        let accepted = Baseline::from_findings(&[finding("D9", "b.rs", "dup")]);
        let diff = accepted.diff(vec![
            finding("D9", "b.rs", "dup"),
            finding("D9", "b.rs", "dup"),
        ]);
        assert_eq!(diff.baselined.len(), 1);
        assert_eq!(diff.fresh.len(), 1);
        assert!(diff.stale.is_empty());
    }

    #[test]
    fn parse_rejects_unknown_rules_and_garbage() {
        assert!(
            Baseline::parse("{\"entries\":[{\"rule\":\"D99\",\"path\":\"a\",\"key\":\"k\"}]}")
                .is_err()
        );
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"entries\":[]}")
            .expect("empty ok")
            .is_empty());
    }
}
