//! # jcdn-lint — the workspace determinism & safety linter
//!
//! The paper reproduction's results are only meaningful because the
//! pipeline is bit-deterministic for a given seed, shard count, and
//! thread count (see `DESIGN.md` §10–§11). That contract is enforced
//! dynamically by the `shard_invariance` property tests — and statically
//! by this crate: a self-contained token-level pass over the workspace's
//! Rust sources that catches the bug classes which break determinism
//! *before* a test ever runs.
//!
//! The rules (see [`report::explain`] or `jcdn-lint --explain <rule>`):
//!
//! | id | guards against |
//! |----|----------------|
//! | D1 | wall clock / ambient randomness (`SystemTime::now`, `thread_rng`, …) |
//! | D2 | `HashMap`/`HashSet` iteration in output-order-sensitive modules |
//! | D3 | `unwrap`/`expect`/`panic!` in non-test library code |
//! | D4 | lossy integer `as` casts in codec/interner code |
//! | D5 | ad-hoc float accumulation in `merge*` functions |
//! | D6 | missing doc comments on public items in core/trace/stats |
//! | D7 | cross-file determinism taint on merge/finalize/encode paths |
//! | D8 | shared-tier mutation inside the epoch peek phase |
//! | D9 | unchecked arithmetic on untrusted decode lengths |
//! | D10 | codec-version match exhaustiveness |
//! | S1 | malformed inline suppressions |
//!
//! Two stages, no rustc integration. **Stage 1** is per-file and
//! embarrassingly parallel (fanned out on the jcdn-exec pool): a
//! hand-rolled lexer ([`lexer`]) feeds the token-local rules ([`rules`])
//! and a lightweight item parser ([`parser`]) that summarizes functions,
//! calls, and determinism sources. **Stage 2** builds a workspace call
//! graph from those summaries ([`graph`]) and runs the flow-aware rules
//! D7/D8 over it ([`taint`]), attaching full call-chain evidence to each
//! finding. Both stages are scoped and exempted by [`config`]
//! (`allowlist.toml` at the workspace root), can be diffed against a
//! committed [`baseline`] (`lint-baseline.json`), and render as human or
//! JSON output ([`report`]). The two-stage full-workspace pass stays
//! well under the 5-second CI budget (enforced by a timing test and a
//! `jcdn-bench` case).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod taint;

use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineDiff};
pub use config::{parse_allowlist, Config};
pub use rules::{ChainHop, Finding, Severity};

/// Lints one file's source text — stage 1 only (token-local rules).
/// `path` is the workspace-relative path used for scope/allowlist
/// matching and in findings. Cross-file rules need the whole file set;
/// use [`lint_sources`] or [`lint_files`] for those.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    rules::lint_source(path, src, cfg)
}

/// Stage-1 output for one file: its token-rule findings plus the parsed
/// item summary stage 2 consumes.
fn stage1(path: &str, src: &str, cfg: &Config) -> (Vec<Finding>, parser::ParsedFile) {
    let lexed = lexer::lex(src);
    let findings = rules::lint_source(path, src, cfg);
    let parsed = parser::parse_file(path, &lexed);
    (findings, parsed)
}

/// Runs both stages over an in-memory `(path, source)` set — the
/// entry point the fixture tests use. `threads` controls the stage-1
/// fan-out on the jcdn-exec pool (stage 2 is a single graph walk).
pub fn lint_sources(files: &[(String, String)], cfg: &Config, threads: usize) -> Vec<Finding> {
    let per_file = jcdn_exec::scatter_gather_labeled("lint.stage1", files.len(), threads, |i| {
        stage1(&files[i].0, &files[i].1, cfg)
    });
    let mut findings: Vec<Finding> = Vec::new();
    let mut parsed: Vec<parser::ParsedFile> = Vec::with_capacity(per_file.len());
    for (f, p) in per_file {
        findings.extend(f);
        parsed.push(p);
    }
    let graph = graph::CallGraph::build(&parsed);
    let flow = taint::run(&graph, cfg);
    // Cross-file findings honor the same inline directives as stage 1,
    // keyed by the file the finding is anchored in. S1 for malformed
    // directives was already emitted by stage 1 — only filter here.
    let mut maps: std::collections::BTreeMap<
        &str,
        std::collections::BTreeMap<u32, std::collections::BTreeSet<&'static str>>,
    > = std::collections::BTreeMap::new();
    for p in &parsed {
        maps.insert(p.path.as_str(), rules::suppression_map(&p.suppressions));
    }
    for f in flow {
        let hit = maps
            .get(f.path.as_str())
            .and_then(|m| m.get(&f.line))
            .is_some_and(|rules| rules.contains(f.rule));
        if !hit {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    findings
}

/// Lints a set of files on disk, both stages, with the given stage-1
/// thread count. Paths are reported relative to `root` (with forward
/// slashes); unreadable files produce an `Err`.
pub fn lint_files_threaded(
    root: &Path,
    files: &[PathBuf],
    cfg: &Config,
    threads: usize,
) -> Result<Vec<Finding>, String> {
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let rel = relative_path(root, file);
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        sources.push((rel, src));
    }
    Ok(lint_sources(&sources, cfg, threads))
}

/// Lints a set of files on disk (both stages, single-threaded stage 1).
pub fn lint_files(root: &Path, files: &[PathBuf], cfg: &Config) -> Result<Vec<Finding>, String> {
    lint_files_threaded(root, files, cfg, 1)
}

/// Lints the whole workspace under `root`: every `.rs` file in
/// `crates/*/{src,tests,benches}`, plus the root `src/`, `tests/`, and
/// `examples/`. Skips `vendor/` (third-party stand-ins), `target/`, and
/// any `fixtures/` directory (the lint corpus is intentionally bad).
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    lint_workspace_threaded(root, cfg, 1)
}

/// [`lint_workspace`] with a stage-1 thread count.
pub fn lint_workspace_threaded(
    root: &Path,
    cfg: &Config,
    threads: usize,
) -> Result<Vec<Finding>, String> {
    let files = workspace_files(root)?;
    lint_files_threaded(root, &files, cfg, threads)
}

/// Enumerates the workspace's lintable `.rs` files in sorted order.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_roots = read_dir_sorted(&crates_dir)?;
        crate_roots.retain(|p| p.is_dir());
        for krate in crate_roots {
            for sub in ["src", "tests", "benches"] {
                let dir = krate.join(sub);
                if dir.is_dir() {
                    collect_rs(&dir, &mut files)?;
                }
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files, skipping `fixtures/` and `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        let name = entry
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if entry.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry.clone());
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("error listing {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// `file` relative to `root`, with forward slashes, for matching and
/// display. Falls back to the full path when `file` is not under `root`.
pub fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_fires_and_suppression_with_reason_silences() {
        let cfg = Config::all_scopes();
        let bad = "fn f() { let t = SystemTime::now(); }";
        let findings = lint_source("x.rs", bad, &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D1");
        assert_eq!(findings[0].line, 1);

        let ok = "fn f() {\n    // jcdn-lint: allow(D1) -- testing the directive\n    let t = SystemTime::now();\n}";
        assert!(lint_source("x.rs", ok, &cfg).is_empty());

        let missing_reason =
            "fn f() {\n    // jcdn-lint: allow(D1)\n    let t = SystemTime::now();\n}";
        let findings = lint_source("x.rs", missing_reason, &cfg);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(
            rules.contains(&"S1"),
            "missing reason is reported: {rules:?}"
        );
        assert!(rules.contains(&"D1"), "and does not suppress: {rules:?}");
    }

    #[test]
    fn d3_skips_test_modules() {
        let cfg = Config::all_scopes();
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn d2_requires_hash_binding_and_respects_sort_canonical() {
        let cfg = Config::all_scopes();
        let bad = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { use_(x); } }";
        let findings = lint_source("x.rs", bad, &cfg);
        assert_eq!(findings.iter().filter(|f| f.rule == "D2").count(), 1);

        let sorted = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); \
                      let mut v: Vec<_> = m.into_iter().collect(); sort_canonical(&mut v); }";
        assert!(lint_source("x.rs", sorted, &cfg).is_empty());

        let btree =
            "fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); for x in &m { use_(x); } }";
        assert!(lint_source("x.rs", btree, &cfg).is_empty());
    }

    #[test]
    fn d4_flags_int_casts_only() {
        let cfg = Config::all_scopes();
        let src = "fn f(x: u64) { let a = x as usize; let b = x as f64; }";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D4");
    }

    #[test]
    fn d5_flags_float_merge_accumulation() {
        let cfg = Config::all_scopes();
        let src = "struct S { mean: f64, count: u64 }\n\
                   impl S {\n    fn merge(&mut self, o: &S) { self.mean += o.mean; self.count += o.count; }\n}";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "D5");
        assert!(findings[0].message.contains("mean"));
    }

    #[test]
    fn d6_requires_docs_on_pub_items() {
        let cfg = Config::all_scopes();
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\npub(crate) fn c() {}\n";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "D6");
        assert!(findings[0].message.contains('b'));
    }

    #[test]
    fn two_stage_pass_reports_cross_file_taint_with_chain() {
        let cfg = Config::all_scopes();
        let files = vec![
            (
                "crates/core/src/merge.rs".to_string(),
                "fn merge_partials() { tally(); }".to_string(),
            ),
            (
                "crates/core/src/helpers.rs".to_string(),
                "fn tally() { stamp(); }\nfn stamp() { let _ = SystemTime::now(); }".to_string(),
            ),
        ];
        let findings = lint_sources(&files, &cfg, 1);
        let d7: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D7").collect();
        assert_eq!(d7.len(), 1, "{findings:?}");
        assert_eq!(d7[0].chain.len(), 3);
        // Stage 1 independently reports the D1 at the source.
        assert!(findings.iter().any(|f| f.rule == "D1"));
        // Thread count must not change the result.
        assert_eq!(lint_sources(&files, &cfg, 4), findings);
    }

    #[test]
    fn cross_file_findings_honor_inline_directives() {
        let cfg = Config::all_scopes();
        let files = vec![
            (
                "crates/core/src/merge.rs".to_string(),
                "fn merge_partials() { stamp(); }".to_string(),
            ),
            (
                "crates/core/src/helpers.rs".to_string(),
                "fn stamp() {\n    // jcdn-lint: allow(D1, D7) -- fixture exercises the directive\n    let _ = SystemTime::now();\n}"
                    .to_string(),
            ),
        ];
        let findings = lint_sources(&files, &cfg, 1);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scopes_gate_rules_by_path() {
        let cfg = Config::workspace_default();
        let cast = "fn f(x: u64) { let a = x as usize; }";
        assert!(!lint_source("crates/trace/src/codec.rs", cast, &cfg).is_empty());
        assert!(lint_source("crates/core/src/report.rs", cast, &cfg).is_empty());
    }
}
