//! # jcdn-lint — the workspace determinism & safety linter
//!
//! The paper reproduction's results are only meaningful because the
//! pipeline is bit-deterministic for a given seed, shard count, and
//! thread count (see `DESIGN.md` §10–§11). That contract is enforced
//! dynamically by the `shard_invariance` property tests — and statically
//! by this crate: a self-contained token-level pass over the workspace's
//! Rust sources that catches the bug classes which break determinism
//! *before* a test ever runs.
//!
//! The rules (see [`report::explain`] or `jcdn-lint --explain <rule>`):
//!
//! | id | guards against |
//! |----|----------------|
//! | D1 | wall clock / ambient randomness (`SystemTime::now`, `thread_rng`, …) |
//! | D2 | `HashMap`/`HashSet` iteration in output-order-sensitive modules |
//! | D3 | `unwrap`/`expect`/`panic!` in non-test library code |
//! | D4 | lossy integer `as` casts in codec/interner code |
//! | D5 | ad-hoc float accumulation in `merge*` functions |
//! | D6 | missing doc comments on public items in core/trace/stats |
//! | S1 | malformed inline suppressions |
//!
//! No dependencies, no rustc integration: a hand-rolled lexer
//! ([`lexer`]) feeds per-file rule checks ([`rules`]) scoped and
//! exempted by [`config`] (`allowlist.toml` at the workspace root), with
//! human and JSON output ([`report`]). The full-workspace pass is a few
//! milliseconds — cheap enough to run as a blocking CI job next to
//! rustfmt and clippy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::{parse_allowlist, Config};
pub use rules::{Finding, Severity};

/// Lints one file's source text. `path` is the workspace-relative path
/// used for scope/allowlist matching and in findings.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    rules::lint_source(path, src, cfg)
}

/// Lints a set of files on disk. Paths are reported relative to `root`
/// (with forward slashes); unreadable files produce an `Err`.
pub fn lint_files(root: &Path, files: &[PathBuf], cfg: &Config) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for file in files {
        let rel = relative_path(root, file);
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        findings.extend(lint_source(&rel, &src, cfg));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}

/// Lints the whole workspace under `root`: every `.rs` file in
/// `crates/*/{src,tests,benches}`, plus the root `src/`, `tests/`, and
/// `examples/`. Skips `vendor/` (third-party stand-ins), `target/`, and
/// any `fixtures/` directory (the lint corpus is intentionally bad).
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    let files = workspace_files(root)?;
    lint_files(root, &files, cfg)
}

/// Enumerates the workspace's lintable `.rs` files in sorted order.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_roots = read_dir_sorted(&crates_dir)?;
        crate_roots.retain(|p| p.is_dir());
        for krate in crate_roots {
            for sub in ["src", "tests", "benches"] {
                let dir = krate.join(sub);
                if dir.is_dir() {
                    collect_rs(&dir, &mut files)?;
                }
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files, skipping `fixtures/` and `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        let name = entry
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if entry.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry.clone());
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("error listing {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// `file` relative to `root`, with forward slashes, for matching and
/// display. Falls back to the full path when `file` is not under `root`.
pub fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_fires_and_suppression_with_reason_silences() {
        let cfg = Config::all_scopes();
        let bad = "fn f() { let t = SystemTime::now(); }";
        let findings = lint_source("x.rs", bad, &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D1");
        assert_eq!(findings[0].line, 1);

        let ok = "fn f() {\n    // jcdn-lint: allow(D1) -- testing the directive\n    let t = SystemTime::now();\n}";
        assert!(lint_source("x.rs", ok, &cfg).is_empty());

        let missing_reason =
            "fn f() {\n    // jcdn-lint: allow(D1)\n    let t = SystemTime::now();\n}";
        let findings = lint_source("x.rs", missing_reason, &cfg);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(
            rules.contains(&"S1"),
            "missing reason is reported: {rules:?}"
        );
        assert!(rules.contains(&"D1"), "and does not suppress: {rules:?}");
    }

    #[test]
    fn d3_skips_test_modules() {
        let cfg = Config::all_scopes();
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn d2_requires_hash_binding_and_respects_sort_canonical() {
        let cfg = Config::all_scopes();
        let bad = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { use_(x); } }";
        let findings = lint_source("x.rs", bad, &cfg);
        assert_eq!(findings.iter().filter(|f| f.rule == "D2").count(), 1);

        let sorted = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); \
                      let mut v: Vec<_> = m.into_iter().collect(); sort_canonical(&mut v); }";
        assert!(lint_source("x.rs", sorted, &cfg).is_empty());

        let btree =
            "fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); for x in &m { use_(x); } }";
        assert!(lint_source("x.rs", btree, &cfg).is_empty());
    }

    #[test]
    fn d4_flags_int_casts_only() {
        let cfg = Config::all_scopes();
        let src = "fn f(x: u64) { let a = x as usize; let b = x as f64; }";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D4");
    }

    #[test]
    fn d5_flags_float_merge_accumulation() {
        let cfg = Config::all_scopes();
        let src = "struct S { mean: f64, count: u64 }\n\
                   impl S {\n    fn merge(&mut self, o: &S) { self.mean += o.mean; self.count += o.count; }\n}";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "D5");
        assert!(findings[0].message.contains("mean"));
    }

    #[test]
    fn d6_requires_docs_on_pub_items() {
        let cfg = Config::all_scopes();
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\npub(crate) fn c() {}\n";
        let findings = lint_source("x.rs", src, &cfg);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "D6");
        assert!(findings[0].message.contains('b'));
    }

    #[test]
    fn scopes_gate_rules_by_path() {
        let cfg = Config::workspace_default();
        let cast = "fn f(x: u64) { let a = x as usize; }";
        assert!(!lint_source("crates/trace/src/codec.rs", cast, &cfg).is_empty());
        assert!(lint_source("crates/core/src/report.rs", cast, &cfg).is_empty());
    }
}
