//! The flow-aware rules D7 and D8, run over the workspace call graph.
//!
//! Both rules are reachability questions with evidence:
//!
//! * **D7 (determinism taint)** — from every *determinism root* (a
//!   function named `merge*`/`finalize*`, or `encode*` inside the trace
//!   codec), walk the call graph forward; any reachable function that
//!   observes a D1-banned source (wall clock, ambient randomness, hash
//!   iteration order) taints the whole path, and the finding prints the
//!   full call chain from the root to the observation. A source inside a
//!   D1-allowlisted file (e.g. the fault-injection module) is sanctioned
//!   and does not taint; hash-order sources only count where the D2
//!   scope says output order matters.
//! * **D8 (epoch-lockstep safety)** — from every peek-phase entry point
//!   (`run_until` in `cdnsim`), any reachable call of a shared-tier
//!   mutator (`insert`/`evict`/`touch`/`expire` on a `SharedTier`-typed
//!   receiver) is flagged: the peek phase must stay side-effect-free
//!   against the epoch-frozen tier slice, logging intents through
//!   `TierCtx::record` for `flush_accesses` to apply at the boundary.
//!
//! The walk is a multi-source BFS with parent pointers over the sorted
//! node list, so chains are deterministic (shortest, ties broken by node
//! order) regardless of parse order.

use crate::config::Config;
use crate::graph::CallGraph;
use crate::rules::{ChainHop, Finding, Severity};

/// Shared-tier mutator methods the peek phase must never call directly.
const TIER_MUTATORS: [&str; 4] = ["insert", "evict", "touch", "expire"];

/// Runs D7 and D8 over the graph, returning findings anchored at the
/// offending site with their call chains populated. Suppression
/// directives and baselines are applied by the caller.
pub fn run(graph: &CallGraph, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_d7(graph, cfg, &mut out);
    rule_d8(graph, cfg, &mut out);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Whether node `i` is a D7 determinism root.
fn d7_root(graph: &CallGraph, i: usize) -> bool {
    let n = &graph.nodes[i];
    if n.item.is_test {
        return false;
    }
    let name = n.item.name.as_str();
    name.starts_with("merge")
        || name.starts_with("finalize")
        || (name.starts_with("encode") && n.path.starts_with("crates/trace/src/"))
}

/// Whether node `i` is a D8 peek-phase root.
fn d8_root(graph: &CallGraph, i: usize) -> bool {
    let n = &graph.nodes[i];
    !n.item.is_test && n.item.name == "run_until" && n.path.starts_with("crates/cdnsim/")
}

/// Multi-source BFS. Returns `reach[i] = Some((root, parent_edge))` for
/// every node reachable from a root, where `parent_edge` is
/// `Some((parent_node, call_line))` or `None` for the roots themselves.
type Reach = Vec<Option<(usize, Option<(usize, u32)>)>>;

fn bfs(graph: &CallGraph, is_root: impl Fn(&CallGraph, usize) -> bool) -> Reach {
    let mut reach: Reach = vec![None; graph.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for i in graph.node_ids() {
        if is_root(graph, i) {
            reach[i] = Some((i, None));
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        let root = reach[i].map(|(r, _)| r).unwrap_or(i);
        for e in &graph.edges[i] {
            if reach[e.callee].is_none() {
                reach[e.callee] = Some((root, Some((i, e.line))));
                queue.push_back(e.callee);
            }
        }
    }
    reach
}

/// Reconstructs the call chain from the BFS root down to node `i`:
/// the root at its definition site, then each entered function located at
/// the call site in the previous hop.
fn chain_to(graph: &CallGraph, reach: &Reach, i: usize) -> Vec<ChainHop> {
    let mut rev: Vec<ChainHop> = Vec::new();
    let mut cur = i;
    while let Some((_, parent)) = reach[cur] {
        match parent {
            Some((p, call_line)) => {
                rev.push(ChainHop {
                    func: graph.nodes[cur].item.qual.clone(),
                    path: graph.nodes[p].path.clone(),
                    line: call_line,
                });
                cur = p;
            }
            None => {
                rev.push(ChainHop {
                    func: graph.nodes[cur].item.qual.clone(),
                    path: graph.nodes[cur].path.clone(),
                    line: graph.nodes[cur].item.line,
                });
                break;
            }
        }
    }
    rev.reverse();
    rev
}

fn rule_d7(graph: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let reach = bfs(graph, d7_root);
    for i in graph.node_ids() {
        if reach[i].is_none() {
            continue;
        }
        let n = &graph.nodes[i];
        if n.item.is_test || !cfg.applies("D7", &n.path) {
            continue;
        }
        for src in &n.item.sources {
            // Sanctioned sources do not taint: hash-order facts only
            // matter under the D2 (output-order) scope; clock/randomness
            // facts are void where the D1 allowlist blesses them.
            let gate = if src.hash_order { "D2" } else { "D1" };
            if !cfg.applies(gate, &n.path) {
                continue;
            }
            let chain = chain_to(graph, &reach, i);
            let root = chain.first().map(|h| h.func.clone()).unwrap_or_default();
            out.push(Finding {
                rule: "D7",
                severity: Severity::Error,
                path: n.path.clone(),
                line: src.line,
                col: src.col,
                message: format!(
                    "{} is reachable from determinism root `{root}` \
                     ({}-hop chain); merge/finalize/encode paths must be \
                     bit-reproducible",
                    src.what,
                    chain.len(),
                ),
                chain,
            });
        }
    }
}

fn rule_d8(graph: &CallGraph, cfg: &Config, out: &mut Vec<Finding>) {
    let reach = bfs(graph, d8_root);
    for i in graph.node_ids() {
        if reach[i].is_none() {
            continue;
        }
        let n = &graph.nodes[i];
        if n.item.is_test || !cfg.applies("D8", &n.path) {
            continue;
        }
        for call in &n.item.calls {
            let crate::parser::CallKind::Method { recv } = &call.kind else {
                continue;
            };
            if !TIER_MUTATORS.contains(&call.name.as_str()) {
                continue;
            }
            let Some(root_name) = recv.first() else {
                continue;
            };
            let tier_typed = n
                .item
                .bindings
                .get(root_name)
                .is_some_and(|ty| ty.contains("SharedTier"));
            if !tier_typed {
                continue;
            }
            let chain = chain_to(graph, &reach, i);
            let root = chain.first().map(|h| h.func.clone()).unwrap_or_default();
            out.push(Finding {
                rule: "D8",
                severity: Severity::Error,
                path: n.path.clone(),
                line: call.line,
                col: call.col,
                message: format!(
                    "shared-tier mutation `{}.{}()` inside the epoch peek \
                     phase (reachable from `{root}`, {}-hop chain); record the \
                     intent via `TierCtx::record` and let `flush_accesses` \
                     apply it at the epoch boundary",
                    recv.join("."),
                    call.name,
                    chain.len(),
                ),
                chain,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{parse_file, ParsedFile};

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, &lex(s))).collect();
        let graph = CallGraph::build(&parsed);
        run(&graph, &Config::all_scopes())
    }

    #[test]
    fn d7_flags_wall_clock_two_hops_below_merge() {
        let findings = analyze(&[
            (
                "crates/core/src/a.rs",
                "fn merge_partials() { tally(); }\nfn unrelated() { stamp(); }",
            ),
            (
                "crates/core/src/b.rs",
                "fn tally() { stamp(); }\nfn stamp() { let _ = SystemTime::now(); }",
            ),
        ]);
        let d7: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D7").collect();
        assert_eq!(d7.len(), 1, "{findings:?}");
        assert_eq!(d7[0].path, "crates/core/src/b.rs");
        assert_eq!(d7[0].chain.len(), 3, "{:?}", d7[0].chain);
        assert_eq!(d7[0].chain[0].func, "core::a::merge_partials");
        assert_eq!(d7[0].chain[2].func, "core::b::stamp");
    }

    #[test]
    fn d7_ignores_sources_outside_reachability() {
        let findings = analyze(&[(
            "crates/core/src/a.rs",
            "fn merge_x() { ok(); }\nfn ok() {}\nfn lonely() { let _ = Instant::now(); }",
        )]);
        assert!(findings.iter().all(|f| f.rule != "D7"), "{findings:?}");
    }

    #[test]
    fn d7_respects_d1_allowlist_for_sources() {
        let files = [
            ("crates/core/src/a.rs", "fn merge_x() { jitter(); }"),
            (
                "crates/cdnsim/src/fault.rs",
                "fn jitter() { let _ = SystemTime::now(); }",
            ),
        ];
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, &lex(s))).collect();
        let graph = CallGraph::build(&parsed);
        let mut cfg = Config::all_scopes();
        cfg.allow.insert(
            "D1".to_string(),
            vec!["crates/cdnsim/src/fault.rs".to_string()],
        );
        let findings = run(&graph, &cfg);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn d8_flags_tier_mutation_in_peek_phase() {
        let findings = analyze(&[(
            "crates/cdnsim/src/sim.rs",
            "impl Machine {\n fn run_until(&mut self, tiers: &[SharedTier]) { promote(tiers); }\n}\n\
             fn promote(tiers: &[SharedTier]) { tiers[0].cache.insert(1); }",
        )]);
        let d8: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D8").collect();
        assert_eq!(d8.len(), 1, "{findings:?}");
        assert_eq!(d8[0].chain.len(), 2);
        assert!(d8[0].message.contains("tiers.cache.insert"));
    }

    #[test]
    fn d8_allows_flush_accesses_outside_run_until() {
        let findings = analyze(&[(
            "crates/cdnsim/src/hierarchy.rs",
            "fn flush_accesses(tiers: &mut [SharedTier]) { tiers[0].cache.insert(1); }\n\
             fn epoch_loop(tiers: &mut [SharedTier]) { flush_accesses(tiers); }",
        )]);
        assert!(findings.iter().all(|f| f.rule != "D8"), "{findings:?}");
    }

    #[test]
    fn d8_ignores_edge_local_caches() {
        let findings = analyze(&[(
            "crates/cdnsim/src/sim.rs",
            "impl Machine {\n fn run_until(&mut self, edge: &mut Edge) { edge.cache.insert(1); }\n}",
        )]);
        assert!(findings.iter().all(|f| f.rule != "D8"), "{findings:?}");
    }

    #[test]
    fn chains_are_shortest_and_deterministic() {
        // Two routes from the root to the source: direct (2 hops) and via
        // an intermediary (3 hops) — BFS must report the 2-hop chain.
        let findings = analyze(&[(
            "crates/core/src/a.rs",
            "fn merge_all() { direct(); indirect(); }\n\
             fn indirect() { direct(); }\n\
             fn direct() { let _ = SystemTime::now(); }",
        )]);
        let d7: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D7").collect();
        assert_eq!(d7.len(), 1);
        assert_eq!(d7[0].chain.len(), 2, "{:?}", d7[0].chain);
    }
}
