//! Rendering findings as human-readable text or machine-readable JSON,
//! and the `--explain` texts.

use crate::rules::Finding;
use std::fmt::Write as _;

/// Renders findings in `path:line:col: severity[rule] message` form, one
/// per line, with a trailing summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: {}[{}] {}",
            f.path,
            f.line,
            f.col,
            f.severity.label(),
            f.rule,
            f.message
        );
        // Flow rules carry their evidence: the call chain from the root
        // to the flagged site, one indented hop per line.
        for (i, hop) in f.chain.iter().enumerate() {
            let verb = if i == 0 { "root" } else { "calls" };
            let _ = writeln!(out, "    {verb} {} at {}:{}", hop.func, hop.path, hop.line);
        }
    }
    if findings.is_empty() {
        out.push_str("jcdn-lint: clean\n");
    } else {
        let files: std::collections::BTreeSet<&str> =
            findings.iter().map(|f| f.path.as_str()).collect();
        let _ = writeln!(
            out,
            "jcdn-lint: {} finding(s) in {} file(s)",
            findings.len(),
            files.len()
        );
    }
    out
}

/// Renders findings as a JSON document:
/// `{"findings": [{…}], "count": n}`. Hand-rolled (the linter has no
/// dependencies); strings are escaped per RFC 8259.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}",
            json_str(f.rule),
            json_str(f.severity.label()),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message)
        );
        if !f.chain.is_empty() {
            out.push_str(",\"chain\":[");
            for (j, hop) in f.chain.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"func\":{},\"path\":{},\"line\":{}}}",
                    json_str(&hop.func),
                    json_str(&hop.path),
                    hop.line
                );
            }
            out.push(']');
        }
        out.push('}');
    }
    let _ = write!(out, "],\"count\":{}}}", findings.len());
    out.push('\n');
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The long-form explanation for one rule id, or `None` for an unknown id.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D1" => {
            "D1 — wall-clock and ambient-randomness APIs\n\
             \n\
             Bans `SystemTime::now`, `Instant::now`, `thread_rng`, and\n\
             `RandomState`. The pipeline's contract is bit-identical output for\n\
             a given seed, across shard counts {1,2,8} and thread counts {1,4}.\n\
             Any read of the host clock or process-local randomness makes output\n\
             depend on when and where the binary ran. Simulated time (`SimTime`)\n\
             is the only clock; RNG streams are derived from the seed\n\
             (SplitMix64) and threaded through the call graph.\n\
             \n\
             Allowed surfaces (allowlist.toml): the fault-injection module\n\
             models real-world nondeterminism behind a seeded plan, and the\n\
             bench harness times wall-clock by definition.\n\
             \n\
             Fix: accept a `SimTime`/RNG parameter; derive per-worker streams\n\
             with SplitMix64. Suppress only with a written reason:\n\
             `// jcdn-lint: allow(D1) -- <why>`"
        }
        "D2" => {
            "D2 — hash-ordered iteration in output-order-sensitive modules\n\
             \n\
             Bans iterating a `HashMap`/`HashSet` (`.iter()`, `.keys()`,\n\
             `.values()`, `.into_iter()`, `.drain()`, `for … in`) in modules\n\
             whose iteration order reaches output: report writers\n\
             (core::characterize, core::report, the CLI commands), codec\n\
             framing (trace::codec), and partial-report merging\n\
             (core::pipeline). Hash order varies per process (SipHash keys) and\n\
             per std version, so one stray iteration silently breaks\n\
             shard-invariance and run-to-run reproducibility.\n\
             \n\
             Fix: use `BTreeMap`/`BTreeSet` (deterministic order, and usually\n\
             what the report wants anyway), or re-establish a total order by\n\
             calling a function named `sort_canonical` in the same function.\n\
             The check is file-local: it sees bindings and fields declared with\n\
             a hash type in the same file."
        }
        "D3" => {
            "D3 — `unwrap`/`expect`/`panic!`/`catch_unwind` in non-test library code\n\
             \n\
             Library crates return typed errors (`EncodeError`, intern-overflow\n\
             errors, …). A panic inside a shard worker aborts the whole\n\
             scatter-gather pipeline and loses the partial results; a typed\n\
             error propagates and reports. `catch_unwind` is flagged too: the\n\
             one sanctioned unwind boundary lives in jcdn-exec, where a caught\n\
             panic enters the quarantine/retry policy and is counted — an\n\
             ad-hoc boundary elsewhere swallows panics invisibly. Test modules\n\
             (`#[cfg(test)]`, `#[test]`) are exempt, as are the CLI binary and\n\
             bench harness (fail-fast is correct there).\n\
             \n\
             Fix: restructure so the invariant needs no panic (`total_cmp`\n\
             instead of `partial_cmp(..).expect`, `if let` instead of\n\
             `unwrap`), or return a typed error. For genuine can't-happen\n\
             invariants (e.g. an operator impl that cannot return `Result`),\n\
             suppress with a reason."
        }
        "D4" => {
            "D4 — lossy integer `as` casts in codec/interner code\n\
             \n\
             `as` silently truncates. In codec framing, a corrupt or\n\
             adversarial length prefix cast with `as usize` wraps into a small\n\
             number instead of failing, corrupting the decode at a distance;\n\
             in the interner, a truncated id aliases another string. Scope:\n\
             the trace crate (codec, interner, framing).\n\
             \n\
             Fix: `try_from` with a typed decode/encode error. For provably\n\
             lossless bit-twiddling (masked bytes, zigzag reinterpretation),\n\
             suppress with a reason stating the invariant."
        }
        "D5" => {
            "D5 — ad-hoc float accumulation in merge functions\n\
             \n\
             Mergeable statistics (the §4 partial reports, SimStats) must\n\
             combine through the jcdn-stats helpers (`Summary::merge`,\n\
             `Histogram::merge`, `Ecdf::merge`, `ExactQuantiles::merge`),\n\
             whose merges are exact on counts and numerically stable on\n\
             moments. A hand-written `self.mean += other.mean` in a `merge*`\n\
             function is wrong for weighted moments and breaks the\n\
             shard-count-invariance property tests. The check flags `+=` on\n\
             fields declared `f32`/`f64` in the same file, inside functions\n\
             whose name starts with `merge`, outside the stats crate.\n\
             \n\
             Fix: store a stats type (`Summary`, `Histogram`, …) instead of a\n\
             raw float and merge through it, or compute the float at\n\
             finalize-time from exactly-merged integer counts."
        }
        "D6" => {
            "D6 — missing doc comments on public items\n\
             \n\
             Every `pub` item (fn, struct, field, enum, trait, type, mod,\n\
             const, static) in the contract crates (core, trace, stats) must\n\
             carry a `///` doc comment. These crates implement the paper's\n\
             measured quantities; an undocumented public knob is how a future\n\
             change silently diverges from the paper's definitions. This is\n\
             the statically-checked twin of `#![warn(missing_docs)]`, and also\n\
             covers `pub` methods on private types.\n\
             \n\
             Fix: document the item (what it measures, and the paper section\n\
             if applicable)."
        }
        "D7" => {
            "D7 — cross-file determinism taint on merge/finalize/encode paths\n\
             \n\
             The flow-aware twin of D1/D2. Stage 2 builds a workspace call\n\
             graph (lightweight item parser, no full AST) and walks forward\n\
             from every *determinism root* — functions named `merge*` or\n\
             `finalize*` anywhere, and `encode*` inside the trace codec. Any\n\
             reachable function that observes a banned source taints the whole\n\
             path: wall clock (`SystemTime::now`, `Instant::now`), ambient\n\
             randomness (`thread_rng`, `RandomState`), or hash-ordered\n\
             iteration. The finding is anchored at the observation site and\n\
             prints the full call chain from the root as evidence.\n\
             \n\
             Sanctioned sources do not taint: files the D1 allowlist blesses\n\
             (fault injection, the bench harness, obs::clock) and hash\n\
             iteration outside the D2 output-order scope.\n\
             \n\
             Resolution is conservative — ambiguous call targets drop the\n\
             edge, so a D7 finding is evidence, not speculation. Fix the\n\
             source (SimTime, seeded streams, BTreeMap), or suppress at the\n\
             source line with a reason."
        }
        "D8" => {
            "D8 — shared-tier mutation inside the epoch peek phase\n\
             \n\
             The epoch-lockstep contract (DESIGN.md §14): during an epoch,\n\
             machines run `run_until` against an immutable, epoch-frozen\n\
             `&[SharedTier]` slice in parallel; every intended mutation is\n\
             recorded as a `TierAccess` via `TierCtx::record`, and only\n\
             `flush_accesses` applies them — single-threaded, at the epoch\n\
             boundary, in deterministic order. A direct `insert`/`evict`/\n\
             `touch`/`expire` on a shared tier anywhere in the call graph\n\
             below `run_until` would make results depend on thread\n\
             interleaving, silently breaking byte-identical replay.\n\
             \n\
             The rule walks the call graph from every `run_until` in cdnsim\n\
             and flags mutator calls on `SharedTier`-typed receivers, with\n\
             the call chain printed. Edge-local caches (receivers typed\n\
             `Edge`/`Machine`) are exempt — those are thread-private.\n\
             \n\
             Fix: record a `TierAccess` instead of mutating."
        }
        "D9" => {
            "D9 — unchecked arithmetic on untrusted decode lengths\n\
             \n\
             A length read off the wire (`get_varint`, `get_u16_le`,\n\
             `get_u32_le`, `get_u8`) is attacker-controlled until validated.\n\
             `+`/`*`/`<<` on such a binding can overflow and wrap *before*\n\
             any bound check runs, turning a corrupt frame into a tiny (or\n\
             enormous) allocation, an aliased offset, or a panic — instead of\n\
             a typed `DecodeError`. Scope: trace::codec and trace::compat.\n\
             \n\
             The check is statement-local: a binding whose initializer reads\n\
             a getter is tainted; arithmetic on it is flagged unless the same\n\
             statement sanctions the value (`checked_*`, `saturating_*`,\n\
             `min`, `clamp`, or a `to_usize` checked conversion).\n\
             \n\
             Fix: `checked_add`/`checked_mul`/`checked_shl` with a\n\
             `DecodeError` on `None`, or clamp/validate first."
        }
        "D10" => {
            "D10 — codec-version match exhaustiveness\n\
             \n\
             Every `match` whose scrutinee mentions a version binding must\n\
             explicitly cover the full codec version space v1–v4. A wildcard\n\
             arm does NOT count as coverage: the hazard is precisely that a\n\
             future v5 frame silently rides an arm meant for an older format\n\
             (or falls into tolerant-decode salvage) instead of forcing a\n\
             reviewed decision. Symbolic patterns over the `VERSION`/\n\
             `MIN_VERSION` consts are accepted — they track the space by\n\
             construction. When the version space grows to v5, extend both\n\
             the dispatches and this rule's space (crates/lint/src/rules.rs)\n\
             in the same PR.\n\
             \n\
             Fix: list every version (`1 | 2 => …, 3 | 4 => …`) and keep the\n\
             wildcard arm only for the error path, or suppress with a reason\n\
             if a dispatch genuinely only distinguishes a subset."
        }
        "S1" => {
            "S1 — malformed suppression directive\n\
             \n\
             Inline suppressions must name at least one known rule id and\n\
             carry a reason: `// jcdn-lint: allow(D3) -- sort key is total by\n\
             construction`. A suppression without a reason is itself an error:\n\
             the reason is the review artifact that keeps exemptions honest.\n\
             A directive on its own line suppresses the next line; a trailing\n\
             directive suppresses its own line."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn f() -> Finding {
        Finding {
            rule: "D1",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "a \"quoted\" message\twith control".to_string(),
            chain: Vec::new(),
        }
    }

    fn chained() -> Finding {
        use crate::rules::ChainHop;
        let mut f = f();
        f.rule = "D7";
        f.chain = vec![
            ChainHop {
                func: "core::pipeline::merge_partials".to_string(),
                path: "crates/core/src/pipeline.rs".to_string(),
                line: 10,
            },
            ChainHop {
                func: "core::pipeline::tally".to_string(),
                path: "crates/core/src/pipeline.rs".to_string(),
                line: 14,
            },
        ];
        f
    }

    #[test]
    fn text_format() {
        let text = render_text(&[f()]);
        assert!(text.contains("crates/x/src/lib.rs:3:7: error[D1]"));
        assert!(text.contains("1 finding(s) in 1 file(s)"));
        assert!(render_text(&[]).contains("clean"));
    }

    #[test]
    fn json_escapes() {
        let json = render_json(&[f()]);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\t"));
        assert!(json.contains("\"count\":1"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn chains_render_in_text_and_json() {
        let text = render_text(&[chained()]);
        assert!(text
            .contains("    root core::pipeline::merge_partials at crates/core/src/pipeline.rs:10"));
        assert!(text.contains("    calls core::pipeline::tally at crates/core/src/pipeline.rs:14"));

        let json = render_json(&[chained()]);
        assert!(json.contains("\"chain\":[{\"func\":\"core::pipeline::merge_partials\""));
        assert!(json.contains("\"line\":14"));
        // Token-local findings carry no chain key at all.
        assert!(!render_json(&[f()]).contains("\"chain\""));
    }

    #[test]
    fn explain_covers_all_rules() {
        for rule in crate::config::RULE_IDS {
            assert!(explain(rule).is_some(), "{rule} must have an explanation");
        }
        assert!(explain("D99").is_none());
    }
}
