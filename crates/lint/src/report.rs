//! Rendering findings as human-readable text or machine-readable JSON,
//! and the `--explain` texts.

use crate::rules::Finding;
use std::fmt::Write as _;

/// Renders findings in `path:line:col: severity[rule] message` form, one
/// per line, with a trailing summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: {}[{}] {}",
            f.path,
            f.line,
            f.col,
            f.severity.label(),
            f.rule,
            f.message
        );
    }
    if findings.is_empty() {
        out.push_str("jcdn-lint: clean\n");
    } else {
        let files: std::collections::BTreeSet<&str> =
            findings.iter().map(|f| f.path.as_str()).collect();
        let _ = writeln!(
            out,
            "jcdn-lint: {} finding(s) in {} file(s)",
            findings.len(),
            files.len()
        );
    }
    out
}

/// Renders findings as a JSON document:
/// `{"findings": [{…}], "count": n}`. Hand-rolled (the linter has no
/// dependencies); strings are escaped per RFC 8259.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(f.severity.label()),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message)
        );
    }
    let _ = write!(out, "],\"count\":{}}}", findings.len());
    out.push('\n');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The long-form explanation for one rule id, or `None` for an unknown id.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D1" => {
            "D1 — wall-clock and ambient-randomness APIs\n\
             \n\
             Bans `SystemTime::now`, `Instant::now`, `thread_rng`, and\n\
             `RandomState`. The pipeline's contract is bit-identical output for\n\
             a given seed, across shard counts {1,2,8} and thread counts {1,4}.\n\
             Any read of the host clock or process-local randomness makes output\n\
             depend on when and where the binary ran. Simulated time (`SimTime`)\n\
             is the only clock; RNG streams are derived from the seed\n\
             (SplitMix64) and threaded through the call graph.\n\
             \n\
             Allowed surfaces (allowlist.toml): the fault-injection module\n\
             models real-world nondeterminism behind a seeded plan, and the\n\
             bench harness times wall-clock by definition.\n\
             \n\
             Fix: accept a `SimTime`/RNG parameter; derive per-worker streams\n\
             with SplitMix64. Suppress only with a written reason:\n\
             `// jcdn-lint: allow(D1) -- <why>`"
        }
        "D2" => {
            "D2 — hash-ordered iteration in output-order-sensitive modules\n\
             \n\
             Bans iterating a `HashMap`/`HashSet` (`.iter()`, `.keys()`,\n\
             `.values()`, `.into_iter()`, `.drain()`, `for … in`) in modules\n\
             whose iteration order reaches output: report writers\n\
             (core::characterize, core::report, the CLI commands), codec\n\
             framing (trace::codec), and partial-report merging\n\
             (core::pipeline). Hash order varies per process (SipHash keys) and\n\
             per std version, so one stray iteration silently breaks\n\
             shard-invariance and run-to-run reproducibility.\n\
             \n\
             Fix: use `BTreeMap`/`BTreeSet` (deterministic order, and usually\n\
             what the report wants anyway), or re-establish a total order by\n\
             calling a function named `sort_canonical` in the same function.\n\
             The check is file-local: it sees bindings and fields declared with\n\
             a hash type in the same file."
        }
        "D3" => {
            "D3 — `unwrap`/`expect`/`panic!`/`catch_unwind` in non-test library code\n\
             \n\
             Library crates return typed errors (`EncodeError`, intern-overflow\n\
             errors, …). A panic inside a shard worker aborts the whole\n\
             scatter-gather pipeline and loses the partial results; a typed\n\
             error propagates and reports. `catch_unwind` is flagged too: the\n\
             one sanctioned unwind boundary lives in jcdn-exec, where a caught\n\
             panic enters the quarantine/retry policy and is counted — an\n\
             ad-hoc boundary elsewhere swallows panics invisibly. Test modules\n\
             (`#[cfg(test)]`, `#[test]`) are exempt, as are the CLI binary and\n\
             bench harness (fail-fast is correct there).\n\
             \n\
             Fix: restructure so the invariant needs no panic (`total_cmp`\n\
             instead of `partial_cmp(..).expect`, `if let` instead of\n\
             `unwrap`), or return a typed error. For genuine can't-happen\n\
             invariants (e.g. an operator impl that cannot return `Result`),\n\
             suppress with a reason."
        }
        "D4" => {
            "D4 — lossy integer `as` casts in codec/interner code\n\
             \n\
             `as` silently truncates. In codec framing, a corrupt or\n\
             adversarial length prefix cast with `as usize` wraps into a small\n\
             number instead of failing, corrupting the decode at a distance;\n\
             in the interner, a truncated id aliases another string. Scope:\n\
             the trace crate (codec, interner, framing).\n\
             \n\
             Fix: `try_from` with a typed decode/encode error. For provably\n\
             lossless bit-twiddling (masked bytes, zigzag reinterpretation),\n\
             suppress with a reason stating the invariant."
        }
        "D5" => {
            "D5 — ad-hoc float accumulation in merge functions\n\
             \n\
             Mergeable statistics (the §4 partial reports, SimStats) must\n\
             combine through the jcdn-stats helpers (`Summary::merge`,\n\
             `Histogram::merge`, `Ecdf::merge`, `ExactQuantiles::merge`),\n\
             whose merges are exact on counts and numerically stable on\n\
             moments. A hand-written `self.mean += other.mean` in a `merge*`\n\
             function is wrong for weighted moments and breaks the\n\
             shard-count-invariance property tests. The check flags `+=` on\n\
             fields declared `f32`/`f64` in the same file, inside functions\n\
             whose name starts with `merge`, outside the stats crate.\n\
             \n\
             Fix: store a stats type (`Summary`, `Histogram`, …) instead of a\n\
             raw float and merge through it, or compute the float at\n\
             finalize-time from exactly-merged integer counts."
        }
        "D6" => {
            "D6 — missing doc comments on public items\n\
             \n\
             Every `pub` item (fn, struct, field, enum, trait, type, mod,\n\
             const, static) in the contract crates (core, trace, stats) must\n\
             carry a `///` doc comment. These crates implement the paper's\n\
             measured quantities; an undocumented public knob is how a future\n\
             change silently diverges from the paper's definitions. This is\n\
             the statically-checked twin of `#![warn(missing_docs)]`, and also\n\
             covers `pub` methods on private types.\n\
             \n\
             Fix: document the item (what it measures, and the paper section\n\
             if applicable)."
        }
        "S1" => {
            "S1 — malformed suppression directive\n\
             \n\
             Inline suppressions must name at least one known rule id and\n\
             carry a reason: `// jcdn-lint: allow(D3) -- sort key is total by\n\
             construction`. A suppression without a reason is itself an error:\n\
             the reason is the review artifact that keeps exemptions honest.\n\
             A directive on its own line suppresses the next line; a trailing\n\
             directive suppresses its own line."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn f() -> Finding {
        Finding {
            rule: "D1",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "a \"quoted\" message\twith control".to_string(),
        }
    }

    #[test]
    fn text_format() {
        let text = render_text(&[f()]);
        assert!(text.contains("crates/x/src/lib.rs:3:7: error[D1]"));
        assert!(text.contains("1 finding(s) in 1 file(s)"));
        assert!(render_text(&[]).contains("clean"));
    }

    #[test]
    fn json_escapes() {
        let json = render_json(&[f()]);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\t"));
        assert!(json.contains("\"count\":1"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn explain_covers_all_rules() {
        for rule in crate::config::RULE_IDS {
            assert!(explain(rule).is_some(), "{rule} must have an explanation");
        }
        assert!(explain("D9").is_none());
    }
}
