//! `jcdn-lint` — CLI for the workspace determinism & safety linter.
//!
//! ```text
//! jcdn-lint --workspace [--format text|json] [--allowlist FILE]
//! jcdn-lint [--all-scopes] path/to/file.rs dir/ …
//! jcdn-lint --explain D3
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use jcdn_lint::{config, report, Config};

const USAGE: &str = "\
jcdn-lint — workspace determinism & safety linter

USAGE:
    jcdn-lint --workspace [OPTIONS]
    jcdn-lint [OPTIONS] <paths>...
    jcdn-lint --explain <rule>

OPTIONS:
    --workspace          lint every workspace source file (crates/*/{src,tests,benches},
                         src/, tests/, examples/; vendor/ and fixtures/ excluded)
    --root <dir>         workspace root (default: nearest ancestor with [workspace])
    --format <fmt>       text (default) or json
    --allowlist <file>   allowlist file (default: <root>/allowlist.toml if present)
    --all-scopes         apply every rule to every file (used by the fixture corpus)
    --explain <rule>     print the rationale and fix guidance for a rule id
    -h, --help           this help
";

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    format: String,
    allowlist: Option<PathBuf>,
    all_scopes: bool,
    explain: Option<String>,
    paths: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        format: "text".to_string(),
        allowlist: None,
        all_scopes: false,
        explain: None,
        paths: Vec::new(),
    };
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--workspace" => args.workspace = true,
            "--all-scopes" => args.all_scopes = true,
            "--root" => args.root = Some(PathBuf::from(value(&mut i)?)),
            "--format" => args.format = value(&mut i)?,
            "--allowlist" => args.allowlist = Some(PathBuf::from(value(&mut i)?)),
            "--explain" => args.explain = Some(value(&mut i)?),
            "-h" | "--help" => return Err(String::new()),
            _ if arg.starts_with('-') => return Err(format!("unknown option {arg}")),
            _ => args.paths.push(PathBuf::from(arg)),
        }
        i += 1;
    }
    if args.format != "text" && args.format != "json" {
        return Err(format!(
            "--format must be text or json, got {}",
            args.format
        ));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<bool, String> {
    if let Some(rule) = &args.explain {
        let Some(text) = report::explain(rule) else {
            return Err(format!(
                "unknown rule id `{rule}` (known: {})",
                config::RULE_IDS.join(", ")
            ));
        };
        println!("{text}");
        return Ok(true);
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => jcdn_lint::find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone()),
    };

    let mut cfg = if args.all_scopes {
        Config::all_scopes()
    } else {
        Config::workspace_default()
    };
    let allowlist_path = args.allowlist.clone().or_else(|| {
        let default = root.join("allowlist.toml");
        default.is_file().then_some(default)
    });
    if let Some(path) = allowlist_path {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let parsed =
            jcdn_lint::parse_allowlist(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        cfg.extend_allow(parsed);
    }

    let findings = if args.workspace {
        jcdn_lint::lint_workspace(&root, &cfg)?
    } else if args.paths.is_empty() {
        return Err("no paths given (did you mean --workspace?)".to_string());
    } else {
        let mut files = Vec::new();
        for p in &args.paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if abs.is_dir() {
                collect_dir(&abs, &mut files)?;
            } else {
                files.push(abs);
            }
        }
        files.sort();
        jcdn_lint::lint_files(&root, &files, &cfg)?
    };

    let rendered = if args.format == "json" {
        report::render_json(&findings)
    } else {
        report::render_text(&findings)
    };
    print!("{rendered}");
    Ok(findings.is_empty())
}

fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("error listing {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_dir(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("jcdn-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("jcdn-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
