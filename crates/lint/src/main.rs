//! `jcdn-lint` — CLI for the workspace determinism & safety linter.
//!
//! ```text
//! jcdn-lint --workspace [--format text|json] [--allowlist FILE] [--threads N]
//! jcdn-lint --workspace --baseline lint-baseline.json
//! jcdn-lint --workspace --write-baseline lint-baseline.json
//! jcdn-lint [--all-scopes] path/to/file.rs dir/ …
//! jcdn-lint --explain D7
//! ```
//!
//! Exit codes: 0 clean (or all findings baselined), 1 fresh findings,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use jcdn_lint::{config, report, Baseline, Config};

const USAGE: &str = "\
jcdn-lint — workspace determinism & safety linter

USAGE:
    jcdn-lint --workspace [OPTIONS]
    jcdn-lint [OPTIONS] <paths>...
    jcdn-lint --explain <rule>

OPTIONS:
    --workspace          lint every workspace source file (crates/*/{src,tests,benches},
                         src/, tests/, examples/; vendor/ and fixtures/ excluded)
    --root <dir>         workspace root (default: nearest ancestor with [workspace])
    --format <fmt>       text (default) or json
    --allowlist <file>   allowlist file (default: <root>/allowlist.toml if present)
    --threads <n>        stage-1 parse/lint fan-out on the jcdn-exec pool (default 1)
    --baseline <file>    diff findings against a committed baseline: exit 1 only on
                         findings NOT in the baseline; warn on stale entries
                         (default: <root>/lint-baseline.json if present; pass
                         --baseline none to ignore it)
    --write-baseline <file>  accept the current findings as the new baseline
    --all-scopes         apply every rule to every file (used by the fixture corpus)
    --explain <rule>     print the rationale and fix guidance for a rule id
    -h, --help           this help
";

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    format: String,
    allowlist: Option<PathBuf>,
    threads: usize,
    baseline: Option<String>,
    write_baseline: Option<PathBuf>,
    all_scopes: bool,
    explain: Option<String>,
    paths: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        format: "text".to_string(),
        allowlist: None,
        threads: 1,
        baseline: None,
        write_baseline: None,
        all_scopes: false,
        explain: None,
        paths: Vec::new(),
    };
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--workspace" => args.workspace = true,
            "--all-scopes" => args.all_scopes = true,
            "--root" => args.root = Some(PathBuf::from(value(&mut i)?)),
            "--format" => args.format = value(&mut i)?,
            "--allowlist" => args.allowlist = Some(PathBuf::from(value(&mut i)?)),
            "--threads" => {
                args.threads = value(&mut i)?
                    .parse::<usize>()
                    .map_err(|_| "--threads must be a positive integer".to_string())?
                    .max(1)
            }
            "--baseline" => args.baseline = Some(value(&mut i)?),
            "--write-baseline" => args.write_baseline = Some(PathBuf::from(value(&mut i)?)),
            "--explain" => args.explain = Some(value(&mut i)?),
            "-h" | "--help" => return Err(String::new()),
            _ if arg.starts_with('-') => return Err(format!("unknown option {arg}")),
            _ => args.paths.push(PathBuf::from(arg)),
        }
        i += 1;
    }
    if args.format != "text" && args.format != "json" {
        return Err(format!(
            "--format must be text or json, got {}",
            args.format
        ));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<bool, String> {
    if let Some(rule) = &args.explain {
        let Some(text) = report::explain(rule) else {
            return Err(format!(
                "unknown rule id `{rule}` (known: {})",
                config::RULE_IDS.join(", ")
            ));
        };
        println!("{text}");
        return Ok(true);
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match &args.root {
        // Absolutize so path-relativization (and with it the path-scoped
        // rules) works when --root is given relative to the cwd.
        Some(r) if r.is_absolute() => r.clone(),
        Some(r) => cwd.join(r),
        None => jcdn_lint::find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone()),
    };

    let mut cfg = if args.all_scopes {
        Config::all_scopes()
    } else {
        Config::workspace_default()
    };
    let allowlist_path = args.allowlist.clone().or_else(|| {
        let default = root.join("allowlist.toml");
        default.is_file().then_some(default)
    });
    if let Some(path) = allowlist_path {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let parsed =
            jcdn_lint::parse_allowlist(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        cfg.extend_allow(parsed);
    }

    let findings = if args.workspace {
        jcdn_lint::lint_workspace_threaded(&root, &cfg, args.threads)?
    } else if args.paths.is_empty() {
        return Err("no paths given (did you mean --workspace?)".to_string());
    } else {
        let mut files = Vec::new();
        for p in &args.paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                cwd.join(p)
            };
            if abs.is_dir() {
                collect_dir(&abs, &mut files)?;
            } else {
                files.push(abs);
            }
        }
        files.sort();
        jcdn_lint::lint_files_threaded(&root, &files, &cfg, args.threads)?
    };

    if let Some(out_path) = &args.write_baseline {
        let accepted = Baseline::from_findings(&findings);
        std::fs::write(out_path, accepted.render())
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
        eprintln!(
            "jcdn-lint: wrote baseline with {} entr{} to {}",
            accepted.len(),
            if accepted.len() == 1 { "y" } else { "ies" },
            out_path.display()
        );
    }

    // Baseline: explicit `--baseline FILE` (or `none` to disable), else a
    // committed <root>/lint-baseline.json when present and linting the
    // workspace (ad-hoc path runs are typically fixture corpora where the
    // workspace baseline would be meaningless).
    let baseline_path: Option<PathBuf> = match args.baseline.as_deref() {
        Some("none") => None,
        Some(p) => Some(PathBuf::from(p)),
        None if args.workspace => {
            let default = root.join("lint-baseline.json");
            default.is_file().then_some(default)
        }
        None => None,
    };
    let baseline = match &baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Baseline::default(),
    };
    let diff = baseline.diff(findings);

    let rendered = if args.format == "json" {
        // JSON keeps every finding (fresh first), with baseline metadata.
        let mut all = diff.fresh.clone();
        all.extend(diff.baselined.iter().cloned());
        let mut doc = report::render_json(&all);
        // Splice the baseline summary into the top-level object.
        if doc.ends_with("}\n") {
            doc.truncate(doc.len() - 2);
            use std::fmt::Write as _;
            let _ = writeln!(
                doc,
                ",\"fresh\":{},\"baselined\":{},\"stale_baseline_entries\":{}}}",
                diff.fresh.len(),
                diff.baselined.len(),
                diff.stale.len()
            );
        }
        doc
    } else {
        let mut out = report::render_text(&diff.fresh);
        if !diff.baselined.is_empty() {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "jcdn-lint: {} finding(s) accepted by the baseline",
                diff.baselined.len()
            );
        }
        out
    };
    print!("{rendered}");
    for (rule, path, key, n) in &diff.stale {
        eprintln!(
            "jcdn-lint: warning: stale baseline entry {rule} {path} ({n}x): \
             {key} — the finding is gone; delete the entry"
        );
    }
    Ok(diff.fresh.is_empty())
}

fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("error listing {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_dir(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("jcdn-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("jcdn-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
