//! Workspace call graph over the parsed item summaries.
//!
//! Nodes are function items; edges are resolved call sites. Resolution is
//! deliberately conservative — the flow rules prefer a missed edge (a
//! false negative) over a wrong edge (a false-positive taint chain
//! blaming the wrong function):
//!
//! * A path call `Type::method(…)` resolves to the method on that impl
//!   type (`Self::` uses the caller's own impl type); `module::f(…)`
//!   resolves to a function in that module, else to a unique global match.
//! * A bare call `f(…)` prefers a same-file definition, then a unique
//!   workspace-wide one. Two candidates in different files → no edge.
//! * A method call `recv.m(…)` resolves through the receiver's recovered
//!   type when the parser has one; otherwise only when exactly one impl
//!   in the whole workspace defines `m`. Ambiguity drops the edge.
//!
//! Everything is keyed through `BTreeMap`s and the node list is sorted by
//! `(path, line)` before any index is built, so graph construction is
//! deterministic and independent of the order files were parsed in —
//! which the property suite asserts by shuffling inputs.

use crate::parser::{CallKind, FnItem, ParsedFile};
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// One graph node: a function item plus its owning file.
#[derive(Clone, Debug)]
pub struct Node {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// The parsed function item.
    pub item: FnItem,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Nodes sorted by `(path, line)`.
    pub nodes: Vec<Node>,
    /// Outgoing edges per node, in call-site order.
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Builds the graph from per-file summaries. Input order is
    /// irrelevant: files are sorted by path before indexing.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut order: Vec<&ParsedFile> = files.iter().collect();
        order.sort_by(|a, b| a.path.cmp(&b.path));

        let mut nodes: Vec<Node> = Vec::new();
        for f in &order {
            for item in &f.fns {
                nodes.push(Node {
                    path: f.path.clone(),
                    item: item.clone(),
                });
            }
        }
        // Files are path-sorted and items are in source order already, but
        // re-sort defensively so the invariant is local to this function.
        nodes.sort_by(|a, b| (a.path.as_str(), a.item.line).cmp(&(b.path.as_str(), b.item.line)));

        // Indexes. `by_simple` maps a function's simple name to every
        // definition; `by_type_method` maps `(impl type, name)`;
        // `by_module` maps the last module segment to definitions of a
        // free function there.
        let mut by_simple: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_file: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut modules: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        for f in &order {
            modules.insert(f.path.as_str(), f.module.clone());
        }
        for (i, n) in nodes.iter().enumerate() {
            by_simple.entry(&n.item.name).or_default().push(i);
            by_file.entry((&n.path, &n.item.name)).or_default().push(i);
            if let Some(ty) = &n.item.impl_type {
                by_type_method
                    .entry((ty.as_str(), n.item.name.as_str()))
                    .or_default()
                    .push(i);
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            for call in &n.item.calls {
                let target = match &call.kind {
                    CallKind::Bare => resolve_bare(&n.path, &call.name, &by_file, &by_simple),
                    CallKind::Path { qualifier } => resolve_path(
                        n,
                        qualifier,
                        &call.name,
                        &by_type_method,
                        &by_simple,
                        &nodes,
                        &modules,
                    ),
                    CallKind::Method { recv } => {
                        resolve_method(n, recv, &call.name, &by_type_method)
                    }
                };
                if let Some(callee) = target {
                    if callee != i {
                        edges[i].push(Edge {
                            callee,
                            line: call.line,
                            col: call.col,
                        });
                    }
                }
            }
        }

        CallGraph { nodes, edges }
    }

    /// Node indexes in `(path, line)` order (i.e. `0..nodes.len()`),
    /// provided for symmetry with filtered traversals.
    pub fn node_ids(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.nodes.len()
    }
}

fn unique(candidates: Option<&Vec<usize>>) -> Option<usize> {
    match candidates {
        Some(c) if c.len() == 1 => Some(c[0]),
        _ => None,
    }
}

fn resolve_bare(
    caller_path: &str,
    name: &str,
    by_file: &BTreeMap<(&str, &str), Vec<usize>>,
    by_simple: &BTreeMap<&str, Vec<usize>>,
) -> Option<usize> {
    // Same-file definitions win (shadowing); a same-file ambiguity (two
    // impls with the same method name) is still ambiguous.
    if let Some(local) = by_file.get(&(caller_path, name)) {
        if local.len() == 1 {
            return Some(local[0]);
        }
        return None;
    }
    unique(by_simple.get(name))
}

fn resolve_path(
    caller: &Node,
    qualifier: &[String],
    name: &str,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    by_simple: &BTreeMap<&str, Vec<usize>>,
    nodes: &[Node],
    modules: &BTreeMap<&str, Vec<String>>,
) -> Option<usize> {
    let last = qualifier.last().map(String::as_str)?;
    // `Self::helper()` — the caller's own impl type.
    let type_name = if last == "Self" {
        caller.item.impl_type.as_deref()?
    } else {
        last
    };
    if let Some(found) = unique(by_type_method.get(&(type_name, name))) {
        return Some(found);
    }
    // `module::f()` — free function in a module whose path ends with the
    // qualifier's last segment.
    if let Some(candidates) = by_simple.get(name) {
        let in_module: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| {
                nodes[i].item.impl_type.is_none()
                    && modules
                        .get(nodes[i].path.as_str())
                        .is_some_and(|m| m.last().map(String::as_str) == Some(last))
            })
            .collect();
        if in_module.len() == 1 {
            return Some(in_module[0]);
        }
        // `crate::f()` / `super::f()` carry no module info — fall back to
        // a unique global match for those pseudo-qualifiers only.
        if (last == "crate" || last == "super" || last == "self") && candidates.len() == 1 {
            return Some(candidates[0]);
        }
    }
    None
}

fn resolve_method(
    caller: &Node,
    recv: &[String],
    name: &str,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Option<usize> {
    // Receiver typing: a single-segment receiver can use the caller's
    // recovered binding type directly (`self.m()`, `machine.m()`).
    if let [root] = recv {
        if let Some(ty_text) = caller.item.bindings.get(root) {
            // The binding text may be decorated (`& mut Machine`,
            // `Vec < Edge >`); try each identifier-looking word as the
            // candidate type, preferring the last (innermost) match.
            let mut found = None;
            for word in ty_text.split_whitespace() {
                if word.chars().next().is_some_and(char::is_uppercase) {
                    if let Some(hit) = unique(by_type_method.get(&(word, name))) {
                        found = Some(hit);
                    }
                }
            }
            if found.is_some() {
                return found;
            }
        }
    }
    // Untyped receiver: resolve only when exactly one impl anywhere in
    // the workspace defines this method name.
    let mut hits: Vec<usize> = Vec::new();
    for (&(_, m), idxs) in by_type_method.iter() {
        if m == name {
            hits.extend_from_slice(idxs);
        }
    }
    if hits.len() == 1 {
        return Some(hits[0]);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn build(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, &lex(s))).collect();
        CallGraph::build(&parsed)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.item.name == name)
            .unwrap_or_else(|| panic!("node {name} not found"))
    }

    fn callees(g: &CallGraph, name: &str) -> Vec<String> {
        g.edges[node(g, name)]
            .iter()
            .map(|e| g.nodes[e.callee].item.name.clone())
            .collect()
    }

    #[test]
    fn bare_calls_resolve_same_file_then_global() {
        let g = build(&[
            (
                "crates/a/src/one.rs",
                "fn top() { local(); far(); }\nfn local() {}",
            ),
            ("crates/b/src/two.rs", "fn far() {}"),
        ]);
        assert_eq!(callees(&g, "top"), vec!["local", "far"]);
    }

    #[test]
    fn ambiguous_bare_calls_drop_the_edge() {
        let g = build(&[
            ("crates/a/src/one.rs", "fn top() { dup(); }"),
            ("crates/b/src/two.rs", "fn dup() {}"),
            ("crates/c/src/three.rs", "fn dup() {}"),
        ]);
        assert!(callees(&g, "top").is_empty());
    }

    #[test]
    fn typed_method_and_self_path_resolve() {
        let g = build(&[(
            "crates/a/src/one.rs",
            "struct M;\nimpl M {\n fn run(&self) { self.step(); Self::cold(); }\n fn step(&self) {}\n fn cold() {}\n}",
        )]);
        assert_eq!(callees(&g, "run"), vec!["step", "cold"]);
    }

    #[test]
    fn untyped_method_needs_workspace_unique_name() {
        let g = build(&[
            (
                "crates/a/src/one.rs",
                "fn top(x: Mystery) { x.poke(); x.shared(); }",
            ),
            (
                "crates/b/src/two.rs",
                "struct A;\nimpl A { fn poke(&self) {} fn shared(&self) {} }",
            ),
            (
                "crates/c/src/three.rs",
                "struct B;\nimpl B { fn shared(&self) {} }",
            ),
        ]);
        // `poke` is defined on exactly one impl → edge; `shared` on two → dropped.
        assert_eq!(callees(&g, "top"), vec!["poke"]);
    }

    #[test]
    fn module_qualified_path_resolves() {
        let g = build(&[
            ("crates/a/src/one.rs", "fn top() { codec::decode(); }"),
            ("crates/trace/src/codec.rs", "fn decode() {}"),
            ("crates/other/src/noise.rs", "fn unrelated() {}"),
        ]);
        assert_eq!(callees(&g, "top"), vec!["decode"]);
    }

    #[test]
    fn construction_is_order_independent() {
        let files = [
            ("crates/a/src/one.rs", "fn top() { helper(); }"),
            ("crates/b/src/two.rs", "fn helper() { leaf(); }"),
            ("crates/c/src/three.rs", "fn leaf() {}"),
        ];
        let fwd = build(&files);
        let mut rev_files = files;
        rev_files.reverse();
        let rev = build(&rev_files);
        let shape = |g: &CallGraph| {
            g.nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    (
                        n.path.clone(),
                        n.item.qual.clone(),
                        g.edges[i].iter().map(|e| e.callee).collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&fwd), shape(&rev));
    }
}
