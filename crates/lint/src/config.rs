//! Rule scoping and the `allowlist.toml` exemption file.
//!
//! Two path mechanisms compose:
//!
//! * **Scopes** (inclusion) — some rules only make sense in specific
//!   modules (D2 in output-order-sensitive code, D4 in the trace codec).
//!   Scopes are part of the linter's contract with this workspace and are
//!   defined here, in code.
//! * **Allowlist** (exclusion) — `allowlist.toml` at the workspace root
//!   exempts whole paths from specific rules (e.g. the fault-injection
//!   module legitimately models nondeterminism). The file is a tiny TOML
//!   subset parsed by [`parse_allowlist`]; no TOML dependency.

use std::collections::BTreeMap;

/// The rule ids the engine knows, in report order.
pub const RULE_IDS: [&str; 11] = [
    "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10", "S1",
];

/// Linter configuration: per-rule scopes and allowlists.
#[derive(Clone, Debug)]
pub struct Config {
    /// `rule id → include patterns`. A rule missing from the map applies
    /// to every file.
    pub scopes: BTreeMap<String, Vec<String>>,
    /// `rule id → exempt patterns` (workspace-relative paths or globs).
    pub allow: BTreeMap<String, Vec<String>>,
}

impl Default for Config {
    fn default() -> Self {
        Config::workspace_default()
    }
}

impl Config {
    /// The scopes this workspace's determinism contract prescribes.
    pub fn workspace_default() -> Self {
        let mut scopes = BTreeMap::new();
        // D1 (wall clock / ambient randomness): everywhere.
        // D2: output-order-sensitive modules — anything that writes
        // reports, frames bytes, or merges partials in a fixed order.
        scopes.insert(
            "D2".to_string(),
            vec![
                "crates/core/src/characterize.rs".to_string(),
                "crates/core/src/pipeline.rs".to_string(),
                "crates/core/src/report.rs".to_string(),
                "crates/trace/src/codec.rs".to_string(),
                "crates/cli/src/**".to_string(),
            ],
        );
        // D3: library crates only (the CLI binary and bench harness may
        // fail fast; libraries must return typed errors).
        scopes.insert(
            "D3".to_string(),
            vec![
                "crates/core/src/**".to_string(),
                "crates/trace/src/**".to_string(),
                "crates/stats/src/**".to_string(),
                "crates/json/src/**".to_string(),
                "crates/ngram/src/**".to_string(),
                "crates/signal/src/**".to_string(),
                "crates/url/src/**".to_string(),
                "crates/ua/src/**".to_string(),
                "crates/workload/src/**".to_string(),
                "crates/prefetch/src/**".to_string(),
                "crates/cdnsim/src/**".to_string(),
                "crates/exec/src/**".to_string(),
                "crates/chaos/src/**".to_string(),
                "crates/lint/src/**".to_string(),
                "crates/obs/src/**".to_string(),
                "src/**".to_string(),
            ],
        );
        // D4: the codec/interner surface, where a silent narrowing cast
        // corrupts frames instead of erroring.
        scopes.insert("D4".to_string(), vec!["crates/trace/src/**".to_string()]);
        // D5: mergeable-statistics carriers outside the stats crate (the
        // stats crate itself *is* the merge-helper implementation).
        scopes.insert(
            "D5".to_string(),
            vec![
                "crates/core/src/**".to_string(),
                "crates/cdnsim/src/**".to_string(),
                "crates/trace/src/**".to_string(),
            ],
        );
        // D6: the crates whose public API the paper-reproduction contract
        // documents (obs joins them: manifests are a documented artifact;
        // the eviction-policy and hierarchy modules joined when their
        // types became part of the CLI's `--cache-*` surface).
        scopes.insert(
            "D6".to_string(),
            vec![
                "crates/core/src/**".to_string(),
                "crates/trace/src/**".to_string(),
                "crates/stats/src/**".to_string(),
                "crates/obs/src/**".to_string(),
                "crates/cdnsim/src/policy.rs".to_string(),
                "crates/cdnsim/src/hierarchy.rs".to_string(),
            ],
        );

        // D7 (cross-file determinism taint): everywhere — the rule's own
        // source gating reuses the D1 allowlist and D2 scope, so no scope
        // is needed here.
        // D8: the epoch-lockstep contract is cdnsim's.
        scopes.insert("D8".to_string(), vec!["crates/cdnsim/src/**".to_string()]);
        // D9: lengths read off the wire exist only in the codec surface.
        scopes.insert(
            "D9".to_string(),
            vec![
                "crates/trace/src/codec.rs".to_string(),
                "crates/trace/src/compat.rs".to_string(),
            ],
        );
        // D10: version dispatches live wherever the trace crate decodes.
        scopes.insert("D10".to_string(), vec!["crates/trace/src/**".to_string()]);

        // Path exemptions live in `allowlist.toml` at the workspace root
        // (loaded by the CLI and merged via [`Config::extend_allow`]); the
        // built-in config ships none, so every exemption is visible in one
        // reviewable file.
        Config {
            scopes,
            allow: BTreeMap::new(),
        }
    }

    /// A config whose rules all apply to every path (used by the fixture
    /// corpus, which lives outside the production module layout).
    pub fn all_scopes() -> Self {
        let mut cfg = Config::workspace_default();
        cfg.scopes.clear();
        cfg.allow.clear();
        cfg
    }

    /// Whether `rule` applies to `path` at all (scope ∧ ¬allowlist).
    pub fn applies(&self, rule: &str, path: &str) -> bool {
        if let Some(patterns) = self.scopes.get(rule) {
            if !patterns.iter().any(|p| path_matches(p, path)) {
                return false;
            }
        }
        if let Some(patterns) = self.allow.get(rule) {
            if patterns.iter().any(|p| path_matches(p, path)) {
                return false;
            }
        }
        true
    }

    /// Merges allowlist entries parsed from `allowlist.toml` into the
    /// config (appending to any built-in entries).
    pub fn extend_allow(&mut self, parsed: BTreeMap<String, Vec<String>>) {
        for (rule, mut paths) in parsed {
            self.allow.entry(rule).or_default().append(&mut paths);
        }
    }
}

/// Matches `path` against `pattern`. Three forms:
///
/// * a pattern ending in `/` is a directory prefix,
/// * a pattern containing `*` is a glob (`*` stops at `/`, `**` crosses),
/// * anything else matches exactly.
pub fn path_matches(pattern: &str, path: &str) -> bool {
    if let Some(prefix) = pattern.strip_suffix('/') {
        return path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'));
    }
    if pattern.contains('*') {
        return glob_match(pattern.as_bytes(), path.as_bytes());
    }
    pattern == path
}

fn glob_match(pat: &[u8], path: &[u8]) -> bool {
    match pat {
        [] => path.is_empty(),
        [b'*', b'*', rest @ ..] => {
            // `**` crosses separators; also absorb a following `/` so
            // `a/**` matches `a` itself… not needed here: match greedily.
            let rest = rest.strip_prefix(b"/").unwrap_or(rest);
            (0..=path.len()).any(|i| glob_match(rest, &path[i..]))
        }
        [b'*', rest @ ..] => (0..=path.len())
            .take_while(|&i| i == 0 || path[i - 1] != b'/')
            .any(|i| glob_match(rest, &path[i..])),
        [c, rest @ ..] => path.first() == Some(c) && glob_match(rest, &path[1..]),
    }
}

/// Parses the `allowlist.toml` subset:
///
/// ```toml
/// # comment
/// [rules.D1]
/// allow = [
///     "crates/cdnsim/src/fault.rs",
///     "crates/bench/**",
/// ]
/// ```
///
/// Returns `rule id → patterns`, or a message naming the offending line.
/// Duplicate `[rules.X]` sections and duplicate patterns within a rule
/// are rejected: a repeated key would silently shadow (or pad) the
/// earlier entry, hiding dead exemptions from review.
pub fn parse_allowlist(text: &str) -> Result<BTreeMap<String, Vec<String>>, String> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut current: Option<String> = None;
    let mut in_array = false;
    let push = |out: &mut BTreeMap<String, Vec<String>>,
                rule: &str,
                pattern: String,
                lineno: usize|
     -> Result<(), String> {
        let entry = out.entry(rule.to_string()).or_default();
        if entry.contains(&pattern) {
            return Err(format!(
                "line {lineno}: duplicate pattern `{pattern}` for rule {rule} \
                 (remove the repeat — duplicates hide dead exemptions)"
            ));
        }
        entry.push(pattern);
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if in_array {
            for part in line.split(',') {
                let part = part.trim();
                if part == "]" || part.is_empty() {
                    continue;
                }
                let Some(rule) = current.as_ref() else {
                    return Err(format!("line {lineno}: array outside a [rules.*] section"));
                };
                let pattern = part
                    .trim_end_matches(']')
                    .trim()
                    .trim_matches('"')
                    .to_string();
                if !pattern.is_empty() {
                    push(&mut out, rule, pattern, lineno)?;
                }
            }
            if line.contains(']') && !line.contains('[') {
                in_array = false;
            }
            continue;
        }
        if let Some(section) = line
            .strip_prefix("[rules.")
            .and_then(|s| s.strip_suffix(']'))
        {
            if !RULE_IDS.contains(&section) {
                return Err(format!("line {lineno}: unknown rule id `{section}`"));
            }
            if out.contains_key(section) {
                return Err(format!(
                    "line {lineno}: duplicate section `[rules.{section}]` \
                     (merge it into the first one — the repeat would shadow it)"
                ));
            }
            // Reserve the key so a later duplicate section is caught even
            // when this one ends up with no patterns.
            out.entry(section.to_string()).or_default();
            current = Some(section.to_string());
            continue;
        }
        if let Some(value) = line.strip_prefix("allow").map(|s| s.trim_start()) {
            let Some(value) = value.strip_prefix('=') else {
                return Err(format!("line {lineno}: expected `allow = [...]`"));
            };
            let Some(rule) = current.clone() else {
                return Err(format!(
                    "line {lineno}: `allow` outside a [rules.*] section"
                ));
            };
            let value = value.trim();
            if let Some(inner) = value.strip_prefix('[') {
                if let Some(inner) = inner.strip_suffix(']') {
                    // Single-line array.
                    for part in inner.split(',') {
                        let pattern = part.trim().trim_matches('"').to_string();
                        if !pattern.is_empty() {
                            push(&mut out, &rule, pattern, lineno)?;
                        }
                    }
                } else {
                    current = Some(rule);
                    in_array = true;
                }
                continue;
            }
            return Err(format!("line {lineno}: `allow` must be an array"));
        }
        return Err(format!("line {lineno}: unrecognized directive `{line}`"));
    }
    out.retain(|_, v| !v.is_empty());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_and_prefix_matching() {
        assert!(path_matches(
            "crates/trace/src/**",
            "crates/trace/src/codec.rs"
        ));
        assert!(path_matches(
            "crates/trace/src/**",
            "crates/trace/src/sub/deep.rs"
        ));
        assert!(!path_matches(
            "crates/trace/src/**",
            "crates/core/src/lib.rs"
        ));
        assert!(path_matches(
            "crates/cli/src/*.rs",
            "crates/cli/src/main.rs"
        ));
        assert!(!path_matches(
            "crates/cli/src/*.rs",
            "crates/cli/src/commands/mod.rs"
        ));
        assert!(path_matches("crates/bench/", "crates/bench/src/lib.rs"));
        assert!(path_matches("a/b.rs", "a/b.rs"));
        assert!(!path_matches("a/b.rs", "a/b.rs.bak"));
    }

    #[test]
    fn allowlist_parses_multiline_and_inline() {
        let parsed = parse_allowlist(
            "# comment\n[rules.D1]\nallow = [\n  \"crates/x/**\",\n  \"crates/y/a.rs\",\n]\n\n[rules.D3]\nallow = [\"z.rs\"]\n",
        )
        .expect("parses");
        assert_eq!(parsed["D1"], vec!["crates/x/**", "crates/y/a.rs"]);
        assert_eq!(parsed["D3"], vec!["z.rs"]);
    }

    #[test]
    fn allowlist_rejects_unknown_rule() {
        assert!(parse_allowlist("[rules.D99]\nallow = [\"x\"]\n").is_err());
        // D7–D10 joined the rule set and are accepted.
        assert!(parse_allowlist("[rules.D9]\nallow = [\"x\"]\n").is_ok());
    }

    #[test]
    fn allowlist_rejects_duplicate_sections_and_patterns() {
        let err =
            parse_allowlist("[rules.D1]\nallow = [\"a.rs\"]\n[rules.D1]\nallow = [\"b.rs\"]\n")
                .expect_err("duplicate section must error");
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("duplicate section"), "{err}");

        let err = parse_allowlist("[rules.D1]\nallow = [\n  \"a.rs\",\n  \"a.rs\",\n]\n")
            .expect_err("duplicate pattern must error");
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("duplicate pattern"), "{err}");

        // The same pattern under two *different* rules is fine.
        assert!(parse_allowlist(
            "[rules.D1]\nallow = [\"a.rs\"]\n[rules.D3]\nallow = [\"a.rs\"]\n"
        )
        .is_ok());
    }

    #[test]
    fn scope_gating() {
        let cfg = Config::workspace_default();
        assert!(cfg.applies("D4", "crates/trace/src/codec.rs"));
        assert!(!cfg.applies("D4", "crates/core/src/report.rs"));
        assert!(cfg.applies("D6", "crates/cdnsim/src/policy.rs"));
        assert!(cfg.applies("D6", "crates/cdnsim/src/hierarchy.rs"));
        assert!(!cfg.applies("D6", "crates/cdnsim/src/sim.rs"));
        assert!(cfg.applies("D1", "crates/core/src/report.rs"));
        assert!(cfg.applies("D1", "crates/cdnsim/src/fault.rs"));

        let mut allow = BTreeMap::new();
        allow.insert(
            "D1".to_string(),
            vec!["crates/cdnsim/src/fault.rs".to_string()],
        );
        let mut cfg = cfg;
        cfg.extend_allow(allow);
        assert!(!cfg.applies("D1", "crates/cdnsim/src/fault.rs"));
        assert!(cfg.applies("D1", "crates/core/src/report.rs"));
    }
}
