// Fixture: malformed suppressions. Each directive is itself an S1 error,
// and a reasonless directive does not suppress the finding it precedes.

fn f(x: Option<u64>) -> u64 {
    // jcdn-lint: allow(D3)
    x.unwrap() // line 6: D3 still fires; line 5 is S1 (missing reason)
}

fn g(x: Option<u64>) -> u64 {
    // jcdn-lint: allow(D99) -- no such rule
    x.unwrap() // line 11: D3 still fires; line 10 is S1 (unknown rule id)
}
