// Fixture: public items without doc comments. The documented item and the
// pub(crate) item must NOT be flagged.

/// Documented: not flagged.
pub struct Documented {
    /// Documented field: not flagged.
    pub ok: u64,
    pub missing: u64, // line 8: D6 (undocumented pub field)
}

pub fn undocumented() {} // line 11: D6

pub(crate) fn crate_visible() {} // not flagged: not part of the public API

/// Documented trait.
pub trait Named {
    /// Documented method: not flagged.
    fn name(&self) -> &str;
}

pub const LIMIT: u64 = 8; // line 21: D6
