//! D9 corpus: unchecked arithmetic on lengths read off the wire.
//! Tainted `len` comes from `get_varint`; the marked lines overflow-wrap.

fn decode_header(cur: &mut Cursor<'_>) -> Result<(), DecodeError> {
    let len = cur.get_varint()?;
    let total = len + 8; // line 6: D9 (+)
    let scaled = len * 4; // line 7: D9 (*)
    let shifted = len << 2; // line 8: D9 (<<)
    let safe = len.checked_add(8); // sanctioned: checked_*
    let capped = len.min(1024) + 8; // sanctioned: clamped first
    consume(total, scaled, shifted, safe, capped);
    Ok(())
}

fn encode_side(records: u64) {
    // Same binding name, but taint is function-local: `len` here never
    // touched a decode getter, so the arithmetic below is fine.
    let len = records;
    let total = len + 8;
    emit(total);
}
