//! D10 corpus: codec-version dispatches that forget part of v1–v4.

fn dispatch(version: u16) -> u32 {
    match version {
        // line 4: D10 — v4 silently rides the wildcard arm.
        1 | 2 => 10,
        3 => 20,
        _ => 0,
    }
}

fn covered(version: u16) -> u32 {
    match version {
        1 | 2 => 10,
        3 => 20,
        4 => 30,
        _ => 0,
    }
}

fn symbolic(version: u16) -> bool {
    match version {
        MIN_VERSION..=VERSION => true,
        _ => false,
    }
}
