// Fixture: panicking calls in non-test library code, plus the test-module
// exemption (the #[cfg(test)] block at the bottom must NOT be flagged).

fn parse(input: &str) -> u64 {
    let n = input.parse::<u64>().unwrap(); // line 5: D3
    let m = input.find(':').expect("has a colon"); // line 6: D3
    if m == 0 {
        panic!("empty key"); // line 8: D3
    }
    n
}

fn shield(input: &str) -> u64 {
    std::panic::catch_unwind(|| input.parse::<u64>().unwrap_or(0)).unwrap_or(0) // line 14: D3
}

#[cfg(test)]
mod tests {
    #[test]
    fn ok_in_tests() {
        super::parse("1:2");
        let v: Option<u8> = None;
        assert!(v.is_none());
        let _ = "3".parse::<u64>().unwrap(); // exempt: test module
    }
}
