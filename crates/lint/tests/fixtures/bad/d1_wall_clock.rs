// Fixture: every D1-banned nondeterminism source.
use std::time::{Instant, SystemTime};

fn stamp() -> u64 {
    let wall = SystemTime::now(); // line 5: D1
    let mono = Instant::now(); // line 6: D1
    let mut rng = thread_rng(); // line 7: D1
    let state = RandomState::new(); // line 8: D1
    drop((wall, mono, rng, state));
    0
}
