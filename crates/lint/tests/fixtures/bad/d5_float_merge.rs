// Fixture: ad-hoc float accumulation inside a merge function. The integer
// count accumulation and the float math outside merge* must NOT be flagged.

struct Partial {
    mean_latency: f64,
    requests: u64,
}

impl Partial {
    fn merge(&mut self, other: &Partial) {
        self.mean_latency += other.mean_latency; // line 11: D5
        self.requests += other.requests; // not flagged: integer field
    }

    fn observe(&mut self, sample: f64) {
        self.mean_latency += sample; // not flagged: not a merge* function
        self.requests += 1;
    }
}
