// Fixture: lossy integer `as` casts (and one float cast that must NOT be
// flagged — D4 is about integer narrowing).

fn decode_len(raw: u64) -> usize {
    raw as usize // line 5: D4
}

fn frame(len: usize, t: u64) -> (u32, i64, f64) {
    let prefix = len as u32; // line 9: D4
    let delta = t as i64; // line 10: D4
    let seconds = t as f64; // not flagged: float target
    (prefix, delta, seconds)
}
