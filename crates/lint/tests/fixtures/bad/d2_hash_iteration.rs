// Fixture: hash-ordered iteration reaching output.
use std::collections::{HashMap, HashSet};

fn report(counts: &HashMap<String, u64>) {
    for (k, v) in counts {
        // line 5: D2 (for … in over a hash-typed binding)
        println!("{k} {v}");
    }
}

fn dump() {
    let seen: HashSet<u32> = HashSet::new();
    let items: Vec<u32> = seen.iter().copied().collect(); // line 13: D2
    drop(items);
}
