//! D8 seed: a shared-tier mutation one hop below the peek-phase entry
//! point. The peek phase must log intents via `TierCtx::record` instead.

impl Machine {
    fn run_until(&mut self, deadline: u64, tiers: &[SharedTier]) {
        promote_hot(tiers, deadline);
    }
}

fn promote_hot(tiers: &[SharedTier], key: u64) {
    tiers[0].cache.insert(key); // line 11: D8
}
