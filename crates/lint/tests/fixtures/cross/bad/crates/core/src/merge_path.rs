//! D7 seed: the merge root. The wall-clock read lives two hops away in
//! `helpers.rs` — only the cross-file stage can see the chain.

fn merge_partials(parts: &[u64]) -> u64 {
    let total = tally(parts);
    total
}
