//! Helpers below the merge root: `tally` is clean but calls `stamp`,
//! which observes the wall clock — tainting the whole merge path.

fn tally(parts: &[u64]) -> u64 {
    stamp();
    count(parts)
}

fn stamp() {
    let _ = SystemTime::now(); // line 10: D1 here, D7 via merge_partials
}

fn count(parts: &[u64]) -> u64 {
    match parts.first() {
        Some(v) => *v,
        None => 0,
    }
}
