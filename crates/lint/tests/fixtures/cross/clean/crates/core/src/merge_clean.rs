//! Clean merge path: every function reachable from the root is pure.

fn merge_counts(parts: &[u64]) -> u64 {
    tally_pure(parts)
}

fn tally_pure(parts: &[u64]) -> u64 {
    first_or_zero(parts)
}

fn first_or_zero(parts: &[u64]) -> u64 {
    match parts.first() {
        Some(v) => *v,
        None => 0,
    }
}
