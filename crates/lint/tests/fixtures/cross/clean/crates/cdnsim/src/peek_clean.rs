//! Clean peek phase: `run_until` only records intents; the shared-tier
//! mutation happens in `flush_accesses`, which is *not* reachable from
//! the peek phase — it runs at the epoch boundary.

impl Machine {
    fn run_until(&mut self, deadline: u64, ctx: &mut TierCtx) {
        ctx.record(deadline);
    }
}

fn epoch_boundary(tiers: &mut [SharedTier], ctx: &mut TierCtx) {
    flush_accesses(tiers, ctx);
}

fn flush_accesses(tiers: &mut [SharedTier], ctx: &mut TierCtx) {
    tiers[0].cache.insert(ctx.next_intent());
}
