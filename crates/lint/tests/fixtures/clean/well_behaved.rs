// Fixture: determinism-respecting code that must produce zero findings
// even with every rule in scope.

use std::collections::BTreeMap;

/// Ordered counts render identically on every run.
pub fn render(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

/// Widening casts and `try_from` are both fine under D4.
pub fn lengths(n: u32) -> Result<usize, std::num::TryFromIntError> {
    usize::try_from(n)
}

/// Errors propagate instead of panicking.
pub fn head(items: &[u64]) -> Option<u64> {
    items.first().copied()
}
