// Fixture: contains a D1 violation that the sibling `allowlist.toml`
// exempts by path — the linter must report nothing for this file when the
// allowlist is loaded.

fn wall_clock_sample() -> std::time::Instant {
    std::time::Instant::now()
}
