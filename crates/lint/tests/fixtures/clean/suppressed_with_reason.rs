// Fixture: correctly-formed suppressions silence their target line and
// produce no S1 finding. Both directive placements are exercised.

fn own_line(x: Option<u64>) -> u64 {
    // jcdn-lint: allow(D3) -- x is produced by the caller's match arm and is always Some
    x.unwrap()
}

fn trailing(v: u64) -> u32 {
    v as u32 // jcdn-lint: allow(D4) -- v is masked to 24 bits upstream
}

fn multi_rule(x: Option<u64>) -> u32 {
    // jcdn-lint: allow(D3, D4) -- fixture exercising a multi-rule directive
    x.unwrap() as u32
}
