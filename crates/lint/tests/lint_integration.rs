//! Integration tests: the fixture corpus (exact rule/file/line findings),
//! the CLI's exit codes, and a full-workspace smoke run with a timing
//! budget.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use jcdn_lint::{Config, Finding};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    jcdn_lint::find_workspace_root(&manifest).expect("workspace root above crates/lint")
}

fn fixture_dir(kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

fn lint_fixture(kind: &str, name: &str) -> Vec<Finding> {
    let path = fixture_dir(kind).join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    jcdn_lint::lint_source(name, &src, &Config::all_scopes())
}

/// (rule, line) pairs, sorted, for compact exact-match assertions.
fn rule_lines(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn bad_d1_flags_every_nondeterminism_source() {
    let findings = lint_fixture("bad", "d1_wall_clock.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D1", 5), ("D1", 6), ("D1", 7), ("D1", 8)],
        "{findings:?}"
    );
}

#[test]
fn bad_d2_flags_hash_iteration_including_reference_params() {
    let findings = lint_fixture("bad", "d2_hash_iteration.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D2", 5), ("D2", 13)],
        "{findings:?}"
    );
}

#[test]
fn bad_d3_flags_panics_outside_tests_only() {
    let findings = lint_fixture("bad", "d3_panics.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D3", 5), ("D3", 6), ("D3", 8), ("D3", 14)],
        "{findings:?}"
    );
}

#[test]
fn bad_d4_flags_integer_casts_not_float() {
    let findings = lint_fixture("bad", "d4_lossy_casts.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D4", 5), ("D4", 9), ("D4", 10)],
        "{findings:?}"
    );
}

#[test]
fn bad_d5_flags_float_accumulation_in_merge_only() {
    let findings = lint_fixture("bad", "d5_float_merge.rs");
    assert_eq!(rule_lines(&findings), vec![("D5", 11)], "{findings:?}");
}

#[test]
fn bad_d6_flags_undocumented_pub_items() {
    let findings = lint_fixture("bad", "d6_missing_docs.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D6", 8), ("D6", 11), ("D6", 21)],
        "{findings:?}"
    );
}

#[test]
fn bad_s1_reports_malformed_suppressions_and_keeps_findings() {
    let findings = lint_fixture("bad", "s1_bad_suppression.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("S1", 5), ("D3", 6), ("S1", 10), ("D3", 11)],
        "{findings:?}"
    );
}

#[test]
fn bad_d9_flags_unchecked_length_arithmetic_per_function() {
    let findings = lint_fixture("bad", "d9_unchecked_len.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D9", 6), ("D9", 7), ("D9", 8)],
        "{findings:?}"
    );
}

#[test]
fn bad_d10_flags_non_exhaustive_version_match_only() {
    let findings = lint_fixture("bad", "d10_version_match.rs");
    assert_eq!(rule_lines(&findings), vec![("D10", 4)], "{findings:?}");
}

#[test]
fn clean_corpus_is_clean() {
    assert!(lint_fixture("clean", "well_behaved.rs").is_empty());
    assert!(lint_fixture("clean", "suppressed_with_reason.rs").is_empty());
}

/// Runs both stages over one of the `cross/` fixture trees, which mimic
/// a workspace layout so the path-scoped roots (cdnsim's `run_until`)
/// resolve exactly as they do on the real tree.
fn lint_cross(kind: &str) -> Vec<Finding> {
    let root = fixture_dir("cross").join(kind);
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    files.sort();
    jcdn_lint::lint_files(&root, &files, &Config::all_scopes()).expect("cross fixtures lint")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("fixture dir listable") {
        let path = entry.expect("fixture dir entry").path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn cross_bad_d7_reports_wall_clock_two_hops_below_merge() {
    let findings = lint_cross("bad");
    let d7: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D7").collect();
    assert_eq!(d7.len(), 1, "{findings:?}");
    assert_eq!(d7[0].path, "crates/core/src/helpers.rs");
    assert_eq!(d7[0].line, 10);
    assert_eq!(d7[0].chain.len(), 3, "{:?}", d7[0].chain);
    assert_eq!(d7[0].chain[0].func, "core::merge_path::merge_partials");
    assert_eq!(d7[0].chain[1].func, "core::helpers::tally");
    assert_eq!(d7[0].chain[2].func, "core::helpers::stamp");
    // Stage 1 independently anchors the D1 at the same source line.
    assert!(findings.iter().any(|f| f.rule == "D1" && f.line == 10));
}

#[test]
fn cross_bad_d8_reports_tier_mutation_in_peek_phase() {
    let findings = lint_cross("bad");
    let d8: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D8").collect();
    assert_eq!(d8.len(), 1, "{findings:?}");
    assert_eq!(d8[0].path, "crates/cdnsim/src/sim_peek.rs");
    assert_eq!(d8[0].line, 11);
    assert_eq!(d8[0].chain.len(), 2, "{:?}", d8[0].chain);
    assert_eq!(d8[0].chain[0].func, "cdnsim::sim_peek::Machine::run_until");
    assert!(d8[0].message.contains("flush_accesses"));
}

#[test]
fn cross_clean_corpus_is_clean() {
    let findings = lint_cross("clean");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allowlist_exempts_by_path() {
    let rel = "crates/lint/tests/fixtures/clean/allowlisted.rs";
    let src = std::fs::read_to_string(workspace_root().join(rel)).expect("fixture readable");

    let mut cfg = Config::all_scopes();
    assert_eq!(
        rule_lines(&jcdn_lint::lint_source(rel, &src, &cfg)),
        vec![("D1", 6)],
        "without the allowlist the violation fires"
    );

    let toml =
        std::fs::read_to_string(fixture_dir("clean").join("allowlist.toml")).expect("readable");
    cfg.extend_allow(jcdn_lint::parse_allowlist(&toml).expect("fixture allowlist parses"));
    assert!(jcdn_lint::lint_source(rel, &src, &cfg).is_empty());
}

#[test]
fn root_allowlist_parses_and_names_known_rules_only() {
    let toml =
        std::fs::read_to_string(workspace_root().join("allowlist.toml")).expect("root allowlist");
    let parsed: BTreeMap<String, Vec<String>> =
        jcdn_lint::parse_allowlist(&toml).expect("root allowlist parses");
    assert!(
        parsed.contains_key("D1"),
        "the D1 exempt surfaces live in allowlist.toml"
    );
}

fn run_cli(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_jcdn-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("jcdn-lint binary runs")
}

#[test]
fn cli_exits_nonzero_on_bad_corpus_and_zero_on_clean() {
    let root = workspace_root();
    let bad = fixture_dir("bad");
    let out = run_cli(
        &[
            "--all-scopes",
            "--format",
            "json",
            bad.to_str().expect("utf-8 path"),
        ],
        &root,
    );
    assert_eq!(out.status.code(), Some(1), "bad corpus exits 1");
    let stdout = String::from_utf8(out.stdout).expect("json output is UTF-8");
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "D9", "D10", "S1"] {
        assert!(
            stdout.contains(&format!("\"rule\":\"{rule}\"")),
            "{rule} demonstrated in corpus output: {stdout}"
        );
    }

    let clean = fixture_dir("clean");
    let allowlist = clean.join("allowlist.toml");
    let out = run_cli(
        &[
            "--all-scopes",
            "--allowlist",
            allowlist.to_str().expect("utf-8 path"),
            clean.to_str().expect("utf-8 path"),
        ],
        &root,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean corpus exits 0: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_seeded_cross_file_violations_reported_in_text_and_json() {
    let root = workspace_root();
    let cross_bad = fixture_dir("cross").join("bad");
    let cross = cross_bad.to_str().expect("utf-8 path");

    let out = run_cli(&["--all-scopes", "--root", cross, cross], &root);
    assert_eq!(out.status.code(), Some(1), "seeded violations exit 1");
    let text = String::from_utf8(out.stdout).expect("text output is UTF-8");
    assert!(text.contains("error[D7]"), "{text}");
    assert!(text.contains("error[D8]"), "{text}");
    assert!(
        text.contains("root core::merge_path::merge_partials"),
        "chain evidence rendered: {text}"
    );
    assert!(text.contains("calls core::helpers::stamp"), "{text}");

    let out = run_cli(
        &["--all-scopes", "--root", cross, "--format", "json", cross],
        &root,
    );
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).expect("json output is UTF-8");
    for needle in [
        "\"rule\":\"D7\"",
        "\"rule\":\"D8\"",
        "\"chain\":[",
        "\"func\":\"core::merge_path::merge_partials\"",
        "\"func\":\"cdnsim::sim_peek::Machine::run_until\"",
    ] {
        assert!(json.contains(needle), "{needle} in {json}");
    }
}

#[test]
fn cli_workspace_run_is_clean() {
    let root = workspace_root();
    let out = run_cli(&["--workspace"], &root);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the tree lints clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn cli_baseline_accepts_known_findings_and_blocks_fresh_ones() {
    let root = workspace_root();
    let d9 = fixture_dir("bad").join("d9_unchecked_len.rs");
    let d9 = d9.to_str().expect("utf-8 path");
    let d10 = fixture_dir("bad").join("d10_version_match.rs");
    let d10 = d10.to_str().expect("utf-8 path");
    let tmp = root.join("target/test-lint-baseline.json");
    let tmp_s = tmp.to_str().expect("utf-8 path");

    // Accept the D9 findings as the baseline (the run itself still
    // reports them fresh and exits 1 — writing is not self-accepting).
    let out = run_cli(&["--all-scopes", "--write-baseline", tmp_s, d9], &root);
    assert_eq!(out.status.code(), Some(1));

    // Against the baseline the same findings no longer gate.
    let out = run_cli(&["--all-scopes", "--baseline", tmp_s, d9], &root);
    assert_eq!(out.status.code(), Some(0), "baselined findings do not gate");
    let text = String::from_utf8(out.stdout).expect("utf-8");
    assert!(text.contains("accepted by the baseline"), "{text}");

    // A regression (the D10 fixture) is fresh and gates again.
    let out = run_cli(&["--all-scopes", "--baseline", tmp_s, d9, d10], &root);
    assert_eq!(out.status.code(), Some(1), "fresh findings still gate");
    let text = String::from_utf8(out.stdout).expect("utf-8");
    assert!(text.contains("error[D10]"), "{text}");
    assert!(
        !text.contains("error[D9]"),
        "baselined D9 stays quiet: {text}"
    );

    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn cli_explain_knows_every_rule_and_rejects_unknown() {
    let root = workspace_root();
    for rule in [
        "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10", "S1",
    ] {
        let out = run_cli(&["--explain", rule], &root);
        assert_eq!(out.status.code(), Some(0), "{rule}");
        assert!(!out.stdout.is_empty(), "{rule} has an explanation");
    }
    let out = run_cli(&["--explain", "D99"], &root);
    assert_eq!(out.status.code(), Some(2), "unknown rule is a usage error");
}

#[test]
fn full_workspace_pass_stays_under_budget() {
    let root = workspace_root();
    let mut cfg = Config::workspace_default();
    // The tree has exactly one sanctioned D1 surface (the jcdn-obs clock
    // module); it is exempted in `allowlist.toml`, so the lib-level pass
    // loads the workspace allowlist just as the CLI does.
    let allow = std::fs::read_to_string(root.join("allowlist.toml")).expect("allowlist readable");
    cfg.extend_allow(jcdn_lint::parse_allowlist(&allow).expect("allowlist parses"));
    // jcdn-lint: allow(D1) -- this test measures the linter's own wall-clock budget
    let start = std::time::Instant::now();
    let findings = jcdn_lint::lint_workspace(&root, &cfg).expect("workspace lints");
    let elapsed = start.elapsed();
    assert!(
        findings.is_empty(),
        "workspace lints clean via the library API: {findings:?}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "full-workspace lint took {elapsed:?}, budget is 5s"
    );
}
