//! Integration tests: the fixture corpus (exact rule/file/line findings),
//! the CLI's exit codes, and a full-workspace smoke run with a timing
//! budget.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use jcdn_lint::{Config, Finding};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    jcdn_lint::find_workspace_root(&manifest).expect("workspace root above crates/lint")
}

fn fixture_dir(kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

fn lint_fixture(kind: &str, name: &str) -> Vec<Finding> {
    let path = fixture_dir(kind).join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    jcdn_lint::lint_source(name, &src, &Config::all_scopes())
}

/// (rule, line) pairs, sorted, for compact exact-match assertions.
fn rule_lines(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn bad_d1_flags_every_nondeterminism_source() {
    let findings = lint_fixture("bad", "d1_wall_clock.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D1", 5), ("D1", 6), ("D1", 7), ("D1", 8)],
        "{findings:?}"
    );
}

#[test]
fn bad_d2_flags_hash_iteration_including_reference_params() {
    let findings = lint_fixture("bad", "d2_hash_iteration.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D2", 5), ("D2", 13)],
        "{findings:?}"
    );
}

#[test]
fn bad_d3_flags_panics_outside_tests_only() {
    let findings = lint_fixture("bad", "d3_panics.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D3", 5), ("D3", 6), ("D3", 8), ("D3", 14)],
        "{findings:?}"
    );
}

#[test]
fn bad_d4_flags_integer_casts_not_float() {
    let findings = lint_fixture("bad", "d4_lossy_casts.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D4", 5), ("D4", 9), ("D4", 10)],
        "{findings:?}"
    );
}

#[test]
fn bad_d5_flags_float_accumulation_in_merge_only() {
    let findings = lint_fixture("bad", "d5_float_merge.rs");
    assert_eq!(rule_lines(&findings), vec![("D5", 11)], "{findings:?}");
}

#[test]
fn bad_d6_flags_undocumented_pub_items() {
    let findings = lint_fixture("bad", "d6_missing_docs.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("D6", 8), ("D6", 11), ("D6", 21)],
        "{findings:?}"
    );
}

#[test]
fn bad_s1_reports_malformed_suppressions_and_keeps_findings() {
    let findings = lint_fixture("bad", "s1_bad_suppression.rs");
    assert_eq!(
        rule_lines(&findings),
        vec![("S1", 5), ("D3", 6), ("S1", 10), ("D3", 11)],
        "{findings:?}"
    );
}

#[test]
fn clean_corpus_is_clean() {
    assert!(lint_fixture("clean", "well_behaved.rs").is_empty());
    assert!(lint_fixture("clean", "suppressed_with_reason.rs").is_empty());
}

#[test]
fn allowlist_exempts_by_path() {
    let rel = "crates/lint/tests/fixtures/clean/allowlisted.rs";
    let src = std::fs::read_to_string(workspace_root().join(rel)).expect("fixture readable");

    let mut cfg = Config::all_scopes();
    assert_eq!(
        rule_lines(&jcdn_lint::lint_source(rel, &src, &cfg)),
        vec![("D1", 6)],
        "without the allowlist the violation fires"
    );

    let toml =
        std::fs::read_to_string(fixture_dir("clean").join("allowlist.toml")).expect("readable");
    cfg.extend_allow(jcdn_lint::parse_allowlist(&toml).expect("fixture allowlist parses"));
    assert!(jcdn_lint::lint_source(rel, &src, &cfg).is_empty());
}

#[test]
fn root_allowlist_parses_and_names_known_rules_only() {
    let toml =
        std::fs::read_to_string(workspace_root().join("allowlist.toml")).expect("root allowlist");
    let parsed: BTreeMap<String, Vec<String>> =
        jcdn_lint::parse_allowlist(&toml).expect("root allowlist parses");
    assert!(
        parsed.contains_key("D1"),
        "the D1 exempt surfaces live in allowlist.toml"
    );
}

fn run_cli(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_jcdn-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("jcdn-lint binary runs")
}

#[test]
fn cli_exits_nonzero_on_bad_corpus_and_zero_on_clean() {
    let root = workspace_root();
    let bad = fixture_dir("bad");
    let out = run_cli(
        &[
            "--all-scopes",
            "--format",
            "json",
            bad.to_str().expect("utf-8 path"),
        ],
        &root,
    );
    assert_eq!(out.status.code(), Some(1), "bad corpus exits 1");
    let stdout = String::from_utf8(out.stdout).expect("json output is UTF-8");
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "S1"] {
        assert!(
            stdout.contains(&format!("\"rule\":\"{rule}\"")),
            "{rule} demonstrated in corpus output: {stdout}"
        );
    }

    let clean = fixture_dir("clean");
    let allowlist = clean.join("allowlist.toml");
    let out = run_cli(
        &[
            "--all-scopes",
            "--allowlist",
            allowlist.to_str().expect("utf-8 path"),
            clean.to_str().expect("utf-8 path"),
        ],
        &root,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean corpus exits 0: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_workspace_run_is_clean() {
    let root = workspace_root();
    let out = run_cli(&["--workspace"], &root);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the tree lints clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn cli_explain_knows_every_rule_and_rejects_unknown() {
    let root = workspace_root();
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "S1"] {
        let out = run_cli(&["--explain", rule], &root);
        assert_eq!(out.status.code(), Some(0), "{rule}");
        assert!(!out.stdout.is_empty(), "{rule} has an explanation");
    }
    let out = run_cli(&["--explain", "D9"], &root);
    assert_eq!(out.status.code(), Some(2), "unknown rule is a usage error");
}

#[test]
fn full_workspace_pass_stays_under_budget() {
    let root = workspace_root();
    let mut cfg = Config::workspace_default();
    // The tree has exactly one sanctioned D1 surface (the jcdn-obs clock
    // module); it is exempted in `allowlist.toml`, so the lib-level pass
    // loads the workspace allowlist just as the CLI does.
    let allow = std::fs::read_to_string(root.join("allowlist.toml")).expect("allowlist readable");
    cfg.extend_allow(jcdn_lint::parse_allowlist(&allow).expect("allowlist parses"));
    // jcdn-lint: allow(D1) -- this test measures the linter's own wall-clock budget
    let start = std::time::Instant::now();
    let findings = jcdn_lint::lint_workspace(&root, &cfg).expect("workspace lints");
    let elapsed = start.elapsed();
    assert!(
        findings.is_empty(),
        "workspace lints clean via the library API: {findings:?}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "full-workspace lint took {elapsed:?}, budget is 5s"
    );
}
