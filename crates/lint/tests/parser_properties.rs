//! Property tests for the stage-2 front end: the item parser must never
//! panic (it runs over arbitrary, possibly malformed source), and the
//! call-graph builder must be deterministic and file-order-independent
//! (stage 1 is parallel, so summaries can arrive in any order).

use jcdn_lint::graph::CallGraph;
use jcdn_lint::lexer::lex;
use jcdn_lint::parser::{parse_file, ParsedFile};
use jcdn_lint::{taint, Config};
use proptest::prelude::*;

/// Near-Rust source soup: fragments that exercise every parser branch
/// (items, bindings, calls, generics, strings, directives) glued in
/// arbitrary order, plus raw character noise.
fn source_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f(a: u32) { g(a); }\n".to_string()),
        Just("fn merge_x() { h.m(); }\n".to_string()),
        Just("impl Foo { fn bar(&self) -> u8 { self.baz() } }\n".to_string()),
        Just("impl a::B for C { fn z() {} }\n".to_string()),
        Just("mod inner { fn deep() { outer(); } }\n".to_string()),
        Just("use crate::codec::{encode, decode};\n".to_string()),
        Just("let x = SystemTime::now();\n".to_string()),
        Just("for k in map.keys() { touch(k); }\n".to_string()),
        Just("let len = cur.get_varint()?; let t = len + 8;\n".to_string()),
        Just("match version { 1 | 2 => a(), _ => b() }\n".to_string()),
        Just("// jcdn-lint: allow(D1) -- fuzz\n".to_string()),
        Just("\"str with } { fn\"".to_string()),
        Just("'\\''".to_string()),
        Just("#[cfg(test)] mod tests { #[test] fn t() {} }\n".to_string()),
        Just("{ } } { ) ( ] [\n".to_string()),
        Just("r#\"raw \"# 'a 0x_ff 1e9\n".to_string()),
        "[ -~]{0,24}",
        "\\PC{0,12}",
    ]
}

fn source() -> impl Strategy<Value = String> {
    prop::collection::vec(source_fragment(), 0..12).prop_map(|v| v.concat())
}

proptest! {
    // Lexing + parsing arbitrary near-Rust text never panics, and the
    // same input always yields the same summary.
    #[test]
    fn lex_and_parse_never_panic_and_are_deterministic(src in source()) {
        let a = parse_file("crates/x/src/l.rs", &lex(&src));
        let b = parse_file("crates/x/src/l.rs", &lex(&src));
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    // Graph construction (and the taint pass over it) is independent of
    // the order in which file summaries arrive.
    #[test]
    fn call_graph_is_file_order_independent(
        srcs in prop::collection::vec(source(), 1..6),
        seed in 0usize..720,
    ) {
        let mut files: Vec<ParsedFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| parse_file(&format!("crates/core/src/f{i}.rs"), &lex(s)))
            .collect();
        let sorted_graph = CallGraph::build(&files);
        let cfg = Config::all_scopes();
        let baseline = taint::run(&sorted_graph, &cfg);

        // A seed-driven permutation of the input order.
        let mut k = seed;
        for i in (1..files.len()).rev() {
            files.swap(i, k % (i + 1));
            k /= i + 1;
        }
        let permuted_graph = CallGraph::build(&files);
        prop_assert_eq!(
            format!("{sorted_graph:?}"),
            format!("{permuted_graph:?}"),
            "graph shape must not depend on input order"
        );
        prop_assert_eq!(
            format!("{:?}", taint::run(&permuted_graph, &cfg)),
            format!("{baseline:?}"),
            "findings must not depend on input order"
        );
    }

    // The full two-stage pass never panics on arbitrary input and gives
    // identical findings at 1 and 4 stage-1 threads.
    #[test]
    fn two_stage_pass_is_thread_count_invariant(
        srcs in prop::collection::vec(source(), 1..5),
    ) {
        let files: Vec<(String, String)> = srcs
            .into_iter()
            .enumerate()
            .map(|(i, s)| (format!("crates/core/src/p{i}.rs"), s))
            .collect();
        let cfg = Config::all_scopes();
        let one = jcdn_lint::lint_sources(&files, &cfg, 1);
        let four = jcdn_lint::lint_sources(&files, &cfg, 4);
        prop_assert_eq!(one, four);
    }
}
