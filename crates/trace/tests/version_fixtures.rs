//! Cross-version fixture suite.
//!
//! `tests/fixtures/v{1,2,3,4}.jcdn` are committed encodes of one fixed
//! trace, one file per on-disk format version. The tests assert two
//! invariants that CI must never let rot:
//!
//! 1. **Byte stability** — the frozen legacy encoders ([`jcdn_trace::compat`])
//!    and the live v4 encoder still produce exactly the committed bytes,
//!    so old files on disk stay readable by construction.
//! 2. **Decode equivalence** — every fixture decodes to the same records
//!    (v1 modulo its missing retry/flags fields) and the same shard
//!    boundaries where the format has them.
//!
//! To regenerate after an *intentional* format change (a new version —
//! never a change to a frozen layout), run:
//! `JCDN_WRITE_FIXTURES=1 cargo test -p jcdn-trace --test version_fixtures`

use std::path::PathBuf;

use bytes::Bytes;
use jcdn_trace::codec::{decode_sharded, encode_sharded};
use jcdn_trace::{
    compat, CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, ShardedTrace, SimTime,
    Trace,
};

/// The fixture trace: deterministic, covers every method/mime/cache
/// variant, UA gaps, retries, flags, multi-byte deltas, and duplicate
/// statuses (to exercise the v4 dictionary).
fn fixture_trace() -> Trace {
    let mut t = Trace::new();
    let uas = [
        t.intern_ua("okhttp/3.12.1"),
        t.intern_ua("Mozilla/5.0 (fixture)"),
    ];
    let urls = [
        t.intern_url("https://api.example/items/1"),
        t.intern_url("https://api.example/items/2?page=2"),
        t.intern_url("https://cdn.example/static/app.js"),
    ];
    let methods = [
        Method::Get,
        Method::Post,
        Method::Head,
        Method::Put,
        Method::Delete,
    ];
    let mimes = [
        MimeType::Json,
        MimeType::Html,
        MimeType::Css,
        MimeType::JavaScript,
        MimeType::Image,
        MimeType::Video,
        MimeType::Other,
    ];
    let statuses = [200u16, 200, 304, 404, 500, 200, 503];
    for i in 0..96u64 {
        let iu = i as usize;
        t.push(LogRecord {
            time: SimTime::from_millis(i * i * 3),
            client: ClientId(i % 11 * 7919),
            ua: (i % 3 != 1).then_some(uas[iu % 2]),
            url: urls[iu % 3],
            method: methods[iu % 5],
            mime: mimes[iu % 7],
            status: statuses[iu % 7],
            response_bytes: i * 131 % 10_000,
            cache: match i % 3 {
                0 => CacheStatus::Hit,
                1 => CacheStatus::Miss,
                _ => CacheStatus::NotCacheable,
            },
            retries: (i % 13 == 0) as u8 * 2,
            flags: if i % 7 == 0 {
                RecordFlags::SERVED_STALE.with(RecordFlags::RETRIED)
            } else {
                RecordFlags::NONE
            },
        });
    }
    t
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `encoded` against the committed fixture — or rewrites the
/// fixture when `JCDN_WRITE_FIXTURES=1` — and returns the committed bytes.
fn check_fixture(name: &str, encoded: &Bytes) -> Bytes {
    let path = fixture_path(name);
    if std::env::var_os("JCDN_WRITE_FIXTURES").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encoded).unwrap();
    }
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with JCDN_WRITE_FIXTURES=1?)", path.display()));
    assert_eq!(
        &committed[..],
        &encoded[..],
        "{name}: encoder drifted from the committed bytes"
    );
    Bytes::from(committed)
}

#[test]
fn fixtures_are_byte_stable_and_decode_equivalently() {
    let t = fixture_trace();
    let sharded = ShardedTrace::from_trace(t.clone(), 4);

    let v1 = check_fixture("v1.jcdn", &compat::encode_v1(&t).unwrap());
    let v2 = check_fixture("v2.jcdn", &compat::encode_v2(&t).unwrap());
    let v3 = check_fixture("v3.jcdn", &compat::encode_sharded_v3(&sharded).unwrap());
    let v4 = check_fixture("v4.jcdn", &encode_sharded(&sharded).unwrap());

    // v1 lacks retry/flags; everything else must match field for field.
    let mut v1_expect = t.records().to_vec();
    for r in &mut v1_expect {
        r.retries = 0;
        r.flags = RecordFlags::NONE;
    }
    let d1 = decode_sharded(v1).unwrap();
    assert_eq!(d1.shard_count(), 1);
    assert_eq!(d1.into_trace().records(), v1_expect.as_slice());

    let d2 = decode_sharded(v2).unwrap();
    assert_eq!(d2.shard_count(), 1);
    assert_eq!(d2.into_trace().records(), t.records());

    // v3 and v4 carry shard boundaries; both must reproduce them and
    // decode to identical ShardedTraces.
    let d3 = decode_sharded(v3).unwrap();
    let d4 = decode_sharded(v4).unwrap();
    for d in [&d3, &d4] {
        assert_eq!(d.shard_count(), sharded.shard_count());
        for i in 0..sharded.shard_count() {
            assert_eq!(d.shard_records(i), sharded.shard_records(i));
        }
        assert_eq!(d.interner().url_table(), sharded.interner().url_table());
        assert_eq!(d.interner().ua_table(), sharded.interner().ua_table());
    }
}
