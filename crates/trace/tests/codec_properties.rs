//! Property tests: the binary codec round-trips arbitrary traces and never
//! panics on corrupted input.

use bytes::Bytes;
use jcdn_trace::codec::{decode, decode_sharded, encode, encode_sharded, EncodeError};
use jcdn_trace::{
    CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, ShardedTrace, SimTime, Trace,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawRecord {
    time_us: u64,
    client: u64,
    ua: Option<u8>,
    url: u8,
    method: u8,
    mime: u8,
    cache: u8,
    status: u16,
    bytes: u64,
    retries: u8,
    flags: u8,
}

fn arb_record() -> impl Strategy<Value = RawRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::option::of(0u8..5),
        0u8..8,
        0u8..5,
        0u8..7,
        0u8..3,
        any::<u16>(),
        any::<u64>(),
        any::<u8>(),
        0u8..16,
    )
        .prop_map(
            |(time_us, client, ua, url, method, mime, cache, status, bytes, retries, flags)| {
                RawRecord {
                    // Keep times within i64 so delta encoding stays exact.
                    time_us: time_us % (i64::MAX as u64),
                    client,
                    ua,
                    url,
                    method,
                    mime,
                    cache,
                    status,
                    bytes,
                    retries,
                    flags,
                }
            },
        )
}

/// Builds a time-sorted trace (the codec's precondition) from raw records.
fn build_trace(records: &[RawRecord]) -> Trace {
    let mut records = records.to_vec();
    records.sort_by_key(|r| r.time_us);
    let mut t = Trace::new();
    let urls: Vec<_> = (0..8)
        .map(|i| t.intern_url(&format!("https://h{i}.example/obj/{i}")))
        .collect();
    let uas: Vec<_> = (0..5)
        .map(|i| t.intern_ua(&format!("agent-{i}/1.0")))
        .collect();
    for r in &records {
        t.push(LogRecord {
            time: SimTime::from_micros(r.time_us),
            client: ClientId(r.client),
            ua: r.ua.map(|i| uas[i as usize]),
            url: urls[r.url as usize],
            method: match r.method {
                0 => Method::Get,
                1 => Method::Post,
                2 => Method::Head,
                3 => Method::Put,
                _ => Method::Delete,
            },
            mime: match r.mime {
                0 => MimeType::Json,
                1 => MimeType::Html,
                2 => MimeType::Css,
                3 => MimeType::JavaScript,
                4 => MimeType::Image,
                5 => MimeType::Video,
                _ => MimeType::Other,
            },
            status: r.status,
            response_bytes: r.bytes,
            cache: match r.cache {
                0 => CacheStatus::Hit,
                1 => CacheStatus::Miss,
                _ => CacheStatus::NotCacheable,
            },
            retries: r.retries,
            flags: RecordFlags::from_bits(r.flags).expect("arb flags stay within defined bits"),
        });
    }
    t
}

/// Independent version-1 encoder (the format before the retry/flags bytes),
/// so the decoder's backward compatibility is exercised against arbitrary
/// traces and not just one hand-written sample.
fn encode_v1(t: &Trace) -> Vec<u8> {
    fn put_varint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }
    fn put_string(out: &mut Vec<u8>, s: &str) {
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    let zigzag = |v: i64| ((v << 1) ^ (v >> 63)) as u64;

    let mut out = Vec::new();
    out.extend_from_slice(b"JCDN");
    out.extend_from_slice(&1u16.to_le_bytes());
    put_varint(&mut out, t.url_table().len() as u64);
    for url in t.url_table() {
        put_string(&mut out, url);
    }
    put_varint(&mut out, t.ua_table().len() as u64);
    for ua in t.ua_table() {
        put_string(&mut out, ua);
    }
    put_varint(&mut out, t.len() as u64);
    let mut prev_time: i64 = 0;
    for r in t.records() {
        let time = r.time.as_micros() as i64;
        put_varint(&mut out, zigzag(time - prev_time));
        prev_time = time;
        put_varint(&mut out, r.client.0);
        put_varint(&mut out, r.ua.map_or(0, |ua| u64::from(ua.0) + 1));
        put_varint(&mut out, u64::from(r.url.0));
        out.push(match r.method {
            Method::Get => 0,
            Method::Post => 1,
            Method::Head => 2,
            Method::Put => 3,
            Method::Delete => 4,
        });
        out.push(match r.mime {
            MimeType::Json => 0,
            MimeType::Html => 1,
            MimeType::Css => 2,
            MimeType::JavaScript => 3,
            MimeType::Image => 4,
            MimeType::Video => 5,
            MimeType::Other => 6,
        });
        out.push(match r.cache {
            CacheStatus::Hit => 0,
            CacheStatus::Miss => 1,
            CacheStatus::NotCacheable => 2,
        });
        put_varint(&mut out, u64::from(r.status));
        put_varint(&mut out, r.response_bytes);
    }
    out
}

proptest! {
    #[test]
    fn arbitrary_traces_round_trip(records in prop::collection::vec(arb_record(), 0..200)) {
        let t = build_trace(&records);
        let decoded = decode(encode(&t).expect("sorted traces encode")).expect("round trip");
        prop_assert_eq!(decoded.records(), t.records());
        prop_assert_eq!(decoded.url_table(), t.url_table());
        prop_assert_eq!(decoded.ua_table(), t.ua_table());
    }

    #[test]
    fn sharded_traces_round_trip_for_any_shard_count(
        records in prop::collection::vec(arb_record(), 0..200),
        shard_count in 1usize..12,
    ) {
        let reference = build_trace(&records);
        let sharded = ShardedTrace::from_trace(build_trace(&records), shard_count);
        let encoded = encode_sharded(&sharded).expect("sorted shards encode");
        let decoded = decode_sharded(encoded.clone()).expect("sharded round trip");
        prop_assert_eq!(decoded.shard_count(), sharded.shard_count());
        for i in 0..decoded.shard_count() {
            prop_assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
        // Flat decode of a framed payload equals the canonical record order.
        let mut flat = reference;
        flat.sort_canonical();
        prop_assert_eq!(decode(encoded).expect("flat decode").records(), flat.records());
    }

    #[test]
    fn out_of_order_traces_are_rejected(
        records in prop::collection::vec(arb_record(), 2..50),
    ) {
        let mut t = build_trace(&records);
        let mut reversed: Vec<LogRecord> = t.records().to_vec();
        reversed.reverse();
        // Only meaningful when at least two distinct timestamps exist.
        if reversed.first().map(|r| r.time) != reversed.last().map(|r| r.time) {
            t.retain(|_| false);
            let t = Trace::from_parts(t.into_parts().0, reversed);
            prop_assert!(matches!(
                encode(&t),
                Err(EncodeError::OutOfOrder { .. })
            ));
        }
    }

    #[test]
    fn version_1_payloads_decode_with_default_resilience_fields(
        records in prop::collection::vec(arb_record(), 0..100),
    ) {
        let t = build_trace(&records);
        let decoded = decode(Bytes::from(encode_v1(&t))).expect("v1 payload decodes");
        prop_assert_eq!(decoded.len(), t.len());
        prop_assert_eq!(decoded.url_table(), t.url_table());
        for (d, orig) in decoded.records().iter().zip(t.records()) {
            prop_assert_eq!(d.retries, 0, "v1 records decode with zero retries");
            prop_assert_eq!(d.flags, RecordFlags::NONE, "v1 records decode with empty flags");
            prop_assert_eq!(
                LogRecord { retries: orig.retries, flags: orig.flags, ..*d },
                *orig,
                "all pre-existing fields survive"
            );
        }
    }

    #[test]
    fn decoder_never_panics_on_random_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(Bytes::from(data));
    }

    #[test]
    fn decoder_never_panics_on_bit_flipped_valid_traces(
        records in prop::collection::vec(arb_record(), 1..50),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let t = build_trace(&records);
        let mut data = encode(&t).expect("sorted traces encode").to_vec();
        let idx = flip_at.index(data.len());
        data[idx] ^= 1 << flip_bit;
        let _ = decode(Bytes::from(data)); // may fail, must not panic
    }

    // The crash-safety contract for the tolerant reader: arbitrary
    // single-byte corruption of a valid sharded payload never panics and
    // never invents records — whatever survives is a subset of what was
    // encoded, and the stats account for the loss.
    #[test]
    fn tolerant_decode_of_bit_flipped_shards_never_over_returns(
        records in prop::collection::vec(arb_record(), 1..80),
        shards in 1usize..6,
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let sharded = ShardedTrace::from_trace(build_trace(&records), shards);
        let encoded_records = sharded.len();
        let mut data = encode_sharded(&sharded).expect("sorted shards encode").to_vec();
        let idx = flip_at.index(data.len());
        data[idx] ^= 1 << flip_bit;
        // May fail outright (header/table damage), must not panic; on
        // success the surviving records and the drop tally partition the
        // encoded set — nothing is duplicated or fabricated.
        if let Ok((survived, stats)) = jcdn_trace::codec::decode_sharded_tolerant(Bytes::from(data)) {
            prop_assert!(survived.len() <= encoded_records, "over-returned records");
            prop_assert_eq!(stats.records_decoded, survived.len() as u64);
            prop_assert!(
                stats.records_decoded + stats.records_dropped <= encoded_records as u64,
                "decoded + dropped exceeds what was encoded"
            );
            if !stats.is_clean() {
                prop_assert!(stats.first_error_offset.is_some());
            }
        }
    }

    #[test]
    fn tolerant_decode_of_truncated_shards_never_panics_or_over_returns(
        records in prop::collection::vec(arb_record(), 1..80),
        shards in 1usize..6,
        cut_at in any::<prop::sample::Index>(),
    ) {
        let sharded = ShardedTrace::from_trace(build_trace(&records), shards);
        let encoded_records = sharded.len();
        let mut data = encode_sharded(&sharded).expect("sorted shards encode").to_vec();
        data.truncate(cut_at.index(data.len()));
        if let Ok((survived, stats)) = jcdn_trace::codec::decode_sharded_tolerant(Bytes::from(data)) {
            prop_assert!(survived.len() <= encoded_records, "over-returned records");
            prop_assert_eq!(stats.records_decoded, survived.len() as u64);
            prop_assert!(
                stats.records_decoded + stats.records_dropped <= encoded_records as u64,
                "decoded + dropped exceeds what was encoded"
            );
        }
    }
}
