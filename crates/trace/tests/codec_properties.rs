//! Property tests: the binary codec round-trips arbitrary traces and never
//! panics on corrupted input.

use bytes::Bytes;
use jcdn_trace::codec::{decode, encode};
use jcdn_trace::{CacheStatus, ClientId, LogRecord, Method, MimeType, SimTime, Trace};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawRecord {
    time_us: u64,
    client: u64,
    ua: Option<u8>,
    url: u8,
    method: u8,
    mime: u8,
    cache: u8,
    status: u16,
    bytes: u64,
}

fn arb_record() -> impl Strategy<Value = RawRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::option::of(0u8..5),
        0u8..8,
        0u8..5,
        0u8..7,
        0u8..3,
        any::<u16>(),
        any::<u64>(),
    )
        .prop_map(
            |(time_us, client, ua, url, method, mime, cache, status, bytes)| RawRecord {
                // Keep times within i64 so delta encoding stays exact.
                time_us: time_us % (i64::MAX as u64),
                client,
                ua,
                url,
                method,
                mime,
                cache,
                status,
                bytes,
            },
        )
}

fn build_trace(records: &[RawRecord]) -> Trace {
    let mut t = Trace::new();
    let urls: Vec<_> = (0..8)
        .map(|i| t.intern_url(&format!("https://h{i}.example/obj/{i}")))
        .collect();
    let uas: Vec<_> = (0..5)
        .map(|i| t.intern_ua(&format!("agent-{i}/1.0")))
        .collect();
    for r in records {
        t.push(LogRecord {
            time: SimTime::from_micros(r.time_us),
            client: ClientId(r.client),
            ua: r.ua.map(|i| uas[i as usize]),
            url: urls[r.url as usize],
            method: match r.method {
                0 => Method::Get,
                1 => Method::Post,
                2 => Method::Head,
                3 => Method::Put,
                _ => Method::Delete,
            },
            mime: match r.mime {
                0 => MimeType::Json,
                1 => MimeType::Html,
                2 => MimeType::Css,
                3 => MimeType::JavaScript,
                4 => MimeType::Image,
                5 => MimeType::Video,
                _ => MimeType::Other,
            },
            status: r.status,
            response_bytes: r.bytes,
            cache: match r.cache {
                0 => CacheStatus::Hit,
                1 => CacheStatus::Miss,
                _ => CacheStatus::NotCacheable,
            },
        });
    }
    t
}

proptest! {
    #[test]
    fn arbitrary_traces_round_trip(records in prop::collection::vec(arb_record(), 0..200)) {
        let t = build_trace(&records);
        let decoded = decode(encode(&t)).expect("round trip");
        prop_assert_eq!(decoded.records(), t.records());
        prop_assert_eq!(decoded.url_table(), t.url_table());
        prop_assert_eq!(decoded.ua_table(), t.ua_table());
    }

    #[test]
    fn decoder_never_panics_on_random_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(Bytes::from(data));
    }

    #[test]
    fn decoder_never_panics_on_bit_flipped_valid_traces(
        records in prop::collection::vec(arb_record(), 1..50),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let t = build_trace(&records);
        let mut data = encode(&t).to_vec();
        let idx = flip_at.index(data.len());
        data[idx] ^= 1 << flip_bit;
        let _ = decode(Bytes::from(data)); // may fail, must not panic
    }
}
