//! Time-partitioned trace shards behind one shared interner.
//!
//! A [`ShardedTrace`] keeps the record multiset of a [`Trace`] split into N
//! contiguous time ranges. All shards resolve ids through a single
//! [`Interner`], so per-shard analyses can run in parallel and their
//! results merge without id remapping. Codec v4 serializes each shard as
//! its own length-prefixed, columnar, CRC-protected frame (see
//! [`crate::codec`]).

use crate::interner::Interner;
use crate::record::LogRecord;
use crate::stream::RecordStream;
use crate::trace::Trace;

/// A trace split into time-partitioned record shards sharing one interner.
#[derive(Clone, Debug, Default)]
pub struct ShardedTrace {
    interner: Interner,
    shards: Vec<Vec<LogRecord>>,
}

impl ShardedTrace {
    /// Builds a sharded trace from an interner and pre-partitioned record
    /// shards (each shard's records must already be time-sorted and the
    /// shards ordered by time).
    pub fn from_parts(interner: Interner, shards: Vec<Vec<LogRecord>>) -> Self {
        ShardedTrace { interner, shards }
    }

    /// Splits a trace into `shard_count` contiguous, near-equal-size time
    /// partitions. Records are canonically sorted first, so the result is
    /// the same for any prior record order of the same multiset.
    /// `shard_count` is clamped to at least 1.
    pub fn from_trace(trace: Trace, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let (interner, mut records) = trace.into_parts();
        records.sort_unstable();
        let total = records.len();
        let per_shard = total.div_ceil(shard_count.min(total.max(1)));
        let mut shards = Vec::with_capacity(shard_count);
        let mut rest = records;
        while rest.len() > per_shard {
            let tail = rest.split_off(per_shard);
            shards.push(rest);
            rest = tail;
        }
        shards.push(rest);
        ShardedTrace { interner, shards }
    }

    /// Flattens the shards back into a single trace (records stay in shard
    /// order, i.e. time order).
    pub fn into_trace(self) -> Trace {
        let mut records = Vec::with_capacity(self.len());
        for shard in self.shards {
            records.extend(shard);
        }
        Trace::from_parts(self.interner, records)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no shard holds records.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// The shared string tables.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The raw records of shard `i`.
    pub fn shard_records(&self, i: usize) -> &[LogRecord] {
        &self.shards[i]
    }

    /// A stream over a single shard.
    pub fn shard_stream(&self, i: usize) -> RecordStream<'_> {
        RecordStream::new(&self.interner, vec![&self.shards[i]])
    }

    /// A stream over every record in shard order.
    pub fn stream(&self) -> RecordStream<'_> {
        RecordStream::new(
            &self.interner,
            self.shards.iter().map(|s| s.as_slice()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CacheStatus, ClientId, Method, MimeType, RecordFlags};
    use crate::time::SimTime;

    fn trace(n: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let url = t.intern_url(&format!("https://h.example/{}", i % 7));
            t.push(LogRecord {
                time: SimTime::from_millis(i * 13),
                client: ClientId(i % 5),
                ua: None,
                url,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: i,
                cache: CacheStatus::Miss,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        t
    }

    #[test]
    fn partitioning_preserves_records_for_any_shard_count() {
        let reference = trace(103);
        for shards in [1, 2, 3, 8, 64, 103, 200] {
            let sharded = ShardedTrace::from_trace(trace(103), shards);
            assert_eq!(sharded.len(), 103, "{shards} shards");
            let flat = sharded.into_trace();
            assert_eq!(flat.records(), reference.records(), "{shards} shards");
        }
    }

    #[test]
    fn shards_are_contiguous_time_ranges() {
        let sharded = ShardedTrace::from_trace(trace(100), 4);
        assert_eq!(sharded.shard_count(), 4);
        let mut prev_last: Option<SimTime> = None;
        for i in 0..sharded.shard_count() {
            let shard = sharded.shard_records(i);
            assert!(!shard.is_empty());
            assert!(shard.windows(2).all(|w| w[0].time <= w[1].time));
            if let Some(last) = prev_last {
                assert!(
                    last <= shard[0].time,
                    "shard {i} starts before shard {}",
                    i - 1
                );
            }
            prev_last = shard.last().map(|r| r.time);
        }
    }

    #[test]
    fn shard_streams_share_the_interner() {
        let sharded = ShardedTrace::from_trace(trace(20), 2);
        let a = sharded.shard_stream(0);
        let b = sharded.shard_stream(1);
        let first_a = a.iter().next().unwrap();
        let first_b = b.iter().next().unwrap();
        // Same UrlId resolves identically through both shard streams.
        assert_eq!(a.url(first_a.url), sharded.interner().url(first_a.url));
        assert_eq!(b.url(first_b.url), sharded.interner().url(first_b.url));
        assert_eq!(a.len() + b.len(), sharded.len());
        assert_eq!(sharded.stream().len(), sharded.len());
    }

    #[test]
    fn empty_and_tiny_traces_shard_cleanly() {
        let sharded = ShardedTrace::from_trace(Trace::new(), 8);
        assert!(sharded.is_empty());
        assert_eq!(sharded.into_trace().len(), 0);

        let sharded = ShardedTrace::from_trace(trace(3), 8);
        assert_eq!(sharded.len(), 3);
        assert_eq!(sharded.into_trace().len(), 3);
    }
}
