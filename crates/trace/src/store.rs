//! Durable, resumable on-disk trace store.
//!
//! The codec (see [`crate::codec`]) defines what trace bytes look like;
//! this module defines how they reach disk without lying about it. Three
//! guarantees, forming the crash-safety contract (DESIGN.md §13):
//!
//! 1. **Atomic visibility** — [`durable_write`] publishes every file via
//!    write-temp, fsync, rename. A reader sees the old content or the new
//!    content, never a torn hybrid, no matter where a crash lands.
//! 2. **Staged shards with a signed manifest** — a run writes each shard
//!    frame to a staging directory and records its byte length, record
//!    count, and CRC-32 in a [`ShardIndex`] sitting next to the final
//!    file. The index is rewritten (atomically) after every commit, so at
//!    any kill point it describes exactly the shards that are safely on
//!    disk.
//! 3. **Byte-identical resume** — the final file is assembled by pure
//!    concatenation: `table prologue + varint(shard_count) + frames`.
//!    Because a shard frame's bytes do not depend on which run encoded it
//!    (time deltas reset per frame), a resumed run that recomputes only
//!    the missing shards produces the *same bytes* as an uninterrupted
//!    run — the property `--resume` tests assert, not merely equivalent
//!    records.
//!
//! Fault injection threads through every write as a
//! [`jcdn_chaos::Chaos`] handle. Production call sites pass
//! [`jcdn_chaos::handle()`] (a no-op unless a test plan is installed);
//! unit tests pass a plan directly.
//!
//! On-disk layout for a store rooted at `out.jcdn`:
//!
//! ```text
//! out.jcdn              final trace file (appears atomically at finalize)
//! out.jcdn.idx          JSON shard index (kept after finalize, complete=true)
//! out.jcdn.staging/     per-run staging dir (removed after finalize)
//!   tables.bin          codec prologue: magic + version + string tables
//!   shard-0000.bin      one full codec v4 columnar frame per shard
//!   ...
//! ```

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use bytes::{BufMut, BytesMut};
use jcdn_chaos::Chaos;

use crate::codec::{self, DecodeStats};
use crate::interner::Interner;
use crate::record::LogRecord;
use crate::sharded::ShardedTrace;
use crate::time::SimTime;

/// Writes `bytes` to `path` atomically and durably: the data goes to a
/// sibling `*.tmp` file, is fsynced, and is renamed over `path`; the
/// parent directory is then fsynced (best-effort — not every filesystem
/// supports it) so the rename itself survives a crash. The `label` names
/// this write site for fault injection.
pub fn durable_write(
    path: &Path,
    mut bytes: Vec<u8>,
    label: &str,
    chaos: &dyn Chaos,
) -> io::Result<()> {
    chaos
        .on_write(label, &mut bytes)
        .map_err(|e| io::Error::other(e.to_string()))?;
    let tmp = sibling(path, ".tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// `path` with `suffix` appended to its file name (not its extension).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// The shard index path for a store rooted at `final_path`.
pub fn index_path(final_path: &Path) -> PathBuf {
    sibling(final_path, ".idx")
}

/// The staging directory for a store rooted at `final_path`.
pub fn staging_dir(final_path: &Path) -> PathBuf {
    sibling(final_path, ".staging")
}

/// What the index records about one committed staged file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Records in the shard (0 for the table prologue).
    pub records: u64,
    /// Staged file size in bytes.
    pub bytes: u64,
    /// CRC-32 of the whole staged file.
    pub crc: u32,
}

impl ShardEntry {
    fn describes(&self, data: &[u8]) -> bool {
        self.bytes == codec::len_u64(data.len()) && self.crc == codec::crc32(data)
    }
}

/// The per-run shard index: which staged pieces are safely on disk, and
/// the run parameters they belong to. Serialized as JSON next to the
/// final file and rewritten atomically after every commit.
#[derive(Clone, Debug)]
pub struct ShardIndex {
    /// Codec format version the staged frames use.
    pub codec_version: u16,
    /// Digest of the generation parameters (seed, preset, shard count,
    /// fault windows, …) so a resume never splices shards from a
    /// different run.
    pub params_digest: u64,
    /// Shards the run will produce.
    pub shard_count: usize,
    /// True once the final file has been assembled and published.
    pub complete: bool,
    /// The committed table prologue, if any.
    pub tables: Option<ShardEntry>,
    /// One slot per shard; `Some` once that shard's frame is committed.
    pub shards: Vec<Option<ShardEntry>>,
}

impl ShardIndex {
    fn new(shard_count: usize, params_digest: u64) -> ShardIndex {
        ShardIndex {
            codec_version: codec::VERSION,
            params_digest,
            shard_count,
            complete: false,
            tables: None,
            shards: vec![None; shard_count],
        }
    }

    fn to_json(&self) -> jcdn_json::Value {
        let entry = |e: &ShardEntry| {
            let mut m = jcdn_json::Map::new();
            m.insert("records", jcdn_json::Value::from(e.records));
            m.insert("bytes", jcdn_json::Value::from(e.bytes));
            m.insert("crc", jcdn_json::Value::from(u64::from(e.crc)));
            jcdn_json::Value::Object(m)
        };
        let mut root = jcdn_json::Map::new();
        root.insert(
            "codec_version",
            jcdn_json::Value::from(u64::from(self.codec_version)),
        );
        // Hex, not a JSON number: a 64-bit digest must survive parsers
        // that read numbers as f64.
        root.insert(
            "params_digest",
            jcdn_json::Value::from(format!("{:016x}", self.params_digest)),
        );
        root.insert("shard_count", jcdn_json::Value::from(self.shard_count));
        root.insert("complete", jcdn_json::Value::Bool(self.complete));
        root.insert(
            "tables",
            self.tables.as_ref().map_or(jcdn_json::Value::Null, &entry),
        );
        root.insert(
            "shards",
            jcdn_json::Value::Array(
                self.shards
                    .iter()
                    .map(|s| s.as_ref().map_or(jcdn_json::Value::Null, &entry))
                    .collect(),
            ),
        );
        jcdn_json::Value::Object(root)
    }

    fn from_json(v: &jcdn_json::Value) -> Option<ShardIndex> {
        let entry = |v: &jcdn_json::Value| -> Option<Option<ShardEntry>> {
            if v.is_null() {
                return Some(None);
            }
            Some(Some(ShardEntry {
                records: v.get("records")?.as_u64()?,
                bytes: v.get("bytes")?.as_u64()?,
                crc: u32::try_from(v.get("crc")?.as_u64()?).ok()?,
            }))
        };
        let shards = v
            .get("shards")?
            .as_array()?
            .iter()
            .map(entry)
            .collect::<Option<Vec<_>>>()?;
        let shard_count = usize::try_from(v.get("shard_count")?.as_u64()?).ok()?;
        if shards.len() != shard_count {
            return None;
        }
        Some(ShardIndex {
            codec_version: u16::try_from(v.get("codec_version")?.as_u64()?).ok()?,
            params_digest: u64::from_str_radix(v.get("params_digest")?.as_str()?, 16).ok()?,
            shard_count,
            complete: matches!(v.get("complete")?, jcdn_json::Value::Bool(true)),
            tables: entry(v.get("tables")?)?,
            shards,
        })
    }

    /// Loads an index file; `None` when it is missing or unreadable (a
    /// damaged index simply means nothing can be trusted for reuse).
    pub fn load(path: &Path) -> Option<ShardIndex> {
        let text = std::fs::read_to_string(path).ok()?;
        ShardIndex::from_json(&jcdn_json::parse(&text).ok()?)
    }

    fn save(&self, path: &Path, chaos: &dyn Chaos) -> io::Result<()> {
        let text = jcdn_json::to_string_pretty(&self.to_json());
        durable_write(path, text.into_bytes(), "store.index", chaos)
    }
}

fn shard_file(staging: &Path, i: usize) -> PathBuf {
    staging.join(format!("shard-{i:04}.bin"))
}

fn tables_file(staging: &Path) -> PathBuf {
    staging.join("tables.bin")
}

/// Reads a staged file and checks it against its index entry.
fn verified_read(path: &Path, entry: &ShardEntry) -> Option<Vec<u8>> {
    let data = std::fs::read(path).ok()?;
    entry.describes(&data).then_some(data)
}

/// A crash-safe writer for one sharded trace file.
///
/// Commit the table prologue once, then each shard frame in shard order;
/// every commit is durable and indexed before the writer moves on, so a
/// kill at any point leaves a resumable run. [`finalize`](Self::finalize)
/// re-verifies everything staged and publishes the final file atomically.
pub struct StoreWriter<'c> {
    final_path: PathBuf,
    index_path: PathBuf,
    staging: PathBuf,
    index: ShardIndex,
    chaos: &'c dyn Chaos,
    reused: u64,
    already_complete: bool,
}

impl<'c> StoreWriter<'c> {
    /// Opens a store for writing `shard_count` shards.
    ///
    /// With `resume` set, an existing index whose codec version, params
    /// digest, and shard count all match is honored: staged files are
    /// verified against their entries and damaged or missing ones lose
    /// their entry (the caller recomputes exactly those). An index from
    /// different parameters — or no index — starts a fresh run, clearing
    /// any stale staging.
    pub fn open(
        final_path: &Path,
        shard_count: usize,
        params_digest: u64,
        resume: bool,
        chaos: &'c dyn Chaos,
    ) -> io::Result<StoreWriter<'c>> {
        let index_path = index_path(final_path);
        let staging = staging_dir(final_path);
        if resume {
            if let Some(mut index) = ShardIndex::load(&index_path) {
                let matches = index.codec_version == codec::VERSION
                    && index.params_digest == params_digest
                    && index.shard_count == shard_count;
                if matches {
                    if index.complete && final_path.exists() {
                        return Ok(StoreWriter {
                            final_path: final_path.to_path_buf(),
                            index_path,
                            staging,
                            index,
                            chaos,
                            reused: 0,
                            already_complete: true,
                        });
                    }
                    // Trust nothing the staging dir can't back up.
                    if let Some(entry) = index.tables {
                        if verified_read(&tables_file(&staging), &entry).is_none() {
                            index.tables = None;
                        }
                    }
                    for i in 0..index.shards.len() {
                        if let Some(entry) = index.shards[i] {
                            if verified_read(&shard_file(&staging, i), &entry).is_none() {
                                index.shards[i] = None;
                            }
                        }
                    }
                    index.complete = false;
                    std::fs::create_dir_all(&staging)?;
                    index.save(&index_path, chaos)?;
                    return Ok(StoreWriter {
                        final_path: final_path.to_path_buf(),
                        index_path,
                        staging,
                        index,
                        chaos,
                        reused: 0,
                        already_complete: false,
                    });
                }
            }
        }
        if staging.exists() {
            std::fs::remove_dir_all(&staging)?;
        }
        std::fs::create_dir_all(&staging)?;
        let index = ShardIndex::new(shard_count, params_digest);
        index.save(&index_path, chaos)?;
        Ok(StoreWriter {
            final_path: final_path.to_path_buf(),
            index_path,
            staging,
            index,
            chaos,
            reused: 0,
            already_complete: false,
        })
    }

    /// True when a resume found the run already finalized; every commit
    /// and [`finalize`](Self::finalize) becomes a no-op, leaving the
    /// published file untouched.
    pub fn already_complete(&self) -> bool {
        self.already_complete
    }

    /// True when shard `i`'s frame is committed and verified, i.e. the
    /// caller may skip recomputing it.
    pub fn shard_committed(&self, i: usize) -> bool {
        self.already_complete || self.index.shards.get(i).is_some_and(Option::is_some)
    }

    /// Shards reused from a previous run instead of rewritten.
    pub fn shards_reused(&self) -> u64 {
        self.reused
    }

    /// Notes that the caller skipped shard `i` because it was already
    /// committed (for the `store.shards_reused` counter).
    pub fn note_reused(&mut self, i: usize) {
        debug_assert!(self.shard_committed(i));
        self.reused += 1;
    }

    /// Commits the table prologue (idempotent: a verified staged copy
    /// with the same bytes is kept as-is).
    pub fn commit_tables(&mut self, tables: &[u8]) -> io::Result<()> {
        if self.already_complete {
            return Ok(());
        }
        if let Some(entry) = &self.index.tables {
            if entry.describes(tables) {
                return Ok(());
            }
        }
        durable_write(
            &tables_file(&self.staging),
            tables.to_vec(),
            "store.tables",
            self.chaos,
        )?;
        self.index.tables = Some(ShardEntry {
            records: 0,
            bytes: codec::len_u64(tables.len()),
            crc: codec::crc32(tables),
        });
        self.index.save(&self.index_path, self.chaos)
    }

    /// Commits the table prologue for `interner` (idempotent).
    pub fn commit_interner(&mut self, interner: &Interner) -> io::Result<()> {
        self.commit_tables(&codec::encode_tables(interner))
    }

    /// Encodes and durably commits shard `i`, or reuses a verified staged
    /// copy from a previous run. `last_time` / `index_base` thread the
    /// codec's cross-shard time-ordering check through successive calls
    /// (start both at `None` / `0` and pass the same variables for every
    /// shard, in shard order). Returns `true` when the shard was encoded
    /// and written, `false` when the staged copy was reused.
    pub fn write_shard(
        &mut self,
        i: usize,
        records: &[LogRecord],
        last_time: &mut Option<SimTime>,
        index_base: &mut usize,
    ) -> io::Result<bool> {
        if self.shard_committed(i) {
            self.note_reused(i);
            if let Some(last) = records.last() {
                *last_time = Some(last.time);
            }
            *index_base += records.len();
            return Ok(false);
        }
        let frame = codec::encode_frame(records, *index_base, last_time, i)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        *index_base += records.len();
        self.commit_shard(i, &frame.bytes, frame.records)?;
        Ok(true)
    }

    /// Encodes every uncommitted shard on the exec pool, then commits
    /// them durably in shard order. Byte-identical to calling
    /// [`StoreWriter::write_shard`] for each shard in turn: encoding is
    /// deterministic per shard once its cross-shard ordering seed is
    /// fixed, and the commit loop below preserves the sequential write
    /// order that the crash-safety contract (and the chaos harness)
    /// observes. `shards` must be every shard of the run, in order.
    pub fn write_shards(&mut self, shards: &[&[LogRecord]], threads: usize) -> io::Result<()> {
        let (bases, prevs) = codec::shard_bases(shards);
        let todo: Vec<usize> = (0..shards.len())
            .filter(|&i| !self.shard_committed(i))
            .collect();
        let frames =
            jcdn_exec::try_scatter_gather_labeled("store.encode", todo.len(), threads, |k| {
                let i = todo[k];
                let mut last_time = prevs[i];
                codec::encode_frame(shards[i], bases[i], &mut last_time, i)
            })
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut fresh = frames.into_iter();
        for i in 0..shards.len() {
            if self.shard_committed(i) {
                self.note_reused(i);
            } else {
                // todo and this loop walk the same uncommitted indices in
                // the same order, so the iterator cannot run dry.
                let frame = fresh
                    .next()
                    .ok_or_else(|| io::Error::other("store.encode produced too few frames"))?;
                self.commit_shard(i, &frame.bytes, frame.records)?;
            }
        }
        Ok(())
    }

    /// Commits shard `i`'s frame durably and records it in the index.
    pub fn commit_shard(&mut self, i: usize, frame: &[u8], records: u64) -> io::Result<()> {
        if self.already_complete {
            return Ok(());
        }
        durable_write(
            &shard_file(&self.staging, i),
            frame.to_vec(),
            "store.shard",
            self.chaos,
        )?;
        self.index.shards[i] = Some(ShardEntry {
            records,
            bytes: codec::len_u64(frame.len()),
            crc: codec::crc32(frame),
        });
        self.index.save(&self.index_path, self.chaos)
    }

    /// Verifies every staged piece against the index, assembles the final
    /// file by concatenation, publishes it atomically, marks the index
    /// complete, and removes the staging directory.
    ///
    /// A staged file that no longer matches its entry (e.g. corrupted
    /// after commit) loses its index entry and fails the finalize with an
    /// error naming it — a subsequent `--resume` recomputes exactly that
    /// piece.
    pub fn finalize(mut self) -> io::Result<()> {
        if self.already_complete {
            return Ok(());
        }
        let tables = match &self.index.tables {
            Some(entry) => match verified_read(&tables_file(&self.staging), entry) {
                Some(data) => data,
                None => {
                    self.index.tables = None;
                    self.index.save(&self.index_path, self.chaos)?;
                    return Err(damaged("table prologue"));
                }
            },
            None => return Err(damaged("table prologue")),
        };
        let mut shard_data = Vec::with_capacity(self.index.shard_count);
        for i in 0..self.index.shard_count {
            match &self.index.shards[i] {
                Some(entry) => match verified_read(&shard_file(&self.staging, i), entry) {
                    Some(data) => shard_data.push(data),
                    None => {
                        self.index.shards[i] = None;
                        self.index.save(&self.index_path, self.chaos)?;
                        return Err(damaged(&format!("shard {i}")));
                    }
                },
                None => return Err(damaged(&format!("shard {i}"))),
            }
        }

        let mut out =
            Vec::with_capacity(tables.len() + 10 + shard_data.iter().map(Vec::len).sum::<usize>());
        out.extend_from_slice(&tables);
        let mut count = BytesMut::with_capacity(10);
        codec::put_varint(&mut count, codec::len_u64(self.index.shard_count));
        out.extend_from_slice(&count.freeze());
        for data in &shard_data {
            out.extend_from_slice(data);
        }
        durable_write(&self.final_path, out, "store.final", self.chaos)?;
        self.index.complete = true;
        self.index.save(&self.index_path, self.chaos)?;
        let _ = std::fs::remove_dir_all(&self.staging);
        Ok(())
    }
}

fn damaged(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("staged {what} is missing or damaged; re-run with --resume to recompute it"),
    )
}

/// What a staged read could recover (see [`read_staged`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreReadStats {
    /// Decode tallies summed across the staged shards. Note
    /// `first_error_offset` is shard-local here (each staged shard
    /// decodes as its own one-frame buffer).
    pub decode: DecodeStats,
    /// Shard slots with no usable staged frame (never committed, or
    /// damaged after commit).
    pub shards_missing: u64,
    /// Shards the index says the run will produce.
    pub shard_count: usize,
}

impl StoreReadStats {
    /// True when every shard was present and decoded clean.
    pub fn is_clean(&self) -> bool {
        self.shards_missing == 0 && self.decode.is_clean()
    }
}

/// Reads what an unfinished run left in the staging area: the table
/// prologue plus every verified shard frame, decoded tolerantly. Missing
/// or damaged shards keep their (empty) slot so shard indices stay
/// stable, and are counted in [`StoreReadStats::shards_missing`].
///
/// This is what `characterize --resume` falls back to when the final file
/// does not exist: analyze the surviving shards now, report exactly what
/// is missing.
pub fn read_staged(final_path: &Path) -> io::Result<(ShardedTrace, StoreReadStats)> {
    let index = ShardIndex::load(&index_path(final_path)).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("no shard index next to {}", final_path.display()),
        )
    })?;
    let staging = staging_dir(final_path);
    let tables = index
        .tables
        .as_ref()
        .and_then(|entry| verified_read(&tables_file(&staging), entry))
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "staged table prologue is missing or damaged; nothing can be salvaged",
            )
        })?;

    // The interner comes from decoding the prologue as a zero-shard file.
    let mut empty = BytesMut::with_capacity(tables.len() + 1);
    empty.put_slice(&tables);
    codec::put_varint(&mut empty, 0);
    let interner = codec::decode_sharded(empty.freeze())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        .into_trace()
        .into_parts()
        .0;

    let mut stats = StoreReadStats {
        shard_count: index.shard_count,
        ..StoreReadStats::default()
    };
    let mut shards: Vec<Vec<LogRecord>> = Vec::with_capacity(index.shard_count);
    for i in 0..index.shard_count {
        let frame = index.shards[i]
            .as_ref()
            .and_then(|entry| verified_read(&shard_file(&staging, i), entry));
        let Some(frame) = frame else {
            stats.shards_missing += 1;
            shards.push(Vec::new());
            continue;
        };
        // Rebuild a one-shard file around the frame so the ordinary
        // tolerant decoder does the record-level work.
        let mut buf = BytesMut::with_capacity(tables.len() + frame.len() + 1);
        buf.put_slice(&tables);
        codec::put_varint(&mut buf, 1);
        buf.put_slice(&frame);
        match codec::decode_sharded_tolerant(buf.freeze()) {
            Ok((decoded, shard_stats)) => {
                stats.decode.merge(&shard_stats);
                // The synthetic buffer shares the prologue, so ids line up
                // with `interner` by construction.
                shards.push(decoded.into_trace().into_parts().1);
            }
            Err(_) => {
                stats.shards_missing += 1;
                shards.push(Vec::new());
            }
        }
    }
    Ok((ShardedTrace::from_parts(interner, shards), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_frame, encode_sharded, encode_tables};
    use crate::record::{CacheStatus, ClientId, Method, MimeType, RecordFlags};
    use crate::time::SimTime;
    use crate::trace::Trace;

    fn sample_sharded(n: u64, shards: usize) -> ShardedTrace {
        let mut t = Trace::new();
        let ua = t.intern_ua("agent/1.0");
        for i in 0..n {
            let url = t.intern_url(&format!("https://h.example/{}", i % 5));
            t.push(crate::record::LogRecord {
                time: SimTime::from_millis(i * 11),
                client: ClientId(i % 3),
                ua: Some(ua),
                url,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: i,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        ShardedTrace::from_trace(t, shards)
    }

    fn tmp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jcdn-store-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("out.jcdn")
    }

    /// Writes `sharded` through the store, committing all shards.
    fn write_all(writer: &mut StoreWriter<'_>, sharded: &ShardedTrace) -> io::Result<()> {
        writer.commit_interner(sharded.interner())?;
        let mut last_time = None;
        let mut base = 0;
        for i in 0..sharded.shard_count() {
            writer.write_shard(i, sharded.shard_records(i), &mut last_time, &mut base)?;
        }
        Ok(())
    }

    #[test]
    fn parallel_write_shards_matches_sequential_bytes() {
        let sharded = sample_sharded(100, 4);
        let shards: Vec<&[crate::record::LogRecord]> =
            (0..4).map(|i| sharded.shard_records(i)).collect();
        let direct = encode_sharded(&sharded).unwrap();
        for threads in [1, 2, 8] {
            let out = tmp_store(&format!("parwrite{threads}"));
            let mut writer = StoreWriter::open(&out, 4, 7, false, &jcdn_chaos::Quiet).unwrap();
            writer.commit_interner(sharded.interner()).unwrap();
            writer.write_shards(&shards, threads).unwrap();
            writer.finalize().unwrap();
            assert_eq!(
                std::fs::read(&out).unwrap(),
                direct.to_vec(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_write_shards_reuses_committed_shards() {
        let out = tmp_store("parresume");
        let sharded = sample_sharded(100, 4);
        let shards: Vec<&[crate::record::LogRecord]> =
            (0..4).map(|i| sharded.shard_records(i)).collect();
        // First run commits shards 0 and 1 sequentially, then stops.
        let mut writer = StoreWriter::open(&out, 4, 7, true, &jcdn_chaos::Quiet).unwrap();
        writer.commit_interner(sharded.interner()).unwrap();
        let (mut last_time, mut base) = (None, 0);
        for (i, shard) in shards.iter().enumerate().take(2) {
            writer
                .write_shard(i, shard, &mut last_time, &mut base)
                .unwrap();
        }
        drop(writer);
        // The resumed run fills in the rest in parallel; bytes match a
        // clean end-to-end encode.
        let mut writer = StoreWriter::open(&out, 4, 7, true, &jcdn_chaos::Quiet).unwrap();
        writer.commit_interner(sharded.interner()).unwrap();
        writer.write_shards(&shards, 4).unwrap();
        assert_eq!(writer.shards_reused(), 2);
        writer.finalize().unwrap();
        let direct = encode_sharded(&sharded).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), direct.to_vec());
    }

    #[test]
    fn store_output_is_byte_identical_to_direct_encode() {
        let out = tmp_store("direct");
        let sharded = sample_sharded(100, 4);
        let mut writer = StoreWriter::open(&out, 4, 7, false, &jcdn_chaos::Quiet).unwrap();
        write_all(&mut writer, &sharded).unwrap();
        writer.finalize().unwrap();
        let direct = encode_sharded(&sharded).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), direct.to_vec());
        assert!(!staging_dir(&out).exists(), "staging cleaned up");
        let index = ShardIndex::load(&index_path(&out)).unwrap();
        assert!(index.complete);
        assert_eq!(index.shards.iter().flatten().count(), 4);
    }

    #[test]
    fn resume_reuses_committed_shards_and_matches_bytes() {
        let out = tmp_store("resume");
        let sharded = sample_sharded(100, 4);
        let tables = encode_tables(sharded.interner());

        // First run dies after committing shards 0 and 1.
        let mut writer = StoreWriter::open(&out, 4, 7, false, &jcdn_chaos::Quiet).unwrap();
        writer.commit_tables(&tables).unwrap();
        let mut last_time = None;
        let mut base = 0;
        for i in 0..2 {
            let records = sharded.shard_records(i);
            let frame = encode_frame(records, base, &mut last_time, i).unwrap();
            base += records.len();
            writer.commit_shard(i, &frame.bytes, frame.records).unwrap();
        }
        drop(writer); // simulated kill: no finalize

        // Resume completes the run and reuses the committed shards.
        let mut writer = StoreWriter::open(&out, 4, 7, true, &jcdn_chaos::Quiet).unwrap();
        assert!(writer.shard_committed(0) && writer.shard_committed(1));
        assert!(!writer.shard_committed(2));
        write_all(&mut writer, &sharded).unwrap();
        assert_eq!(writer.shards_reused(), 2);
        writer.finalize().unwrap();
        assert_eq!(
            std::fs::read(&out).unwrap(),
            encode_sharded(&sharded).unwrap().to_vec(),
            "resumed bytes identical to uninterrupted encode"
        );
    }

    #[test]
    fn resume_with_different_params_starts_fresh() {
        let out = tmp_store("params");
        let sharded = sample_sharded(40, 2);
        let mut writer = StoreWriter::open(&out, 2, 7, false, &jcdn_chaos::Quiet).unwrap();
        write_all(&mut writer, &sharded).unwrap();
        drop(writer);
        let writer = StoreWriter::open(&out, 2, 8, true, &jcdn_chaos::Quiet).unwrap();
        assert!(
            !writer.shard_committed(0),
            "different digest discards staging"
        );
    }

    #[test]
    fn damaged_staged_shard_is_recomputed_on_resume() {
        let out = tmp_store("damaged");
        let sharded = sample_sharded(100, 4);
        let mut writer = StoreWriter::open(&out, 4, 7, false, &jcdn_chaos::Quiet).unwrap();
        write_all(&mut writer, &sharded).unwrap();
        drop(writer); // killed before finalize

        // Corrupt one committed staged shard behind the index's back.
        let victim = shard_file(&staging_dir(&out), 2);
        let mut data = std::fs::read(&victim).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        std::fs::write(&victim, &data).unwrap();

        let mut writer = StoreWriter::open(&out, 4, 7, true, &jcdn_chaos::Quiet).unwrap();
        assert!(!writer.shard_committed(2), "damage detected at open");
        assert!(writer.shard_committed(1));
        write_all(&mut writer, &sharded).unwrap();
        assert_eq!(writer.shards_reused(), 3);
        writer.finalize().unwrap();
        assert_eq!(
            std::fs::read(&out).unwrap(),
            encode_sharded(&sharded).unwrap().to_vec()
        );
    }

    #[test]
    fn finalize_refuses_a_shard_damaged_after_open() {
        let out = tmp_store("late-damage");
        let sharded = sample_sharded(60, 3);
        let mut writer = StoreWriter::open(&out, 3, 7, false, &jcdn_chaos::Quiet).unwrap();
        write_all(&mut writer, &sharded).unwrap();
        // Damage after commit, before finalize: the re-verify must catch it.
        let victim = shard_file(&staging_dir(&out), 1);
        std::fs::write(&victim, b"garbage").unwrap();
        let err = writer.finalize().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("shard 1"), "{err}");
        assert!(!out.exists(), "no final file published");
        // The index entry was dropped, so a resume recomputes shard 1.
        let writer = StoreWriter::open(&out, 3, 7, true, &jcdn_chaos::Quiet).unwrap();
        assert!(!writer.shard_committed(1));
        assert!(writer.shard_committed(0) && writer.shard_committed(2));
    }

    #[test]
    fn injected_write_error_surfaces_as_io_error_and_resume_recovers() {
        let out = tmp_store("chaos-write");
        let sharded = sample_sharded(100, 4);
        // Writes: 1 index@open, 2 tables, 3 index, 4 shard0, 5 index, 6 shard1…
        let plan = jcdn_chaos::FailPlan::parse("write-error:6").unwrap();
        let mut writer = StoreWriter::open(&out, 4, 7, false, &plan).unwrap();
        let err = write_all(&mut writer, &sharded).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        drop(writer);

        let mut writer = StoreWriter::open(&out, 4, 7, true, &jcdn_chaos::Quiet).unwrap();
        assert!(writer.shard_committed(0), "shard 0 survived");
        assert!(!writer.shard_committed(1), "failed write left no entry");
        write_all(&mut writer, &sharded).unwrap();
        writer.finalize().unwrap();
        assert_eq!(
            std::fs::read(&out).unwrap(),
            encode_sharded(&sharded).unwrap().to_vec()
        );
    }

    #[test]
    fn truncated_staged_write_is_caught_by_index_verification() {
        let out = tmp_store("chaos-trunc");
        let sharded = sample_sharded(100, 4);
        // The 4th write is shard 0's frame; it lands torn but "successful".
        let plan = jcdn_chaos::FailPlan::parse("truncate:4:10").unwrap();
        let mut writer = StoreWriter::open(&out, 4, 7, false, &plan).unwrap();
        // The torn write goes unnoticed at commit time (as a real torn
        // write would)…
        write_all(&mut writer, &sharded).unwrap();
        // …but finalize's re-verification refuses to publish it.
        let err = writer.finalize().unwrap_err();
        assert!(err.to_string().contains("shard 0"), "{err}");

        let mut writer = StoreWriter::open(&out, 4, 7, true, &jcdn_chaos::Quiet).unwrap();
        assert!(!writer.shard_committed(0));
        write_all(&mut writer, &sharded).unwrap();
        writer.finalize().unwrap();
        assert_eq!(
            std::fs::read(&out).unwrap(),
            encode_sharded(&sharded).unwrap().to_vec()
        );
    }

    #[test]
    fn read_staged_salvages_committed_shards_and_reports_missing() {
        let out = tmp_store("staged-read");
        let sharded = sample_sharded(100, 4);
        let mut writer = StoreWriter::open(&out, 4, 7, false, &jcdn_chaos::Quiet).unwrap();
        writer
            .commit_tables(&encode_tables(sharded.interner()))
            .unwrap();
        let mut last_time = None;
        let mut base = 0;
        for i in 0..3 {
            let records = sharded.shard_records(i);
            let frame = encode_frame(records, base, &mut last_time, i).unwrap();
            base += records.len();
            writer.commit_shard(i, &frame.bytes, frame.records).unwrap();
        }
        drop(writer); // killed before shard 3

        let (salvaged, stats) = read_staged(&out).unwrap();
        assert_eq!(stats.shards_missing, 1);
        assert_eq!(stats.shard_count, 4);
        assert!(!stats.is_clean());
        assert_eq!(salvaged.shard_count(), 4);
        for i in 0..3 {
            assert_eq!(salvaged.shard_records(i), sharded.shard_records(i));
        }
        assert!(salvaged.shard_records(3).is_empty());
        assert_eq!(
            salvaged.interner().url_table(),
            sharded.interner().url_table()
        );
    }

    #[test]
    fn durable_write_leaves_no_tmp_file() {
        let out = tmp_store("tmp");
        durable_write(&out, b"hello".to_vec(), "test", &jcdn_chaos::Quiet).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), b"hello");
        assert!(!sibling(&out, ".tmp").exists());
    }
}
