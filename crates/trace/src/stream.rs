//! Streaming record access decoupled from trace storage.
//!
//! Analyses used to take `&Trace` and index into its tables directly, which
//! tied every consumer to the monolithic container. A [`RecordStream`] is a
//! borrowed view — an [`Interner`] plus one or more record slices — so the
//! same analysis code runs over a whole [`Trace`](crate::Trace), a single
//! shard of a [`ShardedTrace`](crate::ShardedTrace), or any ad-hoc record
//! subset, without copying records.

use crate::interner::Interner;
use crate::record::{LogRecord, UaId, UrlId};
use crate::trace::RecordView;

/// A read-only stream of records resolved against a shared interner.
#[derive(Clone, Debug)]
pub struct RecordStream<'t> {
    interner: &'t Interner,
    slices: Vec<&'t [LogRecord]>,
}

impl<'t> RecordStream<'t> {
    /// Builds a stream over `slices`, resolved against `interner`. Records
    /// must have been interned against that interner.
    pub fn new(interner: &'t Interner, slices: Vec<&'t [LogRecord]>) -> Self {
        RecordStream { interner, slices }
    }

    /// Total number of records across all slices.
    pub fn len(&self) -> usize {
        self.slices.iter().map(|s| s.len()).sum()
    }

    /// True when the stream yields no records.
    pub fn is_empty(&self) -> bool {
        self.slices.iter().all(|s| s.is_empty())
    }

    /// Iterates the raw records in slice order.
    pub fn iter(&self) -> impl Iterator<Item = &'t LogRecord> + '_ {
        self.slices.iter().flat_map(|s| s.iter())
    }

    /// Iterates records with their strings resolved.
    pub fn views(&self) -> impl Iterator<Item = RecordView<'t>> + '_ {
        self.iter().map(move |record| RecordView {
            record,
            url: self.interner.url(record.url),
            ua: record.ua.map(|id| self.interner.ua(id)),
        })
    }

    /// The interner backing this stream's ids.
    pub fn interner(&self) -> &'t Interner {
        self.interner
    }

    /// Resolves a URL id.
    pub fn url(&self, id: UrlId) -> &'t str {
        self.interner.url(id)
    }

    /// Resolves a UA id.
    pub fn ua(&self, id: UaId) -> &'t str {
        self.interner.ua(id)
    }

    /// The host part of an interned URL (no allocation).
    pub fn host_of(&self, id: UrlId) -> &'t str {
        self.interner.host_of(id)
    }

    /// Number of distinct URLs in the backing tables.
    pub fn url_count(&self) -> usize {
        self.interner.url_count()
    }

    /// Number of distinct UAs in the backing tables.
    pub fn ua_count(&self) -> usize {
        self.interner.ua_count()
    }
}

#[cfg(test)]
mod tests {
    use crate::record::{CacheStatus, ClientId, Method, MimeType, RecordFlags};
    use crate::time::SimTime;
    use crate::trace::Trace;

    fn sample() -> Trace {
        let mut t = Trace::new();
        let ua = t.intern_ua("curl/8.0");
        for i in 0..6u64 {
            let url = t.intern_url(&format!("https://h{}.example/o/{i}", i % 2));
            t.push(crate::LogRecord {
                time: SimTime::from_secs(i),
                client: ClientId(i),
                ua: (i % 2 == 0).then_some(ua),
                url,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: i * 10,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        t
    }

    #[test]
    fn stream_matches_trace_iteration() {
        let t = sample();
        let s = t.stream();
        assert_eq!(s.len(), t.len());
        assert!(!s.is_empty());
        let from_stream: Vec<_> = s.iter().copied().collect();
        assert_eq!(from_stream.as_slice(), t.records());
        let urls: Vec<&str> = s.views().map(|v| v.url).collect();
        let expected: Vec<&str> = t.iter().map(|v| v.url).collect();
        assert_eq!(urls, expected);
        assert_eq!(s.host_of(t.records()[0].url), "h0.example");
    }

    #[test]
    fn multi_slice_stream_concatenates() {
        let t = sample();
        let (head, tail) = t.records().split_at(2);
        let s = crate::RecordStream::new(t.interner(), vec![head, tail]);
        assert_eq!(s.len(), t.len());
        let all: Vec<_> = s.iter().copied().collect();
        assert_eq!(all.as_slice(), t.records());
    }

    #[test]
    fn empty_stream() {
        let t = Trace::new();
        let s = t.stream();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
