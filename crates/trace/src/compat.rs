//! Frozen encoders for historical codec versions 1–3.
//!
//! The live encoder in [`crate::codec`] always writes the current version;
//! these writers reproduce the retired on-disk layouts byte for byte so
//! the cross-version fixture suite (and anything that needs a legacy
//! payload, like the bench harness' before/after comparison) does not
//! depend on bytes that the main codec can no longer produce. They are
//! **frozen**: the layouts below must never change, because committed
//! fixture files assert byte equality against them.
//!
//! Layout recap (see `codec.rs` history for the originals):
//!
//! - **v1** — magic, version, url/ua tables, record-count varint, then an
//!   undelimited record stream. Records carry no retry/flags bytes.
//! - **v2** — v1 plus a `retries` byte and a `flags` byte per record.
//! - **v3** — v2's record layout wrapped in per-shard frames:
//!   `payload_len u32 LE | record-count varint | crc32 u32 LE | payload`,
//!   preceded by a shard-count varint. The time-delta base resets to 0 at
//!   every frame start.

use crate::codec::{
    cache_tag, crc32, encode_tables_versioned, len_u64, method_tag, mime_tag, put_varint, zigzag,
    EncodeError,
};
use crate::record::LogRecord;
use crate::sharded::ShardedTrace;
use crate::trace::Trace;
use bytes::{BufMut, Bytes, BytesMut};

/// Writes one record in the legacy row-major layout. `version` selects
/// whether the v2 resilience bytes (retries, flags) are present.
fn put_record(buf: &mut BytesMut, r: &LogRecord, prev_time: &mut i64, version: u16) {
    // jcdn-lint: allow(D4) -- the time axis caps at 2^63 µs (~292k simulated years)
    let t = r.time.as_micros() as i64;
    put_varint(buf, zigzag(t - *prev_time));
    *prev_time = t;
    put_varint(buf, r.client.0);
    put_varint(buf, r.ua.map_or(0, |ua| u64::from(ua.0) + 1));
    put_varint(buf, u64::from(r.url.0));
    buf.put_u8(method_tag(r.method));
    buf.put_u8(mime_tag(r.mime));
    buf.put_u8(cache_tag(r.cache));
    if version >= 2 {
        buf.put_u8(r.retries);
        buf.put_u8(r.flags.bits());
    }
    put_varint(buf, u64::from(r.status));
    put_varint(buf, r.response_bytes);
}

/// Rejects out-of-order records exactly like the live encoder, so legacy
/// payloads satisfy the same sortedness contract.
fn check_sorted(records: &[LogRecord]) -> Result<(), EncodeError> {
    for (index, pair) in records.windows(2).enumerate() {
        if pair[1].time < pair[0].time {
            return Err(EncodeError::OutOfOrder {
                index: index + 1,
                prev: pair[0].time,
                next: pair[1].time,
            });
        }
    }
    Ok(())
}

/// Encodes a trace in the undelimited v1/v2 stream layout.
fn encode_stream(trace: &Trace, version: u16) -> Result<Bytes, EncodeError> {
    check_sorted(trace.records())?;
    let mut buf = BytesMut::with_capacity(trace.len() * 16 + 1024);
    buf.put_slice(&encode_tables_versioned(trace.interner(), version));
    put_varint(&mut buf, len_u64(trace.len()));
    let mut prev_time = 0i64;
    for r in trace.records() {
        put_record(&mut buf, r, &mut prev_time, version);
    }
    Ok(buf.freeze())
}

/// Encodes a trace in the retired version-1 layout (no retry/flags bytes;
/// those fields are lost, which is why v1 equivalence checks zero them).
pub fn encode_v1(trace: &Trace) -> Result<Bytes, EncodeError> {
    encode_stream(trace, 1)
}

/// Encodes a trace in the retired version-2 layout (undelimited record
/// stream carrying the full record, no frames or CRC).
pub fn encode_v2(trace: &Trace) -> Result<Bytes, EncodeError> {
    encode_stream(trace, 2)
}

/// Encodes a sharded trace in the retired version-3 framed layout.
pub fn encode_sharded_v3(sharded: &ShardedTrace) -> Result<Bytes, EncodeError> {
    let shards: Vec<&[LogRecord]> = (0..sharded.shard_count())
        .map(|i| sharded.shard_records(i))
        .collect();
    let total: usize = shards.iter().map(|s| s.len()).sum();
    let mut buf = BytesMut::with_capacity(total * 16 + 1024);
    buf.put_slice(&encode_tables_versioned(sharded.interner(), 3));
    put_varint(&mut buf, len_u64(shards.len()));
    let mut index = 0usize;
    let mut last_time = None;
    for (shard_idx, shard) in shards.iter().enumerate() {
        // The cross-shard ordering check matches the live encoder's.
        for (offset, r) in shard.iter().enumerate() {
            if let Some(prev) = last_time {
                if r.time < prev {
                    return Err(EncodeError::OutOfOrder {
                        index: index + offset,
                        prev,
                        next: r.time,
                    });
                }
            }
            last_time = Some(r.time);
        }
        index += shard.len();
        let mut payload = BytesMut::with_capacity(shard.len() * 16 + 16);
        let mut prev_time = 0i64;
        for r in *shard {
            put_record(&mut payload, r, &mut prev_time, 3);
        }
        let payload = payload.freeze();
        let payload_len = u32::try_from(payload.len()).map_err(|_| EncodeError::FrameTooLarge {
            shard: shard_idx,
            bytes: payload.len(),
        })?;
        buf.put_u32_le(payload_len);
        put_varint(&mut buf, len_u64(shard.len()));
        buf.put_u32_le(crc32(&payload));
        buf.put_slice(&payload);
    }
    Ok(buf.freeze())
}

/// Encodes a trace in the retired version-3 layout as a single frame.
pub fn encode_v3(trace: &Trace) -> Result<Bytes, EncodeError> {
    encode_sharded_v3(&ShardedTrace::from_parts(
        trace.interner().clone(),
        vec![trace.records().to_vec()],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, decode_sharded, decode_sharded_tolerant};
    use crate::record::RecordFlags;
    use crate::time::SimTime;
    use crate::{CacheStatus, ClientId, Method, MimeType};

    fn sample(n: u64) -> Trace {
        let mut t = Trace::new();
        let ua = t.intern_ua("curl/8.0");
        let u = t.intern_url("https://h.example/x");
        for i in 0..n {
            t.push(LogRecord {
                time: SimTime::from_millis(i * 7),
                client: ClientId(i % 3),
                ua: (i % 2 == 0).then_some(ua),
                url: u,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: i,
                cache: CacheStatus::Hit,
                retries: (i % 3) as u8,
                flags: if i % 5 == 0 {
                    RecordFlags::RETRIED
                } else {
                    RecordFlags::NONE
                },
            });
        }
        t
    }

    #[test]
    fn legacy_encodes_decode_to_the_same_records() {
        let t = sample(40);
        let v2 = decode(encode_v2(&t).unwrap()).unwrap();
        assert_eq!(v2.records(), t.records());
        let v3 = decode(encode_v3(&t).unwrap()).unwrap();
        assert_eq!(v3.records(), t.records());
        // v1 loses the resilience fields; everything else survives.
        let v1 = decode(encode_v1(&t).unwrap()).unwrap();
        let mut expect = t.records().to_vec();
        for r in &mut expect {
            r.retries = 0;
            r.flags = RecordFlags::NONE;
        }
        assert_eq!(v1.records(), expect.as_slice());
    }

    #[test]
    fn sharded_v3_preserves_shard_boundaries() {
        let sharded = ShardedTrace::from_trace(sample(40), 4);
        let decoded = decode_sharded(encode_sharded_v3(&sharded).unwrap()).unwrap();
        assert_eq!(decoded.shard_count(), 4);
        for i in 0..4 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
    }

    #[test]
    fn legacy_encoders_reject_unsorted_records() {
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        for &time in &[5u64, 1] {
            t.push(LogRecord {
                time: SimTime::from_secs(time),
                client: ClientId(0),
                ua: None,
                url: u,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 1,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        for err in [
            encode_v1(&t).unwrap_err(),
            encode_v2(&t).unwrap_err(),
            encode_v3(&t).unwrap_err(),
        ] {
            assert!(matches!(err, EncodeError::OutOfOrder { index: 1, .. }));
        }
    }

    #[test]
    fn inflated_v3_frame_count_does_not_over_report_drops() {
        // Regression: a corrupted v3 record-count varint sits *outside*
        // the frame CRC, so the tolerant decoder must clamp the claimed
        // loss to what the payload could physically hold instead of
        // echoing the inflated number.
        let sharded = ShardedTrace::from_trace(sample(10), 2);
        let encoded = encode_sharded_v3(&sharded).unwrap();
        let mut data = encoded.to_vec();
        // tables: 4 magic + 2 version + 1 url count + 1 len + 19 url
        //         + 1 ua count + 1 len + 8 ua = 37; shard varint at 37;
        // frame 0 payload_len at 38..42, record count at 42.
        assert_eq!(data[42], 5, "frame 0 claims 5 records");
        data[42] = 7; // inflate the unprotected count
        let encoded_records = sharded.len() as u64;
        let (_, stats) = decode_sharded_tolerant(Bytes::from(data)).unwrap();
        assert_eq!(stats.frames_header_damaged, 1);
        assert!(!stats.is_clean());
        assert!(
            stats.records_decoded + stats.records_dropped <= encoded_records,
            "over-counted: {stats:?}"
        );
    }
}
