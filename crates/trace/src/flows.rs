//! Flow extraction (§5.1 of the paper).
//!
//! > *Let an object flow be the sequence of requests made by all clients to
//! > a specific object, identified by a unique URL in the dataset. Let a
//! > client-object flow, CO_flow, be a subsequence of object flow requests
//! > from one client, identified by a user agent and anonymized client IP
//! > pair.*
//!
//! Plus the paper's significance filters: client-object flows with fewer
//! than 10 requests and object flows with fewer than 10 clients are
//! discarded before periodicity analysis.

use std::collections::HashMap;

use crate::record::{ClientId, LogRecord, UaId, UrlId};
use crate::stream::RecordStream;
use crate::time::SimTime;
use crate::trace::Trace;

/// A client identity as the paper defines it: anonymized IP plus user agent.
pub type FlowClient = (ClientId, Option<UaId>);

/// One client's requests to one object, in time order.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientObjectFlow {
    /// The requesting client.
    pub client: FlowClient,
    /// Request times, sorted ascending.
    pub times: Vec<SimTime>,
}

impl ClientObjectFlow {
    /// Number of requests in the flow.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the flow has no requests (cannot occur for built flows).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Inter-arrival gaps between consecutive requests.
    pub fn interarrivals(&self) -> Vec<f64> {
        self.times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect()
    }
}

/// All requests to one object, grouped per client.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectFlow {
    /// The object URL.
    pub url: UrlId,
    /// Per-client subsequences.
    pub client_flows: Vec<ClientObjectFlow>,
}

impl ObjectFlow {
    /// Number of distinct clients.
    pub fn client_count(&self) -> usize {
        self.client_flows.len()
    }

    /// Total requests across all clients.
    pub fn request_count(&self) -> usize {
        self.client_flows.iter().map(ClientObjectFlow::len).sum()
    }

    /// All request times across clients, merged and sorted.
    pub fn merged_times(&self) -> Vec<SimTime> {
        let mut all: Vec<SimTime> = self
            .client_flows
            .iter()
            .flat_map(|cf| cf.times.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// The set of object flows extracted from a trace.
#[derive(Clone, Debug, Default)]
pub struct FlowSet {
    /// Flows in URL-id order.
    pub flows: Vec<ObjectFlow>,
}

impl FlowSet {
    /// Builds flows from every record matching `filter`.
    ///
    /// Within each flow, client subsequences are time-sorted; flow order
    /// follows `UrlId` so results are deterministic.
    pub fn build(trace: &Trace, filter: impl FnMut(&LogRecord) -> bool) -> FlowSet {
        Self::build_stream(&trace.stream(), filter)
    }

    /// [`build`][Self::build] over any record stream (a whole trace, one
    /// shard of a [`crate::ShardedTrace`], or several shards chained).
    pub fn build_stream(
        stream: &RecordStream<'_>,
        mut filter: impl FnMut(&LogRecord) -> bool,
    ) -> FlowSet {
        let mut by_object: HashMap<UrlId, HashMap<FlowClient, Vec<SimTime>>> = HashMap::new();
        for r in stream.iter() {
            if !filter(r) {
                continue;
            }
            by_object
                .entry(r.url)
                .or_default()
                .entry((r.client, r.ua))
                .or_default()
                .push(r.time);
        }
        let mut flows: Vec<ObjectFlow> = by_object
            .into_iter()
            .map(|(url, clients)| {
                let mut client_flows: Vec<ClientObjectFlow> = clients
                    .into_iter()
                    .map(|(client, mut times)| {
                        times.sort_unstable();
                        ClientObjectFlow { client, times }
                    })
                    .collect();
                client_flows.sort_by_key(|cf| cf.client);
                ObjectFlow { url, client_flows }
            })
            .collect();
        flows.sort_by_key(|f| f.url);
        FlowSet { flows }
    }

    /// Applies the paper's significance filters: drops client-object flows
    /// with fewer than `min_requests` requests, then object flows with
    /// fewer than `min_clients` remaining clients. The paper uses 10 / 10,
    /// "resulting in flows containing the top 25% of objects requested".
    pub fn apply_significance_filters(
        mut self,
        min_requests: usize,
        min_clients: usize,
    ) -> FlowSet {
        for flow in &mut self.flows {
            flow.client_flows.retain(|cf| cf.len() >= min_requests);
        }
        self.flows.retain(|f| f.client_count() >= min_clients);
        self
    }

    /// Number of object flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows survived.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total requests across all flows.
    pub fn request_count(&self) -> usize {
        self.flows.iter().map(ObjectFlow::request_count).sum()
    }
}

/// Per-client request sequences across *all* objects, time-ordered — the
/// training format of the n-gram model (§5.2: "requests are split into
/// client request flows").
///
/// Returns (client, [(time, url)]) pairs sorted by client for determinism.
pub fn client_sequences(
    trace: &Trace,
    filter: impl FnMut(&LogRecord) -> bool,
) -> Vec<(FlowClient, Vec<(SimTime, UrlId)>)> {
    client_sequences_stream(&trace.stream(), filter)
}

/// [`client_sequences`] over any record stream, so n-gram training can
/// consume shards without materializing a combined trace.
pub fn client_sequences_stream(
    stream: &RecordStream<'_>,
    mut filter: impl FnMut(&LogRecord) -> bool,
) -> Vec<(FlowClient, Vec<(SimTime, UrlId)>)> {
    let mut by_client: HashMap<FlowClient, Vec<(SimTime, UrlId)>> = HashMap::new();
    for r in stream.iter() {
        if !filter(r) {
            continue;
        }
        by_client
            .entry((r.client, r.ua))
            .or_default()
            .push((r.time, r.url));
    }
    let mut sequences: Vec<_> = by_client.into_iter().collect();
    for (_, seq) in &mut sequences {
        seq.sort_unstable_by_key(|&(t, _)| t);
    }
    sequences.sort_by_key(|&(client, _)| client);
    sequences
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CacheStatus, Method, MimeType, RecordFlags};

    fn push(trace: &mut Trace, t: u64, client: u64, url: &str) {
        let url = trace.intern_url(url);
        trace.push(LogRecord {
            time: SimTime::from_secs(t),
            client: ClientId(client),
            ua: None,
            url,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 10,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
    }

    #[test]
    fn groups_by_object_then_client() {
        let mut t = Trace::new();
        push(&mut t, 3, 1, "https://a.example/x");
        push(&mut t, 1, 1, "https://a.example/x");
        push(&mut t, 2, 2, "https://a.example/x");
        push(&mut t, 4, 1, "https://a.example/y");

        let flows = FlowSet::build(&t, |_| true);
        assert_eq!(flows.len(), 2);
        let x = &flows.flows[0];
        assert_eq!(x.client_count(), 2);
        assert_eq!(x.request_count(), 3);
        // Client 1's times are sorted despite insertion order.
        let c1 = &x.client_flows[0];
        assert_eq!(c1.times, vec![SimTime::from_secs(1), SimTime::from_secs(3)]);
        assert_eq!(x.merged_times().len(), 3);
        assert!(x.merged_times().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ua_distinguishes_clients() {
        let mut t = Trace::new();
        let ua = t.intern_ua("okhttp/3.12.1");
        push(&mut t, 1, 1, "https://a.example/x");
        let url = t.intern_url("https://a.example/x");
        t.push(LogRecord {
            time: SimTime::from_secs(2),
            client: ClientId(1),
            ua: Some(ua),
            url,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 10,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
        let flows = FlowSet::build(&t, |_| true);
        // Same IP, different UA → two client-object flows (§5.1).
        assert_eq!(flows.flows[0].client_count(), 2);
    }

    #[test]
    fn significance_filters_match_paper_rules() {
        let mut t = Trace::new();
        // Object A: 12 clients, each with 12 requests → survives.
        for c in 0..12 {
            for i in 0..12 {
                push(&mut t, c * 1000 + i * 10, c, "https://a.example/hot");
            }
        }
        // Object B: 12 clients but only 3 requests each → all client flows
        // drop, then the object drops.
        for c in 0..12 {
            for i in 0..3 {
                push(&mut t, c * 1000 + i * 10, 100 + c, "https://a.example/cold");
            }
        }
        // Object C: 2 clients with 20 requests each → too few clients.
        for c in 0..2 {
            for i in 0..20 {
                push(&mut t, c * 1000 + i * 10, 200 + c, "https://a.example/duo");
            }
        }
        let flows = FlowSet::build(&t, |_| true).apply_significance_filters(10, 10);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows.flows[0].client_count(), 12);
    }

    #[test]
    fn filter_predicate_limits_records() {
        let mut t = Trace::new();
        push(&mut t, 1, 1, "https://a.example/x");
        push(&mut t, 2, 1, "https://a.example/y");
        let flows = FlowSet::build(&t, |r| r.url.0 == 0);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows.request_count(), 1);
    }

    #[test]
    fn client_sequences_are_time_ordered_per_client() {
        let mut t = Trace::new();
        push(&mut t, 5, 1, "https://a.example/b");
        push(&mut t, 1, 1, "https://a.example/a");
        push(&mut t, 3, 2, "https://a.example/c");
        let seqs = client_sequences(&t, |_| true);
        assert_eq!(seqs.len(), 2);
        let (client, seq) = &seqs[0];
        assert_eq!(client.0, ClientId(1));
        let urls: Vec<u32> = seq.iter().map(|&(_, u)| u.0).collect();
        // url ids: b=0, a=1 — time order puts a (t=1) first.
        assert_eq!(urls, vec![1, 0]);
    }

    #[test]
    fn interarrivals() {
        let cf = ClientObjectFlow {
            client: (ClientId(0), None),
            times: vec![
                SimTime::from_secs(0),
                SimTime::from_secs(30),
                SimTime::from_secs(90),
            ],
        };
        assert_eq!(cf.interarrivals(), vec![30.0, 60.0]);
    }
}
