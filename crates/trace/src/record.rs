//! The per-request log record and its field vocabulary.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Anonymized client identity: the paper identifies a client by a *hashed
/// IP + user-agent pair* (§5.1). The IP hash is stored here; the UA travels
/// separately as a [`UaId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u64);

/// Interned user-agent string index within a [`crate::Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UaId(pub u32);

/// Interned URL index within a [`crate::Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UrlId(pub u32);

/// HTTP request method.
///
/// The paper's request-type taxonomy needs only the GET/POST distinction
/// (downloads vs. uploads, §3.2), but logs carry the rest too.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Download (the paper: 84% of JSON requests).
    Get,
    /// Upload (96% of the non-GET remainder).
    Post,
    /// Metadata probe.
    Head,
    /// Idempotent upload.
    Put,
    /// Deletion.
    Delete,
}

impl Method {
    /// True for methods the paper counts as downloads.
    pub fn is_download(self) -> bool {
        matches!(self, Method::Get | Method::Head)
    }

    /// True for methods the paper counts as uploads.
    pub fn is_upload(self) -> bool {
        matches!(self, Method::Post | Method::Put)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// Response content type, from the HTTP `Content-Type` (mime) header.
///
/// The paper filters on `application/json`; the trend analysis (Figure 1)
/// also tracks HTML, CSS, and JavaScript.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MimeType {
    /// `application/json`.
    Json,
    /// `text/html`.
    Html,
    /// `text/css`.
    Css,
    /// `application/javascript` / `text/javascript`.
    JavaScript,
    /// `image/*`.
    Image,
    /// `video/*`.
    Video,
    /// Everything else.
    Other,
}

impl MimeType {
    /// Parses a raw `Content-Type` header value, the way the paper's filter
    /// does: substring match on the media type, parameters ignored.
    pub fn from_header(value: &str) -> MimeType {
        let lower = value.trim().to_ascii_lowercase();
        let media = lower.split(';').next().unwrap_or("").trim();
        match media {
            "application/json" => MimeType::Json,
            "text/html" => MimeType::Html,
            "text/css" => MimeType::Css,
            "application/javascript" | "text/javascript" | "application/x-javascript" => {
                MimeType::JavaScript
            }
            m if m.starts_with("image/") => MimeType::Image,
            m if m.starts_with("video/") => MimeType::Video,
            // `application/vnd.api+json` and friends still carry JSON.
            m if m.ends_with("+json") => MimeType::Json,
            _ => MimeType::Other,
        }
    }

    /// Canonical header value.
    pub fn as_header(self) -> &'static str {
        match self {
            MimeType::Json => "application/json",
            MimeType::Html => "text/html",
            MimeType::Css => "text/css",
            MimeType::JavaScript => "application/javascript",
            MimeType::Image => "image/jpeg",
            MimeType::Video => "video/mp4",
            MimeType::Other => "application/octet-stream",
        }
    }
}

impl fmt::Display for MimeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_header())
    }
}

/// How the CDN edge cache handled the request ("object caching
/// information" in the log schema).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheStatus {
    /// Served from edge cache.
    Hit,
    /// Cacheable, but fetched from origin (cold or expired).
    Miss,
    /// Customer configuration marks the object uncacheable; tunneled to
    /// origin. The paper: 55% of JSON traffic.
    NotCacheable,
}

impl CacheStatus {
    /// True when the customer configuration allows caching this object.
    pub fn is_cacheable(self) -> bool {
        !matches!(self, CacheStatus::NotCacheable)
    }

    /// True when the response came from edge cache.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheStatus::Hit)
    }
}

/// One edge-server request log line (§3.1 field list).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Request arrival time at the edge.
    pub time: SimTime,
    /// Hashed client IP.
    pub client: ClientId,
    /// Interned user-agent (None ⇒ header absent).
    pub ua: Option<UaId>,
    /// Interned request URL.
    pub url: UrlId,
    /// HTTP method.
    pub method: Method,
    /// Response content type.
    pub mime: MimeType,
    /// HTTP response status.
    pub status: u16,
    /// Response body size in bytes.
    pub response_bytes: u64,
    /// Edge cache disposition.
    pub cache: CacheStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_taxonomy() {
        assert!(Method::Get.is_download());
        assert!(Method::Head.is_download());
        assert!(Method::Post.is_upload());
        assert!(Method::Put.is_upload());
        assert!(!Method::Get.is_upload());
        assert!(!Method::Delete.is_download());
    }

    #[test]
    fn mime_parsing() {
        assert_eq!(MimeType::from_header("application/json"), MimeType::Json);
        assert_eq!(
            MimeType::from_header("application/json; charset=utf-8"),
            MimeType::Json
        );
        assert_eq!(
            MimeType::from_header("Application/JSON"),
            MimeType::Json,
            "matching is case-insensitive"
        );
        assert_eq!(
            MimeType::from_header("application/vnd.api+json"),
            MimeType::Json
        );
        assert_eq!(
            MimeType::from_header("text/html; charset=utf-8"),
            MimeType::Html
        );
        assert_eq!(
            MimeType::from_header("text/javascript"),
            MimeType::JavaScript
        );
        assert_eq!(MimeType::from_header("image/png"), MimeType::Image);
        assert_eq!(MimeType::from_header("video/webm"), MimeType::Video);
        assert_eq!(MimeType::from_header("font/woff2"), MimeType::Other);
        assert_eq!(MimeType::from_header(""), MimeType::Other);
    }

    #[test]
    fn mime_round_trips_canonical_header() {
        for mime in [
            MimeType::Json,
            MimeType::Html,
            MimeType::Css,
            MimeType::JavaScript,
        ] {
            assert_eq!(MimeType::from_header(mime.as_header()), mime);
        }
    }

    #[test]
    fn cache_status_predicates() {
        assert!(CacheStatus::Hit.is_cacheable());
        assert!(CacheStatus::Hit.is_hit());
        assert!(CacheStatus::Miss.is_cacheable());
        assert!(!CacheStatus::Miss.is_hit());
        assert!(!CacheStatus::NotCacheable.is_cacheable());
    }
}
