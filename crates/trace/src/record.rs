//! The per-request log record and its field vocabulary.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Anonymized client identity: the paper identifies a client by a *hashed
/// IP + user-agent pair* (§5.1). The IP hash is stored here; the UA travels
/// separately as a [`UaId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u64);

/// Interned user-agent string index within a [`crate::Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UaId(pub u32);

impl UaId {
    /// The id as a table index.
    pub(crate) fn index(self) -> usize {
        // jcdn-lint: allow(D4) -- u32 → usize cannot truncate on ≥32-bit targets
        self.0 as usize
    }
}

/// Interned URL index within a [`crate::Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UrlId(pub u32);

impl UrlId {
    /// The id as a table index.
    pub(crate) fn index(self) -> usize {
        // jcdn-lint: allow(D4) -- u32 → usize cannot truncate on ≥32-bit targets
        self.0 as usize
    }
}

/// HTTP request method.
///
/// The paper's request-type taxonomy needs only the GET/POST distinction
/// (downloads vs. uploads, §3.2), but logs carry the rest too.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Download (the paper: 84% of JSON requests).
    Get,
    /// Upload (96% of the non-GET remainder).
    Post,
    /// Metadata probe.
    Head,
    /// Idempotent upload.
    Put,
    /// Deletion.
    Delete,
}

impl Method {
    /// True for methods the paper counts as downloads.
    pub fn is_download(self) -> bool {
        matches!(self, Method::Get | Method::Head)
    }

    /// True for methods the paper counts as uploads.
    pub fn is_upload(self) -> bool {
        matches!(self, Method::Post | Method::Put)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// Response content type, from the HTTP `Content-Type` (mime) header.
///
/// The paper filters on `application/json`; the trend analysis (Figure 1)
/// also tracks HTML, CSS, and JavaScript.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MimeType {
    /// `application/json`.
    Json,
    /// `text/html`.
    Html,
    /// `text/css`.
    Css,
    /// `application/javascript` / `text/javascript`.
    JavaScript,
    /// `image/*`.
    Image,
    /// `video/*`.
    Video,
    /// Everything else.
    Other,
}

impl MimeType {
    /// Parses a raw `Content-Type` header value, the way the paper's filter
    /// does: substring match on the media type, parameters ignored.
    pub fn from_header(value: &str) -> MimeType {
        let lower = value.trim().to_ascii_lowercase();
        let media = lower.split(';').next().unwrap_or("").trim();
        match media {
            "application/json" => MimeType::Json,
            "text/html" => MimeType::Html,
            "text/css" => MimeType::Css,
            "application/javascript" | "text/javascript" | "application/x-javascript" => {
                MimeType::JavaScript
            }
            m if m.starts_with("image/") => MimeType::Image,
            m if m.starts_with("video/") => MimeType::Video,
            // `application/vnd.api+json` and friends still carry JSON.
            m if m.ends_with("+json") => MimeType::Json,
            _ => MimeType::Other,
        }
    }

    /// Canonical header value.
    pub fn as_header(self) -> &'static str {
        match self {
            MimeType::Json => "application/json",
            MimeType::Html => "text/html",
            MimeType::Css => "text/css",
            MimeType::JavaScript => "application/javascript",
            MimeType::Image => "image/jpeg",
            MimeType::Video => "video/mp4",
            MimeType::Other => "application/octet-stream",
        }
    }
}

impl fmt::Display for MimeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_header())
    }
}

/// How the CDN edge cache handled the request ("object caching
/// information" in the log schema).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CacheStatus {
    /// Served from edge cache.
    Hit,
    /// Cacheable, but fetched from origin (cold or expired).
    Miss,
    /// Customer configuration marks the object uncacheable; tunneled to
    /// origin. The paper: 55% of JSON traffic.
    NotCacheable,
}

impl CacheStatus {
    /// True when the customer configuration allows caching this object.
    pub fn is_cacheable(self) -> bool {
        !matches!(self, CacheStatus::NotCacheable)
    }

    /// True when the response came from edge cache.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheStatus::Hit)
    }
}

/// Resilience annotations on a log record, packed as a bit set.
///
/// Real edge logs mark how a response was produced when the origin was
/// unhealthy; the fault-injection subsystem (`cdnsim::fault`) sets these so
/// availability analyses can separate end-user failures from retried or
/// gracefully degraded responses.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RecordFlags(u8);

impl RecordFlags {
    /// No annotations.
    pub const NONE: RecordFlags = RecordFlags(0);
    /// The edge answered with an expired cache entry (stale-if-error).
    pub const SERVED_STALE: RecordFlags = RecordFlags(1);
    /// The request rode an already in-flight origin fetch for the same
    /// object instead of issuing its own.
    pub const COALESCED: RecordFlags = RecordFlags(1 << 1);
    /// This attempt failed and a retry was scheduled; a later record with a
    /// higher retry count continues the request.
    pub const RETRIED: RecordFlags = RecordFlags(1 << 2);
    /// Answered from the negative cache (a recent origin 5xx for this
    /// object), without contacting the origin.
    pub const NEG_CACHED: RecordFlags = RecordFlags(1 << 3);

    /// All bits that are currently defined. Codec v4 packs flags two per
    /// byte, so a new flag past bit 3 needs a codec version bump first.
    const ALL: u8 = 0b1111;

    /// Reconstructs flags from their wire byte; unknown bits are an error.
    pub fn from_bits(bits: u8) -> Option<RecordFlags> {
        (bits & !Self::ALL == 0).then_some(RecordFlags(bits))
    }

    /// The wire byte.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True when every bit of `other` is set in `self`.
    pub fn contains(self, other: RecordFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `self` with the bits of `other` added.
    #[must_use]
    pub fn with(self, other: RecordFlags) -> RecordFlags {
        RecordFlags(self.0 | other.0)
    }

    /// Adds the bits of `other` in place.
    pub fn insert(&mut self, other: RecordFlags) {
        self.0 |= other.0;
    }

    /// True when no annotation is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for RecordFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (flag, name) in [
            (RecordFlags::SERVED_STALE, "stale"),
            (RecordFlags::COALESCED, "coalesced"),
            (RecordFlags::RETRIED, "retried"),
            (RecordFlags::NEG_CACHED, "neg-cached"),
        ] {
            if self.contains(flag) {
                if !first {
                    f.write_str(",")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// One edge-server request log line (§3.1 field list, plus the resilience
/// columns real CDN logs carry: status, retry attempt, and degradation
/// flags).
// `Ord` compares fields in declaration order — `time` first — so a full
// sort doubles as a canonical, insertion-order-independent time sort
// (see `Trace::sort_canonical`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LogRecord {
    /// Request arrival time at the edge.
    pub time: SimTime,
    /// Hashed client IP.
    pub client: ClientId,
    /// Interned user-agent (None ⇒ header absent).
    pub ua: Option<UaId>,
    /// Interned request URL.
    pub url: UrlId,
    /// HTTP method.
    pub method: Method,
    /// Response content type.
    pub mime: MimeType,
    /// HTTP response status.
    pub status: u16,
    /// Response body size in bytes.
    pub response_bytes: u64,
    /// Edge cache disposition.
    pub cache: CacheStatus,
    /// Which attempt of the logical request this record is (0 = first try).
    pub retries: u8,
    /// Resilience annotations (stale serve, coalesced fetch, …).
    pub flags: RecordFlags,
}

impl LogRecord {
    /// True when the response was an error (HTTP 5xx).
    pub fn is_error(&self) -> bool {
        self.status >= 500
    }

    /// True when this attempt failed *and* no retry follows it — i.e. the
    /// failure reached the end user.
    pub fn is_end_user_failure(&self) -> bool {
        self.is_error() && !self.flags.contains(RecordFlags::RETRIED)
    }
}

// Codec v4 stores record flags in a nibble; this fails to compile if a
// fifth flag bit is ever defined without widening that column.
const _: () = assert!(RecordFlags::ALL <= 0x0F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_taxonomy() {
        assert!(Method::Get.is_download());
        assert!(Method::Head.is_download());
        assert!(Method::Post.is_upload());
        assert!(Method::Put.is_upload());
        assert!(!Method::Get.is_upload());
        assert!(!Method::Delete.is_download());
    }

    #[test]
    fn mime_parsing() {
        assert_eq!(MimeType::from_header("application/json"), MimeType::Json);
        assert_eq!(
            MimeType::from_header("application/json; charset=utf-8"),
            MimeType::Json
        );
        assert_eq!(
            MimeType::from_header("Application/JSON"),
            MimeType::Json,
            "matching is case-insensitive"
        );
        assert_eq!(
            MimeType::from_header("application/vnd.api+json"),
            MimeType::Json
        );
        assert_eq!(
            MimeType::from_header("text/html; charset=utf-8"),
            MimeType::Html
        );
        assert_eq!(
            MimeType::from_header("text/javascript"),
            MimeType::JavaScript
        );
        assert_eq!(MimeType::from_header("image/png"), MimeType::Image);
        assert_eq!(MimeType::from_header("video/webm"), MimeType::Video);
        assert_eq!(MimeType::from_header("font/woff2"), MimeType::Other);
        assert_eq!(MimeType::from_header(""), MimeType::Other);
    }

    #[test]
    fn mime_round_trips_canonical_header() {
        for mime in [
            MimeType::Json,
            MimeType::Html,
            MimeType::Css,
            MimeType::JavaScript,
        ] {
            assert_eq!(MimeType::from_header(mime.as_header()), mime);
        }
    }

    #[test]
    fn record_flags_round_trip_bits() {
        let mut flags = RecordFlags::NONE;
        assert!(flags.is_empty());
        flags.insert(RecordFlags::SERVED_STALE);
        flags.insert(RecordFlags::RETRIED);
        assert!(flags.contains(RecordFlags::SERVED_STALE));
        assert!(flags.contains(RecordFlags::RETRIED));
        assert!(!flags.contains(RecordFlags::COALESCED));
        assert_eq!(RecordFlags::from_bits(flags.bits()), Some(flags));
        assert_eq!(RecordFlags::from_bits(0xF0), None, "unknown bits rejected");
        assert_eq!(flags.to_string(), "stale,retried");
        assert_eq!(RecordFlags::NONE.to_string(), "-");
    }

    #[test]
    fn cache_status_predicates() {
        assert!(CacheStatus::Hit.is_cacheable());
        assert!(CacheStatus::Hit.is_hit());
        assert!(CacheStatus::Miss.is_cacheable());
        assert!(!CacheStatus::Miss.is_hit());
        assert!(!CacheStatus::NotCacheable.is_cacheable());
    }
}
