//! Explicit simulated time.
//!
//! The whole workspace runs on simulated time: the workload generator
//! schedules requests at [`SimTime`]s, the discrete-event simulator advances
//! a clock of the same type, and the analysis reads timestamps back out of
//! the logs. There is deliberately no conversion to wall-clock types —
//! everything is microseconds since the start of the simulated epoch.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time (microseconds since the simulated epoch).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulated epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Constructs from float seconds (negative or non-finite clamps to 0).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).as_micros())
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for signal processing).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One microsecond.
    pub const MICROSECOND: SimDuration = SimDuration(1);
    /// One millisecond.
    pub const MILLISECOND: SimDuration = SimDuration(1_000);
    /// One second.
    pub const SECOND: SimDuration = SimDuration(1_000_000);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(60_000_000);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(3_600_000_000);
    /// One (simulated) day.
    pub const DAY: SimDuration = SimDuration(86_400_000_000);

    /// Constructs from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Constructs from float seconds (negative or non-finite clamps to 0).
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            // jcdn-lint: allow(D4) -- float → u64 saturates; input is checked finite and positive
            SimDuration((s * 1e6).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor.
    pub const fn mul(self, factor: u64) -> Self {
        SimDuration(self.0 * factor)
    }

    /// Integer division of the span.
    pub const fn div(self, divisor: u64) -> Self {
        SimDuration(self.0 / divisor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        // jcdn-lint: allow(D3) -- Sub cannot return Result; a backwards clock is a caller bug
        SimDuration(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 60_000_000 && us.is_multiple_of(60_000_000) {
            write!(f, "{}m", us / 60_000_000)
        } else if us >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if us >= 1_000 {
            write!(f, "{}ms", us / 1_000)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_agree() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::MINUTE.as_secs(), 60);
        assert_eq!(SimDuration::DAY.as_secs(), 86_400);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
        assert_eq!(
            SimDuration::SECOND + SimDuration::MILLISECOND,
            SimDuration::from_micros(1_001_000)
        );
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn subtracting_later_time_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_micros(), 1_250_000);
        assert_eq!(d.as_secs_f64(), 1.25);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.000s");
        assert_eq!(SimDuration::from_secs(120).to_string(), "2m");
        assert_eq!(SimDuration::from_millis(30).to_string(), "30ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }
}
