//! The trace container with string interning.

use std::sync::Arc;

use crate::interner::{InternError, Interner};
use crate::record::{LogRecord, UaId, UrlId};
use crate::stream::RecordStream;
use crate::time::SimTime;

/// An in-memory collection of [`LogRecord`]s with interned URL and
/// user-agent strings.
///
/// Interning matters: the short-term dataset in the paper has 25M logs over
/// ~5K domains — URLs and UAs repeat constantly. Records store 4-byte ids;
/// the tables resolve them back to strings.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    interner: Interner,
    records: Vec<LogRecord>,
}

/// A record with its interned strings resolved.
#[derive(Clone, Copy, Debug)]
pub struct RecordView<'t> {
    /// The raw record.
    pub record: &'t LogRecord,
    /// The request URL.
    pub url: &'t str,
    /// The user-agent header, when present.
    pub ua: Option<&'t str>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with capacity for `records` records.
    pub fn with_capacity(records: usize) -> Self {
        Trace {
            records: Vec::with_capacity(records),
            ..Trace::default()
        }
    }

    /// Builds a trace from an interner and records produced against it.
    pub fn from_parts(interner: Interner, records: Vec<LogRecord>) -> Self {
        Trace { interner, records }
    }

    /// Splits the trace into its interner and record vector.
    pub fn into_parts(self) -> (Interner, Vec<LogRecord>) {
        (self.interner, self.records)
    }

    /// The string tables backing this trace's ids.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Interns a URL string, returning its id.
    pub fn intern_url(&mut self, url: &str) -> UrlId {
        self.interner.intern_url(url)
    }

    /// Interns a user-agent string, returning its id.
    pub fn intern_ua(&mut self, ua: &str) -> UaId {
        self.interner.intern_ua(ua)
    }

    /// Fallible twin of [`intern_url`][Self::intern_url]: reports id-space
    /// exhaustion instead of panicking.
    pub fn try_intern_url(&mut self, url: &str) -> Result<UrlId, InternError> {
        self.interner.try_intern_url(url)
    }

    /// Fallible twin of [`intern_ua`][Self::intern_ua].
    pub fn try_intern_ua(&mut self, ua: &str) -> Result<UaId, InternError> {
        self.interner.try_intern_ua(ua)
    }

    /// Appends a record. The record's ids must have been produced by this
    /// trace's `intern_*` methods.
    pub fn push(&mut self, record: LogRecord) {
        debug_assert!(
            record.url.index() < self.interner.url_count(),
            "foreign UrlId"
        );
        debug_assert!(
            record
                .ua
                .is_none_or(|ua| ua.index() < self.interner.ua_count()),
            "foreign UaId"
        );
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in insertion order (or time order after
    /// [`sort_by_time`][Trace::sort_by_time]).
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// A streaming view over this trace's records and tables.
    pub fn stream(&self) -> RecordStream<'_> {
        RecordStream::new(&self.interner, vec![&self.records])
    }

    /// Resolves a URL id.
    pub fn url(&self, id: UrlId) -> &str {
        self.interner.url(id)
    }

    /// Resolves a UA id.
    pub fn ua(&self, id: UaId) -> &str {
        self.interner.ua(id)
    }

    /// Looks up the id of an already-interned URL.
    pub fn find_url(&self, url: &str) -> Option<UrlId> {
        self.interner.find_url(url)
    }

    /// All interned URLs, indexed by `UrlId`.
    pub fn url_table(&self) -> &[Arc<str>] {
        self.interner.url_table()
    }

    /// All interned UAs, indexed by `UaId`.
    pub fn ua_table(&self) -> &[Arc<str>] {
        self.interner.ua_table()
    }

    /// Number of distinct URLs.
    pub fn url_count(&self) -> usize {
        self.interner.url_count()
    }

    /// Number of distinct user agents.
    pub fn ua_count(&self) -> usize {
        self.interner.ua_count()
    }

    /// Resolves one record's strings.
    pub fn view<'t>(&'t self, record: &'t LogRecord) -> RecordView<'t> {
        RecordView {
            record,
            url: self.url(record.url),
            ua: record.ua.map(|id| self.ua(id)),
        }
    }

    /// Iterates resolved records.
    pub fn iter(&self) -> impl Iterator<Item = RecordView<'_>> {
        self.records.iter().map(move |r| self.view(r))
    }

    /// Sorts records by timestamp (stable, so same-time records keep
    /// insertion order).
    pub fn sort_by_time(&mut self) {
        self.records.sort_by_key(|r| r.time);
    }

    /// Sorts records by the full field order (time first). Unlike
    /// [`sort_by_time`][Trace::sort_by_time] this yields one canonical
    /// permutation for any input order of the same record multiset, which
    /// is what makes sharded pipeline output reproducible regardless of
    /// worker count.
    pub fn sort_canonical(&mut self) {
        self.records.sort_unstable();
    }

    /// Earliest and latest record times, or `None` when empty.
    pub fn time_span(&self) -> Option<(SimTime, SimTime)> {
        let first = self.records.iter().map(|r| r.time).min()?;
        let last = self.records.iter().map(|r| r.time).max()?;
        Some((first, last))
    }

    /// The host part of an interned URL (up to the first `/`, skipping any
    /// scheme), without allocating.
    pub fn host_of(&self, id: UrlId) -> &str {
        self.interner.host_of(id)
    }

    /// Appends all records of `other`, re-interning its strings into this
    /// trace's tables. Used to combine captures from multiple vantage
    /// points into one dataset (the paper's long-term dataset pools three
    /// Seattle vantage points). Call [`sort_by_time`][Trace::sort_by_time]
    /// afterwards if a chronological view is needed.
    pub fn merge(&mut self, other: &Trace) {
        let url_map: Vec<UrlId> = other
            .url_table()
            .iter()
            .map(|url| self.intern_url(url))
            .collect();
        let ua_map: Vec<UaId> = other
            .ua_table()
            .iter()
            .map(|ua| self.intern_ua(ua))
            .collect();
        self.records.reserve(other.len());
        for r in other.records() {
            let mut record = *r;
            record.url = url_map[r.url.index()];
            record.ua = r.ua.map(|ua| ua_map[ua.index()]);
            self.records.push(record);
        }
    }

    /// Retains only records matching the predicate (tables are left
    /// untouched — ids stay valid).
    pub fn retain(&mut self, mut predicate: impl FnMut(&LogRecord) -> bool) {
        self.records.retain(|r| predicate(r));
    }
}

/// Extracts the host part of a URL string without full parsing.
pub(crate) fn host_of_url(url: &str) -> &str {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))
        .or_else(|| url.strip_prefix("//"))
        .unwrap_or(url);
    let end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
    let authority = &rest[..end];
    // Strip a port.
    match authority.rsplit_once(':') {
        Some((host, port)) if !port.is_empty() && port.bytes().all(|b| b.is_ascii_digit()) => host,
        _ => authority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CacheStatus, ClientId, Method, MimeType, RecordFlags};

    fn record(trace: &mut Trace, t: u64, url: &str) -> LogRecord {
        let url = trace.intern_url(url);
        LogRecord {
            time: SimTime::from_secs(t),
            client: ClientId(1),
            ua: None,
            url,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 100,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        }
    }

    #[test]
    fn interning_deduplicates() {
        let mut t = Trace::new();
        let a = t.intern_url("https://h.example/a");
        let b = t.intern_url("https://h.example/b");
        let a2 = t.intern_url("https://h.example/a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.url_count(), 2);
        assert_eq!(t.url(a), "https://h.example/a");
        assert_eq!(t.find_url("https://h.example/b"), Some(b));
        assert_eq!(t.find_url("https://h.example/c"), None);
    }

    #[test]
    fn view_resolves_strings() {
        let mut t = Trace::new();
        let ua = t.intern_ua("okhttp/3.12.1");
        let mut r = record(&mut t, 1, "https://h.example/x");
        r.ua = Some(ua);
        t.push(r);
        let v = t.iter().next().unwrap();
        assert_eq!(v.url, "https://h.example/x");
        assert_eq!(v.ua, Some("okhttp/3.12.1"));
    }

    #[test]
    fn sort_and_time_span() {
        let mut t = Trace::new();
        let r3 = record(&mut t, 3, "https://h.example/3");
        let r1 = record(&mut t, 1, "https://h.example/1");
        let r2 = record(&mut t, 2, "https://h.example/2");
        t.push(r3);
        t.push(r1);
        t.push(r2);
        t.sort_by_time();
        let times: Vec<u64> = t.records().iter().map(|r| r.time.as_secs()).collect();
        assert_eq!(times, vec![1, 2, 3]);
        assert_eq!(
            t.time_span(),
            Some((SimTime::from_secs(1), SimTime::from_secs(3)))
        );
        assert_eq!(Trace::new().time_span(), None);
    }

    #[test]
    fn canonical_sort_is_order_insensitive() {
        let build = |order: &[usize]| {
            let mut t = Trace::new();
            let mut rs = Vec::new();
            for i in 0..6u64 {
                // Duplicate timestamps so plain time sorting would depend
                // on insertion order.
                let mut r = record(&mut t, i / 2, &format!("https://h.example/{i}"));
                r.client = ClientId(i % 3);
                rs.push(r);
            }
            for &i in order {
                t.push(rs[i]);
            }
            t.sort_canonical();
            t.records().to_vec()
        };
        let a = build(&[0, 1, 2, 3, 4, 5]);
        let b = build(&[5, 3, 1, 4, 2, 0]);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of_url("https://a.example:8443/x/y"), "a.example");
        assert_eq!(host_of_url("http://b.example/"), "b.example");
        assert_eq!(host_of_url("//c.example?q=1"), "c.example");
        assert_eq!(host_of_url("d.example/path"), "d.example");
        assert_eq!(host_of_url("e.example"), "e.example");
    }

    #[test]
    fn merge_reinterns_and_preserves_records() {
        let mut a = Trace::new();
        let shared_a = record(&mut a, 1, "https://shared.example/x");
        a.push(shared_a);

        let mut b = Trace::new();
        let ua = b.intern_ua("okhttp/3.12.1");
        let mut rb = record(&mut b, 2, "https://only-b.example/y");
        rb.ua = Some(ua);
        b.push(rb);
        let shared_b = record(&mut b, 3, "https://shared.example/x");
        b.push(shared_b);

        a.merge(&b);
        assert_eq!(a.len(), 3);
        // The shared URL deduplicates; only-b's URL is added.
        assert_eq!(a.url_count(), 2);
        assert_eq!(a.ua_count(), 1);
        let views: Vec<_> = a.iter().collect();
        assert_eq!(views[1].url, "https://only-b.example/y");
        assert_eq!(views[1].ua, Some("okhttp/3.12.1"));
        assert_eq!(views[2].url, "https://shared.example/x");
        // Both records of the shared URL resolve to the same id.
        assert_eq!(a.records()[0].url, a.records()[2].url);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Trace::new();
        let r = record(&mut a, 1, "https://a.example/x");
        a.push(r);
        let before = a.records().to_vec();
        a.merge(&Trace::new());
        assert_eq!(a.records(), before.as_slice());
    }

    #[test]
    fn retain_filters_records() {
        let mut t = Trace::new();
        for i in 0..10 {
            let r = record(&mut t, i, &format!("https://h.example/{i}"));
            t.push(r);
        }
        t.retain(|r| r.time.as_secs() % 2 == 0);
        assert_eq!(t.len(), 5);
        // Tables are untouched.
        assert_eq!(t.url_count(), 10);
    }

    #[test]
    fn parts_round_trip() {
        let mut t = Trace::new();
        let r = record(&mut t, 1, "https://a.example/x");
        t.push(r);
        let (interner, records) = t.into_parts();
        let t2 = Trace::from_parts(interner, records);
        assert_eq!(t2.len(), 1);
        assert_eq!(t2.url(t2.records()[0].url), "https://a.example/x");
    }
}
