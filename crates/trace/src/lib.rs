//! # jcdn-trace — CDN request-log schema, containers, codecs, and flows
//!
//! §3.1 of the paper describes the raw material of the study: per-request
//! logs from CDN edge servers carrying "the time of the request, object
//! caching information, a client IP address that is hashed for anonymity,
//! and select HTTP request and response header information including
//! user-agent, mime type, and object URL". This crate is that schema plus
//! the machinery around it:
//!
//! * [`SimTime`] / [`SimDuration`] — explicit simulated time in
//!   microseconds. No wall clock anywhere (smoltcp-style): the simulator
//!   advances time, the analysis reads it.
//! * [`LogRecord`] — one request log line; [`Trace`] — a container that
//!   interns user-agent and URL strings so multi-million-record traces stay
//!   compact.
//! * [`Interner`] — the shared string tables; [`ShardedTrace`] — the same
//!   records split into time-partitioned shards behind one interner, so
//!   per-shard analyses run in parallel and merge without id remapping.
//! * [`RecordStream`] — a borrowed record view that lets analyses consume
//!   a whole trace, one shard, or any record subset through one API.
//! * [`codec`] — a versioned binary codec (via `bytes`) with per-shard
//!   CRC-protected frames, and a JSONL exporter for interop.
//! * [`summary::DatasetSummary`] — the Table 2 roll-up (log count,
//!   duration, domain count, …).
//! * [`flows`] — object flows and client-object flows as defined in §5.1,
//!   with the paper's ≥10-requests / ≥10-clients filters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Trace serialization: the columnar binary format (v4) and JSONL interop.
pub mod codec;
/// Frozen encoders for historical codec versions 1–3 (fixture support).
pub mod compat;
/// Object flows and client–object flows with the paper's §5.1 filters.
pub mod flows;
mod interner;
mod record;
mod sharded;
/// Durable, resumable on-disk trace store (crash-safety contract).
pub mod store;
mod stream;
/// Per-dataset summary statistics (Table 1 of the paper).
pub mod summary;
mod time;
mod trace;

pub use interner::{InternError, Interner};
pub use record::{CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, UaId, UrlId};
pub use sharded::ShardedTrace;
pub use stream::RecordStream;
pub use time::{SimDuration, SimTime};
pub use trace::{RecordView, Trace};

/// Stable 64-bit FNV-1a hash, used to anonymize client IPs and to split
/// clients into train/test sets deterministically.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_differs_on_inputs() {
        assert_ne!(fnv1a(b"10.0.0.1"), fnv1a(b"10.0.0.2"));
    }
}
