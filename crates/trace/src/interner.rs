//! Shared string interner for URL and user-agent tables.
//!
//! [`Trace`](crate::Trace) and [`ShardedTrace`](crate::ShardedTrace) both
//! resolve [`UrlId`]/[`UaId`] through an `Interner`. Strings are stored as
//! `Arc<str>` so the id→string table and the string→id index share one
//! allocation per distinct string (a miss costs exactly one copy of the
//! input plus a refcount bump).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::record::{UaId, UrlId};

/// An interning table overflowed its 32-bit id space.
///
/// Ids travel in records as `u32`; a trace with more than `u32::MAX`
/// distinct URLs (or UAs) cannot be represented. The fallible
/// `try_intern_*` methods surface this as an error instead of panicking so
/// ingest paths (e.g. the codec decoding untrusted payloads) can reject the
/// input cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InternError {
    /// The URL table is full.
    TooManyUrls,
    /// The user-agent table is full.
    TooManyUas,
}

impl fmt::Display for InternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InternError::TooManyUrls => write!(f, "more than u32::MAX distinct URLs"),
            InternError::TooManyUas => write!(f, "more than u32::MAX distinct user agents"),
        }
    }
}

impl std::error::Error for InternError {}

/// Deduplicating string tables mapping URLs ⇄ [`UrlId`] and UAs ⇄ [`UaId`].
#[derive(Clone, Debug, Default)]
pub struct Interner {
    urls: Vec<Arc<str>>,
    url_index: HashMap<Arc<str>, UrlId>,
    uas: Vec<Arc<str>>,
    ua_index: HashMap<Arc<str>, UaId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a URL, returning an error when the id space is exhausted.
    pub fn try_intern_url(&mut self, url: &str) -> Result<UrlId, InternError> {
        if let Some(&id) = self.url_index.get(url) {
            return Ok(id);
        }
        let id = UrlId(u32::try_from(self.urls.len()).map_err(|_| InternError::TooManyUrls)?);
        let shared: Arc<str> = Arc::from(url);
        self.urls.push(Arc::clone(&shared));
        self.url_index.insert(shared, id);
        Ok(id)
    }

    /// Interns a user agent, returning an error when the id space is
    /// exhausted.
    pub fn try_intern_ua(&mut self, ua: &str) -> Result<UaId, InternError> {
        if let Some(&id) = self.ua_index.get(ua) {
            return Ok(id);
        }
        let id = UaId(u32::try_from(self.uas.len()).map_err(|_| InternError::TooManyUas)?);
        let shared: Arc<str> = Arc::from(ua);
        self.uas.push(Arc::clone(&shared));
        self.ua_index.insert(shared, id);
        Ok(id)
    }

    /// Interns a URL. Panics only in the astronomically unlikely case of
    /// id-space exhaustion; use [`try_intern_url`][Self::try_intern_url] on
    /// untrusted input.
    pub fn intern_url(&mut self, url: &str) -> UrlId {
        // jcdn-lint: allow(D3) -- documented panicking twin of try_intern_url for trusted input
        self.try_intern_url(url).expect("URL id space exhausted")
    }

    /// Interns a user agent; panicking twin of
    /// [`try_intern_ua`][Self::try_intern_ua].
    pub fn intern_ua(&mut self, ua: &str) -> UaId {
        // jcdn-lint: allow(D3) -- documented panicking twin of try_intern_ua for trusted input
        self.try_intern_ua(ua).expect("UA id space exhausted")
    }

    /// Resolves a URL id.
    pub fn url(&self, id: UrlId) -> &str {
        &self.urls[id.index()]
    }

    /// Resolves a UA id.
    pub fn ua(&self, id: UaId) -> &str {
        &self.uas[id.index()]
    }

    /// Looks up the id of an already-interned URL.
    pub fn find_url(&self, url: &str) -> Option<UrlId> {
        self.url_index.get(url).copied()
    }

    /// Looks up the id of an already-interned UA.
    pub fn find_ua(&self, ua: &str) -> Option<UaId> {
        self.ua_index.get(ua).copied()
    }

    /// All interned URLs, indexed by `UrlId`.
    pub fn url_table(&self) -> &[Arc<str>] {
        &self.urls
    }

    /// All interned UAs, indexed by `UaId`.
    pub fn ua_table(&self) -> &[Arc<str>] {
        &self.uas
    }

    /// Number of distinct URLs.
    pub fn url_count(&self) -> usize {
        self.urls.len()
    }

    /// Number of distinct user agents.
    pub fn ua_count(&self) -> usize {
        self.uas.len()
    }

    /// The host part of an interned URL (no allocation).
    pub fn host_of(&self, id: UrlId) -> &str {
        crate::trace::host_of_url(self.url(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern_url("https://h.example/a");
        let b = i.intern_url("https://h.example/b");
        assert_eq!(i.intern_url("https://h.example/a"), a);
        assert_ne!(a, b);
        assert_eq!(i.url_count(), 2);
        assert_eq!(i.url(a), "https://h.example/a");
        assert_eq!(i.find_url("https://h.example/b"), Some(b));
        assert_eq!(i.find_url("https://h.example/c"), None);
        let ua = i.intern_ua("okhttp/3.12.1");
        assert_eq!(i.find_ua("okhttp/3.12.1"), Some(ua));
        assert_eq!(i.ua(ua), "okhttp/3.12.1");
    }

    #[test]
    fn table_and_index_share_one_allocation() {
        let mut i = Interner::new();
        let id = i.intern_url("https://h.example/shared");
        let in_table = &i.url_table()[id.0 as usize];
        // Two handles: one in the table, one keyed in the index.
        assert_eq!(Arc::strong_count(in_table), 2);
    }

    #[test]
    fn try_intern_is_fallible_not_panicking() {
        let mut i = Interner::new();
        assert!(i.try_intern_url("https://h.example/x").is_ok());
        assert!(i.try_intern_ua("curl/8.0").is_ok());
        // The error type exists and formats; actually exhausting 2^32 ids
        // in a test is impractical.
        assert_eq!(
            InternError::TooManyUrls.to_string(),
            "more than u32::MAX distinct URLs"
        );
        assert_eq!(
            InternError::TooManyUas.to_string(),
            "more than u32::MAX distinct user agents"
        );
    }
}
