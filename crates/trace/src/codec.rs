//! Trace serialization: a compact versioned binary format and JSONL.
//!
//! The binary format exists so multi-million-record synthetic traces can be
//! written once and re-analyzed cheaply; JSONL exists for interop with
//! external tooling (and is, fittingly for this paper, JSON).
//!
//! Binary layout (all integers little-endian or LEB128 varint):
//!
//! ```text
//! magic  b"JCDN"            4 bytes
//! version u16               (currently 2)
//! url table: varint count, then per string: varint len + UTF-8 bytes
//! ua  table: same
//! record count: varint
//! records, each:
//!   time   varint (delta from previous record's time, µs)
//!   client varint
//!   ua     varint (0 = absent, else UaId + 1)
//!   url    varint (UrlId)
//!   method u8, mime u8, cache u8
//!   retry  u8  (version ≥ 2: attempt number, 0 = first try)
//!   flags  u8  (version ≥ 2: RecordFlags bit set)
//!   status varint
//!   bytes  varint
//! ```
//!
//! Version 1 traces (no retry/flags bytes) still decode; the missing fields
//! come back as `0` / [`RecordFlags::NONE`].
//!
//! Time is delta-encoded, so traces must be time-sorted before encoding for
//! best size — but unsorted traces still round-trip (the delta is signed
//! zig-zag).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::{CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags};
use crate::time::SimTime;
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"JCDN";
const VERSION: u16 = 2;
/// Oldest version [`decode`] still accepts.
const MIN_VERSION: u16 = 1;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the `JCDN` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended prematurely.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant was out of range.
    BadDiscriminant(&'static str, u8),
    /// A record referenced an id beyond its table.
    DanglingId,
    /// A delta-encoded timestamp overflowed the time axis.
    TimeOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a JCDN trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "truncated trace"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::InvalidUtf8 => write!(f, "invalid UTF-8 in string table"),
            DecodeError::BadDiscriminant(what, v) => write!(f, "bad {what} discriminant {v}"),
            DecodeError::DanglingId => write!(f, "record references missing table entry"),
            DecodeError::TimeOverflow => write!(f, "timestamp delta overflow"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::VarintOverflow)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, DecodeError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
}

/// Encodes a trace into the binary format.
pub fn encode(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(trace.len() * 16 + 1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    put_varint(&mut buf, trace.url_table().len() as u64);
    for url in trace.url_table() {
        put_string(&mut buf, url);
    }
    put_varint(&mut buf, trace.ua_table().len() as u64);
    for ua in trace.ua_table() {
        put_string(&mut buf, ua);
    }

    put_varint(&mut buf, trace.len() as u64);
    let mut prev_time: i64 = 0;
    for r in trace.records() {
        let t = r.time.as_micros() as i64;
        put_varint(&mut buf, zigzag(t - prev_time));
        prev_time = t;
        put_varint(&mut buf, r.client.0);
        put_varint(&mut buf, r.ua.map_or(0, |ua| u64::from(ua.0) + 1));
        put_varint(&mut buf, u64::from(r.url.0));
        buf.put_u8(method_tag(r.method));
        buf.put_u8(mime_tag(r.mime));
        buf.put_u8(cache_tag(r.cache));
        buf.put_u8(r.retries);
        buf.put_u8(r.flags.bits());
        put_varint(&mut buf, u64::from(r.status));
        put_varint(&mut buf, r.response_bytes);
    }
    buf.freeze()
}

/// Decodes a binary trace.
pub fn decode(mut buf: Bytes) -> Result<Trace, DecodeError> {
    if buf.remaining() < 6 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DecodeError::BadVersion(version));
    }

    let mut trace = Trace::new();
    // Interning deduplicates, so a (corrupted or adversarial) payload with
    // repeated table strings would otherwise leave record ids pointing past
    // the rebuilt table; map payload indices to interned ids explicitly.
    let url_count = get_varint(&mut buf)? as usize;
    let mut url_map = Vec::with_capacity(url_count.min(1 << 20));
    for _ in 0..url_count {
        let s = get_string(&mut buf)?;
        url_map.push(trace.intern_url(&s));
    }
    let ua_count = get_varint(&mut buf)? as usize;
    let mut ua_map = Vec::with_capacity(ua_count.min(1 << 20));
    for _ in 0..ua_count {
        let s = get_string(&mut buf)?;
        ua_map.push(trace.intern_ua(&s));
    }

    let record_count = get_varint(&mut buf)? as usize;
    let mut prev_time: i64 = 0;
    for _ in 0..record_count {
        let delta = unzigzag(get_varint(&mut buf)?);
        let t = prev_time
            .checked_add(delta)
            .ok_or(DecodeError::TimeOverflow)?;
        prev_time = t;
        let client = ClientId(get_varint(&mut buf)?);
        let ua_raw = get_varint(&mut buf)?;
        let ua = if ua_raw == 0 {
            None
        } else {
            let id = (ua_raw - 1) as usize;
            match ua_map.get(id) {
                Some(&mapped) => Some(mapped),
                None => return Err(DecodeError::DanglingId),
            }
        };
        let url_raw = get_varint(&mut buf)? as usize;
        let url = match url_map.get(url_raw) {
            Some(&mapped) => mapped,
            None => return Err(DecodeError::DanglingId),
        };
        let tag_bytes = if version >= 2 { 5 } else { 3 };
        if buf.remaining() < tag_bytes {
            return Err(DecodeError::Truncated);
        }
        let method = untag_method(buf.get_u8())?;
        let mime = untag_mime(buf.get_u8())?;
        let cache = untag_cache(buf.get_u8())?;
        let (retries, flags) = if version >= 2 {
            let retries = buf.get_u8();
            let raw = buf.get_u8();
            let flags =
                RecordFlags::from_bits(raw).ok_or(DecodeError::BadDiscriminant("flags", raw))?;
            (retries, flags)
        } else {
            (0, RecordFlags::NONE)
        };
        let status = get_varint(&mut buf)? as u16;
        let response_bytes = get_varint(&mut buf)?;
        trace.push(LogRecord {
            time: SimTime::from_micros(t.max(0) as u64),
            client,
            ua,
            url,
            method,
            mime,
            status,
            response_bytes,
            cache,
            retries,
            flags,
        });
    }
    Ok(trace)
}

fn method_tag(m: Method) -> u8 {
    match m {
        Method::Get => 0,
        Method::Post => 1,
        Method::Head => 2,
        Method::Put => 3,
        Method::Delete => 4,
    }
}

fn untag_method(v: u8) -> Result<Method, DecodeError> {
    Ok(match v {
        0 => Method::Get,
        1 => Method::Post,
        2 => Method::Head,
        3 => Method::Put,
        4 => Method::Delete,
        _ => return Err(DecodeError::BadDiscriminant("method", v)),
    })
}

fn mime_tag(m: MimeType) -> u8 {
    match m {
        MimeType::Json => 0,
        MimeType::Html => 1,
        MimeType::Css => 2,
        MimeType::JavaScript => 3,
        MimeType::Image => 4,
        MimeType::Video => 5,
        MimeType::Other => 6,
    }
}

fn untag_mime(v: u8) -> Result<MimeType, DecodeError> {
    Ok(match v {
        0 => MimeType::Json,
        1 => MimeType::Html,
        2 => MimeType::Css,
        3 => MimeType::JavaScript,
        4 => MimeType::Image,
        5 => MimeType::Video,
        6 => MimeType::Other,
        _ => return Err(DecodeError::BadDiscriminant("mime", v)),
    })
}

fn cache_tag(c: CacheStatus) -> u8 {
    match c {
        CacheStatus::Hit => 0,
        CacheStatus::Miss => 1,
        CacheStatus::NotCacheable => 2,
    }
}

fn untag_cache(v: u8) -> Result<CacheStatus, DecodeError> {
    Ok(match v {
        0 => CacheStatus::Hit,
        1 => CacheStatus::Miss,
        2 => CacheStatus::NotCacheable,
        _ => return Err(DecodeError::BadDiscriminant("cache", v)),
    })
}

/// Writes a trace to a file in the binary format.
pub fn write_file(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(trace))
}

/// Reads a binary trace file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Trace> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Serializes one record as a JSON object (JSONL line) with resolved
/// strings.
pub fn record_to_json(trace: &Trace, record: &LogRecord) -> jcdn_json::Value {
    let mut obj = jcdn_json::Map::new();
    obj.insert("time_us", jcdn_json::Value::from(record.time.as_micros()));
    obj.insert("client", jcdn_json::Value::from(record.client.0));
    match record.ua {
        Some(ua) => obj.insert("ua", jcdn_json::Value::from(trace.ua(ua))),
        None => obj.insert("ua", jcdn_json::Value::Null),
    };
    obj.insert("url", jcdn_json::Value::from(trace.url(record.url)));
    obj.insert("method", jcdn_json::Value::from(record.method.to_string()));
    obj.insert("mime", jcdn_json::Value::from(record.mime.as_header()));
    obj.insert("status", jcdn_json::Value::from(u64::from(record.status)));
    obj.insert("bytes", jcdn_json::Value::from(record.response_bytes));
    obj.insert(
        "cache",
        jcdn_json::Value::from(match record.cache {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::NotCacheable => "no-store",
        }),
    );
    obj.insert("retries", jcdn_json::Value::from(u64::from(record.retries)));
    obj.insert("flags", jcdn_json::Value::from(record.flags.to_string()));
    jcdn_json::Value::Object(obj)
}

/// Exports the whole trace as JSONL (one record per line).
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        out.push_str(&jcdn_json::to_string(&record_to_json(trace, r)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let ua = t.intern_ua("okhttp/3.12.1");
        let u1 = t.intern_url("https://api.example/items/1");
        let u2 = t.intern_url("https://api.example/items/2");
        for i in 0..100u64 {
            t.push(LogRecord {
                time: SimTime::from_millis(i * 37),
                client: ClientId(i % 7),
                ua: (i % 3 != 0).then_some(ua),
                url: if i % 2 == 0 { u1 } else { u2 },
                method: if i % 5 == 0 {
                    Method::Post
                } else {
                    Method::Get
                },
                mime: MimeType::Json,
                status: 200,
                response_bytes: 100 + i,
                cache: match i % 3 {
                    0 => CacheStatus::Hit,
                    1 => CacheStatus::Miss,
                    _ => CacheStatus::NotCacheable,
                },
                retries: (i % 4) as u8,
                flags: if i % 11 == 0 {
                    RecordFlags::SERVED_STALE.with(RecordFlags::RETRIED)
                } else {
                    RecordFlags::NONE
                },
            });
        }
        t
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let encoded = encode(&t);
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded.len(), t.len());
        assert_eq!(decoded.url_table(), t.url_table());
        assert_eq!(decoded.ua_table(), t.ua_table());
        assert_eq!(decoded.records(), t.records());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let decoded = decode(encode(&t)).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.url_count(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode(Bytes::from_static(b"")).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            decode(Bytes::from_static(b"NOPE\x01\x00")).unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            decode(Bytes::from_static(b"JCDN\xff\x00")).unwrap_err(),
            DecodeError::BadVersion(255)
        );
    }

    #[test]
    fn version_1_traces_decode_with_zeroed_resilience_fields() {
        // Hand-build a version-1 payload: one URL, no UAs, one record laid
        // out without the retry/flags bytes that version 2 added.
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(1);
        put_varint(&mut buf, 1); // url table
        put_string(&mut buf, "https://legacy.example/v1");
        put_varint(&mut buf, 0); // ua table
        put_varint(&mut buf, 1); // record count
        put_varint(&mut buf, zigzag(1_500_000)); // time delta
        put_varint(&mut buf, 42); // client
        put_varint(&mut buf, 0); // ua absent
        put_varint(&mut buf, 0); // url id
        buf.put_u8(0); // method = GET
        buf.put_u8(0); // mime = JSON
        buf.put_u8(1); // cache = Miss
        put_varint(&mut buf, 503); // status
        put_varint(&mut buf, 2048); // bytes
        let decoded = decode(buf.freeze()).expect("v1 payload decodes");
        assert_eq!(decoded.len(), 1);
        let r = decoded.records()[0];
        assert_eq!(r.time, SimTime::from_micros(1_500_000));
        assert_eq!(r.client, ClientId(42));
        assert_eq!(r.status, 503);
        assert_eq!(r.retries, 0, "v1 records carry no retry count");
        assert_eq!(r.flags, RecordFlags::NONE, "v1 records carry no flags");
    }

    #[test]
    fn rejects_unknown_flag_bits() {
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        t.push(LogRecord {
            time: SimTime::from_secs(1),
            client: ClientId(0),
            ua: None,
            url: u,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 1,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
        let mut data = encode(&t).to_vec();
        // The flags byte is the last byte before the status and bytes
        // varints (200 → 2 bytes, 1 → 1 byte).
        let flags_at = data.len() - 4;
        data[flags_at] = 0xF0;
        assert_eq!(
            decode(Bytes::from(data)).unwrap_err(),
            DecodeError::BadDiscriminant("flags", 0xF0)
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let full = encode(&sample_trace());
        // Chop at a few byte positions spread across the buffer; every
        // prefix must fail cleanly, never panic.
        for cut in [7, 20, full.len() / 2, full.len() - 1] {
            let r = decode(full.slice(0..cut));
            assert!(r.is_err(), "prefix of {cut} bytes should fail");
        }
    }

    #[test]
    fn jsonl_lines_parse_and_carry_fields() {
        let t = sample_trace();
        let jsonl = to_jsonl(&t);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.len());
        let v = jcdn_json::parse(lines[0]).unwrap();
        // Record 0 has i % 5 == 0 → POST.
        assert_eq!(v.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(v.get("mime").unwrap().as_str(), Some("application/json"));
        assert_eq!(
            v.get("url").unwrap().as_str(),
            Some("https://api.example/items/1")
        );
        assert_eq!(v.get("cache").unwrap().as_str(), Some("hit"));
        // Record 0 has i % 3 == 0 → UA absent.
        assert!(v.get("ua").unwrap().is_null());
        // Record 0 has i % 11 == 0 → stale+retried flags, retries = 0.
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("flags").unwrap().as_str(), Some("stale,retried"));
    }

    #[test]
    fn file_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("jcdn-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jcdn");
        write_file(&t, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.records(), t.records());
        std::fs::remove_file(&path).ok();
        // Reading garbage fails with InvalidData, not a panic.
        let bad = dir.join("bad.jcdn");
        std::fs::write(&bad, b"not a trace").unwrap();
        let err = read_file(&bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn unsorted_trace_still_round_trips() {
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        for &time in &[50u64, 10, 90, 0, 60] {
            t.push(LogRecord {
                time: SimTime::from_secs(time),
                client: ClientId(0),
                ua: None,
                url: u,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 1,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        let decoded = decode(encode(&t)).unwrap();
        assert_eq!(decoded.records(), t.records());
    }
}
