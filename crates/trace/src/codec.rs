//! Trace serialization: a compact versioned binary format and JSONL.
//!
//! The binary format exists so multi-million-record synthetic traces can be
//! written once and re-analyzed cheaply; JSONL exists for interop with
//! external tooling (and is, fittingly for this paper, JSON).
//!
//! Version 3 layout (integers little-endian or LEB128 varint):
//!
//! ```text
//! magic  b"JCDN"            4 bytes
//! version u16               (currently 3)
//! url table: varint count, then per string: varint len + UTF-8 bytes
//! ua  table: same
//! shard count: varint
//! shard frames, each:
//!   payload length u32 LE   (bytes of record data in this frame)
//!   record count  varint
//!   crc32         u32 LE    (IEEE CRC-32 of the payload bytes)
//!   payload: records, each:
//!     time   varint (delta from previous record in the SAME frame, µs;
//!                    the delta base resets to 0 at every frame start)
//!     client varint
//!     ua     varint (0 = absent, else UaId + 1)
//!     url    varint (UrlId)
//!     method u8, mime u8, cache u8
//!     retry  u8  (attempt number, 0 = first try)
//!     flags  u8  (RecordFlags bit set)
//!     status varint
//!     bytes  varint
//! ```
//!
//! Length-prefixed frames let a reader skip or hand whole shards to worker
//! threads without parsing records, and the per-frame CRC localizes
//! corruption to one shard. Version 1 (no retry/flags bytes) and version 2
//! (unframed record stream) payloads still decode — into a single shard.
//!
//! Time is delta-encoded, so **traces must be time-sorted before
//! encoding**; [`encode`] returns [`EncodeError::OutOfOrder`] on a record
//! whose timestamp precedes its predecessor's.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::interner::Interner;
use crate::record::{CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, UaId, UrlId};
use crate::sharded::ShardedTrace;
use crate::time::SimTime;
use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"JCDN";
/// The binary format version the encoder writes (decoders accept
/// [`MIN_VERSION`]..=[`VERSION`]).
pub const VERSION: u16 = 3;
/// Oldest version [`decode`] still accepts.
/// The oldest binary format version decoders still read.
pub const MIN_VERSION: u16 = 1;

/// Encoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A record's timestamp precedes its predecessor's. The format
    /// delta-encodes time, and shard frames are contiguous time ranges, so
    /// encoding requires time-sorted input (see
    /// [`Trace::sort_by_time`] / [`Trace::sort_canonical`]).
    OutOfOrder {
        /// Index of the offending record (across all shards, in frame order).
        index: usize,
        /// The predecessor's timestamp.
        prev: SimTime,
        /// The offending record's timestamp.
        next: SimTime,
    },
    /// A shard frame's encoded payload exceeded the u32 length prefix.
    FrameTooLarge {
        /// Index of the oversized shard frame.
        shard: usize,
        /// Encoded payload size in bytes.
        bytes: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::OutOfOrder { index, prev, next } => write!(
                f,
                "records not time-sorted: record {index} at {}µs follows {}µs",
                next.as_micros(),
                prev.as_micros()
            ),
            EncodeError::FrameTooLarge { shard, bytes } => write!(
                f,
                "shard frame {shard} payload is {bytes} bytes; the length prefix is u32"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the `JCDN` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended prematurely.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant was out of range.
    BadDiscriminant(&'static str, u8),
    /// A record referenced an id beyond its table.
    DanglingId,
    /// A delta-encoded timestamp overflowed the time axis.
    TimeOverflow,
    /// A shard frame's payload did not match its stored CRC-32.
    BadChecksum {
        /// Index of the corrupt shard frame.
        shard: usize,
    },
    /// A shard frame's record data and payload length disagree.
    FrameMismatch,
    /// A string table overflowed the 32-bit id space.
    TableOverflow,
    /// A status code exceeded 16 bits.
    StatusOverflow,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a JCDN trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "truncated trace"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::InvalidUtf8 => write!(f, "invalid UTF-8 in string table"),
            DecodeError::BadDiscriminant(what, v) => write!(f, "bad {what} discriminant {v}"),
            DecodeError::DanglingId => write!(f, "record references missing table entry"),
            DecodeError::TimeOverflow => write!(f, "timestamp delta overflow"),
            DecodeError::BadChecksum { shard } => {
                write!(f, "shard frame {shard} failed its CRC-32 check")
            }
            DecodeError::FrameMismatch => write!(f, "shard frame length and records disagree"),
            DecodeError::TableOverflow => write!(f, "string table overflows 32-bit id space"),
            DecodeError::StatusOverflow => write!(f, "status code overflows 16 bits"),
        }
    }
}

impl std::error::Error for DecodeError {}

// IEEE CRC-32 (the polynomial used by zip/png/ethernet), table-driven.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // jcdn-lint: allow(D4) -- i ranges over 0..256; lossless by the loop bound
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        // jcdn-lint: allow(D4) -- masked to 8 bits before the cast
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        // jcdn-lint: allow(D4) -- masked to 7 bits before the cast
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::VarintOverflow)
}

fn zigzag(v: i64) -> u64 {
    // jcdn-lint: allow(D4) -- zigzag is a bijective bit reinterpretation, not a narrowing
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    // jcdn-lint: allow(D4) -- inverse bijection of `zigzag`; same-width reinterpretation
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// `usize → u64`, lossless on every supported target (usize ≤ 64 bits).
pub(crate) fn len_u64(len: usize) -> u64 {
    // jcdn-lint: allow(D4) -- usize → u64 cannot truncate on ≤64-bit targets
    len as u64
}

/// `u64 → usize` with a caller-chosen error for values a 32-bit target
/// cannot represent (a wrapped length would corrupt the decode at a
/// distance — exactly the failure D4 exists to prevent).
fn to_usize(v: u64, err: DecodeError) -> Result<usize, DecodeError> {
    usize::try_from(v).map_err(|_| err)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, len_u64(s.len()));
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, DecodeError> {
    let len = to_usize(get_varint(buf)?, DecodeError::Truncated)?;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
}

fn put_record(buf: &mut BytesMut, r: &LogRecord, prev_time: &mut i64) {
    // jcdn-lint: allow(D4) -- the time axis caps at 2^63 µs (~292k simulated years)
    let t = r.time.as_micros() as i64;
    put_varint(buf, zigzag(t - *prev_time));
    *prev_time = t;
    put_varint(buf, r.client.0);
    put_varint(buf, r.ua.map_or(0, |ua| u64::from(ua.0) + 1));
    put_varint(buf, u64::from(r.url.0));
    buf.put_u8(method_tag(r.method));
    buf.put_u8(mime_tag(r.mime));
    buf.put_u8(cache_tag(r.cache));
    buf.put_u8(r.retries);
    buf.put_u8(r.flags.bits());
    put_varint(buf, u64::from(r.status));
    put_varint(buf, r.response_bytes);
}

fn get_record(
    buf: &mut Bytes,
    version: u16,
    prev_time: &mut i64,
    url_map: &[UrlId],
    ua_map: &[UaId],
) -> Result<LogRecord, DecodeError> {
    let delta = unzigzag(get_varint(buf)?);
    let t = prev_time
        .checked_add(delta)
        .ok_or(DecodeError::TimeOverflow)?;
    *prev_time = t;
    let client = ClientId(get_varint(buf)?);
    let ua_raw = get_varint(buf)?;
    let ua = if ua_raw == 0 {
        None
    } else {
        let id = to_usize(ua_raw - 1, DecodeError::DanglingId)?;
        match ua_map.get(id) {
            Some(&mapped) => Some(mapped),
            None => return Err(DecodeError::DanglingId),
        }
    };
    let url_raw = to_usize(get_varint(buf)?, DecodeError::DanglingId)?;
    let url = match url_map.get(url_raw) {
        Some(&mapped) => mapped,
        None => return Err(DecodeError::DanglingId),
    };
    let tag_bytes = if version >= 2 { 5 } else { 3 };
    if buf.remaining() < tag_bytes {
        return Err(DecodeError::Truncated);
    }
    let method = untag_method(buf.get_u8())?;
    let mime = untag_mime(buf.get_u8())?;
    let cache = untag_cache(buf.get_u8())?;
    let (retries, flags) = if version >= 2 {
        let retries = buf.get_u8();
        let raw = buf.get_u8();
        let flags =
            RecordFlags::from_bits(raw).ok_or(DecodeError::BadDiscriminant("flags", raw))?;
        (retries, flags)
    } else {
        (0, RecordFlags::NONE)
    };
    let status = u16::try_from(get_varint(buf)?).map_err(|_| DecodeError::StatusOverflow)?;
    let response_bytes = get_varint(buf)?;
    Ok(LogRecord {
        // jcdn-lint: allow(D4) -- clamped non-negative, so i64 → u64 is value-preserving
        time: SimTime::from_micros(t.max(0) as u64),
        client,
        ua,
        url,
        method,
        mime,
        status,
        response_bytes,
        cache,
        retries,
        flags,
    })
}

/// Encodes the file prologue — magic, version, and both string tables —
/// *without* the shard-count varint that follows it in a complete file.
/// The durable store (see [`crate::store`]) persists this prologue once
/// per run and assembles `prologue + varint(shard_count) + frames` at
/// finalize time, which makes a resumed run byte-identical to an
/// uninterrupted one by construction.
pub(crate) fn encode_tables(interner: &Interner) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    put_varint(&mut buf, len_u64(interner.url_table().len()));
    for url in interner.url_table() {
        put_string(&mut buf, url);
    }
    put_varint(&mut buf, len_u64(interner.ua_table().len()));
    for ua in interner.ua_table() {
        put_string(&mut buf, ua);
    }
    buf.freeze()
}

/// One encoded v3 shard frame: the full frame bytes (length prefix,
/// record count, CRC, payload) plus its record count for index keeping.
pub(crate) struct EncodedFrame {
    /// The complete frame bytes, ready for concatenation.
    pub bytes: Bytes,
    /// Records the frame carries (what the shard index stores).
    pub records: u64,
}

/// Encodes one shard frame. `index_base`/`last_time` thread the
/// cross-shard time-ordering check through successive calls, so encoding
/// shard by shard enforces exactly what [`encode_frames`] enforces in one
/// pass.
pub(crate) fn encode_frame(
    records: &[LogRecord],
    index_base: usize,
    last_time: &mut Option<SimTime>,
    shard_idx: usize,
) -> Result<EncodedFrame, EncodeError> {
    let mut payload = BytesMut::with_capacity(records.len() * 16 + 16);
    let mut prev_time: i64 = 0;
    for (offset, r) in records.iter().enumerate() {
        if let Some(prev) = *last_time {
            if r.time < prev {
                return Err(EncodeError::OutOfOrder {
                    index: index_base + offset,
                    prev,
                    next: r.time,
                });
            }
        }
        *last_time = Some(r.time);
        put_record(&mut payload, r, &mut prev_time);
    }
    let payload = payload.freeze();
    let payload_len = u32::try_from(payload.len()).map_err(|_| EncodeError::FrameTooLarge {
        shard: shard_idx,
        bytes: payload.len(),
    })?;
    let mut frame = BytesMut::with_capacity(payload.len() + 16);
    frame.put_u32_le(payload_len);
    put_varint(&mut frame, len_u64(records.len()));
    frame.put_u32_le(crc32(&payload));
    frame.put_slice(&payload);
    Ok(EncodedFrame {
        bytes: frame.freeze(),
        records: len_u64(records.len()),
    })
}

/// Encodes tables plus one frame per record slice. `shards` must together
/// form a non-decreasing time sequence.
fn encode_frames(interner: &Interner, shards: &[&[LogRecord]]) -> Result<Bytes, EncodeError> {
    let total: usize = shards.iter().map(|s| s.len()).sum();
    let mut buf = BytesMut::with_capacity(total * 16 + 1024);
    buf.put_slice(&encode_tables(interner));
    put_varint(&mut buf, len_u64(shards.len()));
    let mut index = 0usize;
    let mut last_time: Option<SimTime> = None;
    for (shard_idx, shard) in shards.iter().enumerate() {
        let frame = encode_frame(shard, index, &mut last_time, shard_idx)?;
        index += shard.len();
        buf.put_slice(&frame.bytes);
    }
    Ok(buf.freeze())
}

/// Encodes a trace into the binary format as a single shard frame.
///
/// The trace must be time-sorted (the format delta-encodes time); an
/// out-of-order record yields [`EncodeError::OutOfOrder`].
pub fn encode(trace: &Trace) -> Result<Bytes, EncodeError> {
    encode_frames(trace.interner(), &[trace.records()])
}

/// Encodes a sharded trace, one frame per shard.
pub fn encode_sharded(trace: &ShardedTrace) -> Result<Bytes, EncodeError> {
    let shards: Vec<&[LogRecord]> = (0..trace.shard_count())
        .map(|i| trace.shard_records(i))
        .collect();
    encode_frames(trace.interner(), &shards)
}

/// Decodes a binary trace, flattening any shard frames into one trace.
pub fn decode(buf: Bytes) -> Result<Trace, DecodeError> {
    decode_sharded(buf).map(ShardedTrace::into_trace)
}

/// Tallies from a tolerant decode: how much of the payload survived, and
/// why the rest did not.
///
/// `records_dropped` counts records the frame headers promised but that
/// could not be decoded (corrupt bytes, dangling table references, frames
/// failing their checksum). Whole-frame losses are split by cause —
/// `frames_crc_failed` for frames whose payload failed its CRC-32 (bytes
/// present but corrupt) and `frames_truncated` for frames cut off by a
/// short file (bytes missing) — because the two call for different
/// recoveries: a CRC failure means regenerate or restore that shard, a
/// truncation means the tail of the file is gone. A clean decode has
/// every drop counter at zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Records successfully decoded.
    pub records_decoded: u64,
    /// Records promised by headers but lost to corruption.
    pub records_dropped: u64,
    /// Whole v3 frames abandoned because their payload failed its CRC-32.
    pub frames_crc_failed: u64,
    /// Whole v3 frames abandoned because the file ended inside or before
    /// them.
    pub frames_truncated: u64,
    /// Byte offset (from the start of the decoded buffer) of the first
    /// error encountered, when anything was dropped. Localizes damage for
    /// the operator: a truncation offset near the file size means a torn
    /// tail, a small one means the file is mostly gone.
    pub first_error_offset: Option<u64>,
}

impl DecodeStats {
    /// True when nothing was dropped.
    pub fn is_clean(&self) -> bool {
        self.records_dropped == 0 && self.frames_dropped() == 0
    }

    /// Total v3 frames abandoned wholesale, either cause.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_crc_failed + self.frames_truncated
    }

    /// Folds another tally into this one (the shard-merge direction: the
    /// earliest error offset wins, counters add).
    pub fn merge(&mut self, other: &DecodeStats) {
        self.records_decoded += other.records_decoded;
        self.records_dropped += other.records_dropped;
        self.frames_crc_failed += other.frames_crc_failed;
        self.frames_truncated += other.frames_truncated;
        self.first_error_offset = match (self.first_error_offset, other.first_error_offset) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// Records the byte offset of an error; the first one sticks.
    fn note_error(&mut self, offset: u64) {
        self.first_error_offset.get_or_insert(offset);
    }
}

/// Decodes a binary trace, preserving its shard frames. Version 1 and 2
/// payloads (which predate framing) decode into a single shard.
pub fn decode_sharded(buf: Bytes) -> Result<ShardedTrace, DecodeError> {
    decode_sharded_impl(buf, None)
}

/// Decodes a binary trace, salvaging what it can from a damaged payload
/// instead of failing outright.
///
/// Header and string-table errors (bad magic, unsupported version,
/// truncation before the record streams) are still hard errors — there is
/// nothing to salvage without the tables. Past that point the decode is
/// best-effort: a record that fails to decode drops the rest of its frame
/// (record boundaries are not self-synchronizing), a frame failing its
/// CRC is dropped whole, and truncation mid-stream keeps everything
/// already decoded. The returned [`DecodeStats`] says exactly what was
/// lost, so callers can surface the damage instead of hiding it.
pub fn decode_sharded_tolerant(buf: Bytes) -> Result<(ShardedTrace, DecodeStats), DecodeError> {
    let mut stats = DecodeStats::default();
    let trace = decode_sharded_impl(buf, Some(&mut stats))?;
    Ok((trace, stats))
}

fn decode_sharded_impl(
    mut buf: Bytes,
    mut tolerate: Option<&mut DecodeStats>,
) -> Result<ShardedTrace, DecodeError> {
    let total_len = buf.remaining();
    if buf.remaining() < 6 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DecodeError::BadVersion(version));
    }

    let mut interner = Interner::new();
    // Interning deduplicates, so a (corrupted or adversarial) payload with
    // repeated table strings would otherwise leave record ids pointing past
    // the rebuilt table; map payload indices to interned ids explicitly.
    let url_count = to_usize(get_varint(&mut buf)?, DecodeError::TableOverflow)?;
    let mut url_map = Vec::with_capacity(url_count.min(1 << 20));
    for _ in 0..url_count {
        let s = get_string(&mut buf)?;
        url_map.push(
            interner
                .try_intern_url(&s)
                .map_err(|_| DecodeError::TableOverflow)?,
        );
    }
    let ua_count = to_usize(get_varint(&mut buf)?, DecodeError::TableOverflow)?;
    let mut ua_map = Vec::with_capacity(ua_count.min(1 << 20));
    for _ in 0..ua_count {
        let s = get_string(&mut buf)?;
        ua_map.push(
            interner
                .try_intern_ua(&s)
                .map_err(|_| DecodeError::TableOverflow)?,
        );
    }

    if version < 3 {
        // Pre-framing formats: one undelimited record stream.
        let record_count = to_usize(get_varint(&mut buf)?, DecodeError::Truncated)?;
        let mut records = Vec::with_capacity(record_count.min(1 << 24));
        let mut prev_time: i64 = 0;
        for decoded in 0..record_count {
            let record_at = count_u64(total_len - buf.remaining());
            match get_record(&mut buf, version, &mut prev_time, &url_map, &ua_map) {
                Ok(record) => records.push(record),
                Err(e) => match tolerate.as_deref_mut() {
                    // The stream is undelimited, so record boundaries past a
                    // bad record are unknowable; keep the decoded prefix.
                    Some(stats) => {
                        stats.records_dropped += count_u64(record_count - decoded);
                        stats.note_error(record_at);
                        break;
                    }
                    None => return Err(e),
                },
            }
        }
        if let Some(stats) = tolerate.as_deref_mut() {
            stats.records_decoded += count_u64(records.len());
        }
        return Ok(ShardedTrace::from_parts(interner, vec![records]));
    }

    let shard_count = to_usize(get_varint(&mut buf)?, DecodeError::Truncated)?;
    let mut shards = Vec::with_capacity(shard_count.min(1 << 16));
    for shard in 0..shard_count {
        // Frame header: payload length, record count, CRC. Truncation here
        // loses this frame and every later one (frame boundaries are gone).
        let frame_at = count_u64(total_len - buf.remaining());
        let header = read_frame_header(&mut buf);
        let (payload_len, record_count, stored_crc) = match header {
            Ok(h) if buf.remaining() >= h.0 => h,
            other => match tolerate.as_deref_mut() {
                Some(stats) => {
                    stats.frames_truncated += count_u64(shard_count - shard);
                    stats.note_error(frame_at);
                    break;
                }
                None => return Err(other.err().unwrap_or(DecodeError::Truncated)),
            },
        };
        let payload_at = count_u64(total_len - buf.remaining());
        let mut payload = buf.slice(0..payload_len);
        buf.advance(payload_len);
        if crc32(&payload) != stored_crc {
            match tolerate.as_deref_mut() {
                // The frame is framed, so only *it* is lost; keep its slot
                // (as an empty shard) so shard indices stay stable.
                Some(stats) => {
                    stats.frames_crc_failed += 1;
                    stats.records_dropped += count_u64(record_count);
                    stats.note_error(payload_at);
                    shards.push(Vec::new());
                    continue;
                }
                None => return Err(DecodeError::BadChecksum { shard }),
            }
        }
        let mut records = Vec::with_capacity(record_count.min(1 << 24));
        let mut prev_time: i64 = 0;
        let mut bad_record = None;
        for decoded in 0..record_count {
            let record_at = payload_at + count_u64(payload_len - payload.remaining());
            match get_record(&mut payload, version, &mut prev_time, &url_map, &ua_map) {
                Ok(record) => records.push(record),
                Err(e) => {
                    bad_record = Some((e, decoded, record_at));
                    break;
                }
            }
        }
        match bad_record {
            Some((e, decoded, record_at)) => match tolerate.as_deref_mut() {
                Some(stats) => {
                    stats.records_dropped += count_u64(record_count - decoded);
                    stats.note_error(record_at);
                }
                None => return Err(e),
            },
            None => {
                if payload.has_remaining() && tolerate.is_none() {
                    return Err(DecodeError::FrameMismatch);
                }
            }
        }
        if let Some(stats) = tolerate.as_deref_mut() {
            stats.records_decoded += count_u64(records.len());
        }
        shards.push(records);
    }
    Ok(ShardedTrace::from_parts(interner, shards))
}

/// Reads one v3 frame header: `(payload_len, record_count, stored_crc)`.
fn read_frame_header(buf: &mut Bytes) -> Result<(usize, usize, u32), DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    // jcdn-lint: allow(D4) -- u32 → usize cannot truncate on ≥32-bit targets
    let payload_len = buf.get_u32_le() as usize;
    let record_count = to_usize(get_varint(buf)?, DecodeError::Truncated)?;
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok((payload_len, record_count, buf.get_u32_le()))
}

/// Widens a count for the [`DecodeStats`] tallies.
fn count_u64(n: usize) -> u64 {
    // jcdn-lint: allow(D4) -- usize → u64 widens; it cannot truncate
    n as u64
}

fn method_tag(m: Method) -> u8 {
    match m {
        Method::Get => 0,
        Method::Post => 1,
        Method::Head => 2,
        Method::Put => 3,
        Method::Delete => 4,
    }
}

fn untag_method(v: u8) -> Result<Method, DecodeError> {
    Ok(match v {
        0 => Method::Get,
        1 => Method::Post,
        2 => Method::Head,
        3 => Method::Put,
        4 => Method::Delete,
        _ => return Err(DecodeError::BadDiscriminant("method", v)),
    })
}

fn mime_tag(m: MimeType) -> u8 {
    match m {
        MimeType::Json => 0,
        MimeType::Html => 1,
        MimeType::Css => 2,
        MimeType::JavaScript => 3,
        MimeType::Image => 4,
        MimeType::Video => 5,
        MimeType::Other => 6,
    }
}

fn untag_mime(v: u8) -> Result<MimeType, DecodeError> {
    Ok(match v {
        0 => MimeType::Json,
        1 => MimeType::Html,
        2 => MimeType::Css,
        3 => MimeType::JavaScript,
        4 => MimeType::Image,
        5 => MimeType::Video,
        6 => MimeType::Other,
        _ => return Err(DecodeError::BadDiscriminant("mime", v)),
    })
}

fn cache_tag(c: CacheStatus) -> u8 {
    match c {
        CacheStatus::Hit => 0,
        CacheStatus::Miss => 1,
        CacheStatus::NotCacheable => 2,
    }
}

fn untag_cache(v: u8) -> Result<CacheStatus, DecodeError> {
    Ok(match v {
        0 => CacheStatus::Hit,
        1 => CacheStatus::Miss,
        2 => CacheStatus::NotCacheable,
        _ => return Err(DecodeError::BadDiscriminant("cache", v)),
    })
}

fn encode_io_error(e: EncodeError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
}

/// Writes a trace to a file in the binary format. The trace must be
/// time-sorted; an unsorted trace fails with `InvalidInput`.
///
/// The write is durable (write-temp, fsync, rename — see
/// [`crate::store::durable_write`]): a crash mid-write leaves either the
/// previous file or the new one, never a torn hybrid.
pub fn write_file(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    let bytes = encode(trace).map_err(encode_io_error)?;
    crate::store::durable_write(path, bytes.to_vec(), "codec.write", jcdn_chaos::handle())
}

/// Writes a sharded trace to a file, one frame per shard. Durable, like
/// [`write_file`].
pub fn write_file_sharded(trace: &ShardedTrace, path: &std::path::Path) -> std::io::Result<()> {
    let bytes = encode_sharded(trace).map_err(encode_io_error)?;
    crate::store::durable_write(path, bytes.to_vec(), "codec.write", jcdn_chaos::handle())
}

/// Reads a binary trace file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Trace> {
    read_file_sharded(path).map(ShardedTrace::into_trace)
}

/// Reads a binary trace file, preserving shard frames.
pub fn read_file_sharded(path: &std::path::Path) -> std::io::Result<ShardedTrace> {
    let data = std::fs::read(path)?;
    decode_sharded(Bytes::from(data))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads a binary trace file tolerantly (see [`decode_sharded_tolerant`]):
/// a damaged file yields what could be salvaged plus the drop tallies
/// instead of an error, so batch pipelines can report corruption without
/// aborting on it.
pub fn read_file_sharded_tolerant(
    path: &std::path::Path,
) -> std::io::Result<(ShardedTrace, DecodeStats)> {
    let data = std::fs::read(path)?;
    decode_sharded_tolerant(Bytes::from(data))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Serializes one record as a JSON object (JSONL line) with resolved
/// strings.
pub fn record_to_json(trace: &Trace, record: &LogRecord) -> jcdn_json::Value {
    let mut obj = jcdn_json::Map::new();
    obj.insert("time_us", jcdn_json::Value::from(record.time.as_micros()));
    obj.insert("client", jcdn_json::Value::from(record.client.0));
    match record.ua {
        Some(ua) => obj.insert("ua", jcdn_json::Value::from(trace.ua(ua))),
        None => obj.insert("ua", jcdn_json::Value::Null),
    };
    obj.insert("url", jcdn_json::Value::from(trace.url(record.url)));
    obj.insert("method", jcdn_json::Value::from(record.method.to_string()));
    obj.insert("mime", jcdn_json::Value::from(record.mime.as_header()));
    obj.insert("status", jcdn_json::Value::from(u64::from(record.status)));
    obj.insert("bytes", jcdn_json::Value::from(record.response_bytes));
    obj.insert(
        "cache",
        jcdn_json::Value::from(match record.cache {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::NotCacheable => "no-store",
        }),
    );
    obj.insert("retries", jcdn_json::Value::from(u64::from(record.retries)));
    obj.insert("flags", jcdn_json::Value::from(record.flags.to_string()));
    jcdn_json::Value::Object(obj)
}

/// Exports the whole trace as JSONL (one record per line).
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        out.push_str(&jcdn_json::to_string(&record_to_json(trace, r)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let ua = t.intern_ua("okhttp/3.12.1");
        let u1 = t.intern_url("https://api.example/items/1");
        let u2 = t.intern_url("https://api.example/items/2");
        for i in 0..100u64 {
            t.push(LogRecord {
                time: SimTime::from_millis(i * 37),
                client: ClientId(i % 7),
                ua: (i % 3 != 0).then_some(ua),
                url: if i % 2 == 0 { u1 } else { u2 },
                method: if i % 5 == 0 {
                    Method::Post
                } else {
                    Method::Get
                },
                mime: MimeType::Json,
                status: 200,
                response_bytes: 100 + i,
                cache: match i % 3 {
                    0 => CacheStatus::Hit,
                    1 => CacheStatus::Miss,
                    _ => CacheStatus::NotCacheable,
                },
                retries: (i % 4) as u8,
                flags: if i % 11 == 0 {
                    RecordFlags::SERVED_STALE.with(RecordFlags::RETRIED)
                } else {
                    RecordFlags::NONE
                },
            });
        }
        t
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let encoded = encode(&t).unwrap();
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded.len(), t.len());
        assert_eq!(decoded.url_table(), t.url_table());
        assert_eq!(decoded.ua_table(), t.ua_table());
        assert_eq!(decoded.records(), t.records());
    }

    #[test]
    fn sharded_round_trip_preserves_frames() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        let decoded = decode_sharded(encoded.clone()).unwrap();
        assert_eq!(decoded.shard_count(), 4);
        for i in 0..4 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
        // Flattening matches the unsharded decode.
        let flat = decode(encoded).unwrap();
        assert_eq!(flat.records(), sharded.clone().into_trace().records());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let decoded = decode(encode(&t).unwrap()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.url_count(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode(Bytes::from_static(b"")).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            decode(Bytes::from_static(b"NOPE\x01\x00")).unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            decode(Bytes::from_static(b"JCDN\xff\x00")).unwrap_err(),
            DecodeError::BadVersion(255)
        );
    }

    /// Flips one byte inside frame 0's payload so its CRC fails while the
    /// other frames stay intact.
    fn corrupt_first_frame_payload(encoded: &Bytes) -> Bytes {
        let mut buf = encoded.clone();
        buf.advance(6); // magic + version
        for _ in 0..get_varint(&mut buf).unwrap() {
            get_string(&mut buf).unwrap(); // url table
        }
        for _ in 0..get_varint(&mut buf).unwrap() {
            get_string(&mut buf).unwrap(); // ua table
        }
        get_varint(&mut buf).unwrap(); // shard count
        buf.advance(4); // payload_len
        get_varint(&mut buf).unwrap(); // record count
        buf.advance(4); // crc
        let payload_offset = encoded.len() - buf.remaining();
        let mut bytes = encoded.to_vec();
        bytes[payload_offset] ^= 0xFF;
        Bytes::from(bytes)
    }

    #[test]
    fn tolerant_decode_of_clean_payload_is_clean() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        let (decoded, stats) = decode_sharded_tolerant(encoded).unwrap();
        assert!(stats.is_clean(), "{stats:?}");
        assert_eq!(stats.records_decoded, 100);
        assert_eq!(decoded.shard_count(), 4);
        for i in 0..4 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
    }

    #[test]
    fn tolerant_decode_salvages_frames_around_a_bad_checksum() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        let corrupted = corrupt_first_frame_payload(&encoded);

        // Strict decode refuses the whole file.
        assert_eq!(
            decode_sharded(corrupted.clone()).unwrap_err(),
            DecodeError::BadChecksum { shard: 0 }
        );

        // Tolerant decode loses exactly frame 0 and keeps the rest.
        let lost = sharded.shard_records(0).len() as u64;
        let (decoded, stats) = decode_sharded_tolerant(corrupted).unwrap();
        assert_eq!(stats.frames_crc_failed, 1);
        assert_eq!(stats.frames_truncated, 0);
        assert_eq!(stats.frames_dropped(), 1);
        assert_eq!(stats.records_dropped, lost);
        assert!(
            stats.first_error_offset.is_some(),
            "corruption is localized"
        );
        assert_eq!(stats.records_decoded, 100 - lost);
        assert_eq!(decoded.shard_count(), 4, "dropped frame keeps its slot");
        assert!(decoded.shard_records(0).is_empty());
        for i in 1..4 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
    }

    #[test]
    fn tolerant_decode_keeps_prefix_of_a_truncated_file() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        // Cut into the last frame's payload.
        let truncated = encoded.slice(0..encoded.len() - 5);

        assert_eq!(
            decode_sharded(truncated.clone()).unwrap_err(),
            DecodeError::Truncated
        );

        let (decoded, stats) = decode_sharded_tolerant(truncated).unwrap();
        assert_eq!(stats.frames_truncated, 1, "only the cut frame is lost");
        assert_eq!(stats.frames_crc_failed, 0);
        assert_eq!(decoded.shard_count(), 3);
        for i in 0..3 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
    }

    #[test]
    fn tolerant_decode_of_undelimited_stream_keeps_record_prefix() {
        // A v1 payload promising two records but carrying one: the strict
        // decoder errors, the tolerant one keeps the decoded prefix.
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(1);
        put_varint(&mut buf, 1); // url table
        put_string(&mut buf, "https://legacy.example/v1");
        put_varint(&mut buf, 0); // ua table
        put_varint(&mut buf, 2); // record count (one short)
        put_varint(&mut buf, zigzag(1_000_000));
        put_varint(&mut buf, 7); // client
        put_varint(&mut buf, 0); // ua absent
        put_varint(&mut buf, 0); // url id
        buf.put_u8(0); // method = GET
        buf.put_u8(0); // mime = JSON
        buf.put_u8(0); // cache = hit
        put_varint(&mut buf, 200); // status
        put_varint(&mut buf, 512); // bytes
        let bytes = buf.freeze();

        assert_eq!(decode(bytes.clone()).unwrap_err(), DecodeError::Truncated);
        let (decoded, stats) = decode_sharded_tolerant(bytes).unwrap();
        assert_eq!(stats.records_decoded, 1);
        assert_eq!(stats.records_dropped, 1);
        let trace = decoded.into_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records()[0].client, ClientId(7));
    }

    #[test]
    fn version_1_traces_decode_with_zeroed_resilience_fields() {
        // Hand-build a version-1 payload: one URL, no UAs, one record laid
        // out without the retry/flags bytes that version 2 added.
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(1);
        put_varint(&mut buf, 1); // url table
        put_string(&mut buf, "https://legacy.example/v1");
        put_varint(&mut buf, 0); // ua table
        put_varint(&mut buf, 1); // record count
        put_varint(&mut buf, zigzag(1_500_000)); // time delta
        put_varint(&mut buf, 42); // client
        put_varint(&mut buf, 0); // ua absent
        put_varint(&mut buf, 0); // url id
        buf.put_u8(0); // method = GET
        buf.put_u8(0); // mime = JSON
        buf.put_u8(1); // cache = Miss
        put_varint(&mut buf, 503); // status
        put_varint(&mut buf, 2048); // bytes
        let decoded = decode(buf.freeze()).expect("v1 payload decodes");
        assert_eq!(decoded.len(), 1);
        let r = decoded.records()[0];
        assert_eq!(r.time, SimTime::from_micros(1_500_000));
        assert_eq!(r.client, ClientId(42));
        assert_eq!(r.status, 503);
        assert_eq!(r.retries, 0, "v1 records carry no retry count");
        assert_eq!(r.flags, RecordFlags::NONE, "v1 records carry no flags");
    }

    #[test]
    fn version_2_traces_decode_into_a_single_shard() {
        // Hand-build a version-2 payload (record stream without frames).
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(2);
        put_varint(&mut buf, 1); // url table
        put_string(&mut buf, "https://legacy.example/v2");
        put_varint(&mut buf, 0); // ua table
        put_varint(&mut buf, 2); // record count
        for (delta, retries) in [(1_000_000i64, 1u8), (500_000, 2)] {
            put_varint(&mut buf, zigzag(delta));
            put_varint(&mut buf, 7); // client
            put_varint(&mut buf, 0); // ua absent
            put_varint(&mut buf, 0); // url id
            buf.put_u8(0); // method
            buf.put_u8(0); // mime
            buf.put_u8(1); // cache
            buf.put_u8(retries);
            buf.put_u8(RecordFlags::RETRIED.bits());
            put_varint(&mut buf, 502); // status
            put_varint(&mut buf, 10); // bytes
        }
        let sharded = decode_sharded(buf.freeze()).expect("v2 payload decodes");
        assert_eq!(
            sharded.shard_count(),
            1,
            "pre-framing formats get one shard"
        );
        assert_eq!(sharded.len(), 2);
        let r = sharded.shard_records(0)[1];
        assert_eq!(r.time, SimTime::from_micros(1_500_000));
        assert_eq!(r.retries, 2);
        assert_eq!(r.flags, RecordFlags::RETRIED);
    }

    /// Single-record trace with a known layout, so tests can poke at exact
    /// byte offsets. URL is 19 bytes; offsets: magic 4 + version 2 +
    /// url count 1 + url len 1 + url 19 + ua count 1 + shard count 1 +
    /// payload len 4 + record count 1 + crc 4 = header 38; payload follows.
    fn one_record_encoding() -> (Vec<u8>, usize, std::ops::Range<usize>) {
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        t.push(LogRecord {
            time: SimTime::from_secs(1),
            client: ClientId(0),
            ua: None,
            url: u,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 1,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
        let data = encode(&t).unwrap().to_vec();
        (data, 38, 34..38)
    }

    #[test]
    fn rejects_unknown_flag_bits() {
        let (mut data, payload_at, crc_at) = one_record_encoding();
        // The flags byte is the last byte before the status and bytes
        // varints (200 → 2 bytes, 1 → 1 byte). Re-stamp the frame CRC so
        // the corruption reaches the discriminant check.
        let flags_at = data.len() - 4;
        data[flags_at] = 0xF0;
        let fixed_crc = crc32(&data[payload_at..]);
        data[crc_at].copy_from_slice(&fixed_crc.to_le_bytes());
        assert_eq!(
            decode(Bytes::from(data)).unwrap_err(),
            DecodeError::BadDiscriminant("flags", 0xF0)
        );
    }

    #[test]
    fn corrupted_frame_fails_its_checksum() {
        let (mut data, _, _) = one_record_encoding();
        let flags_at = data.len() - 4;
        data[flags_at] = 0xF0; // flip payload bytes, leave the CRC stale
        assert_eq!(
            decode(Bytes::from(data)).unwrap_err(),
            DecodeError::BadChecksum { shard: 0 }
        );
    }

    #[test]
    fn frame_with_extra_payload_is_rejected() {
        let (mut data, payload_at, crc_at) = one_record_encoding();
        // Append a stray byte to the payload, growing the declared length
        // and re-stamping the CRC: records no longer fill the frame.
        data.push(0x00);
        let payload_len = (data.len() - payload_at) as u32;
        data[payload_at - 9..payload_at - 5].copy_from_slice(&payload_len.to_le_bytes());
        let fixed_crc = crc32(&data[payload_at..]);
        data[crc_at].copy_from_slice(&fixed_crc.to_le_bytes());
        assert_eq!(
            decode(Bytes::from(data)).unwrap_err(),
            DecodeError::FrameMismatch
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let full = encode(&sample_trace()).unwrap();
        // Chop at a few byte positions spread across the buffer; every
        // prefix must fail cleanly, never panic.
        for cut in [7, 20, full.len() / 2, full.len() - 1] {
            let r = decode(full.slice(0..cut));
            assert!(r.is_err(), "prefix of {cut} bytes should fail");
        }
    }

    #[test]
    fn jsonl_lines_parse_and_carry_fields() {
        let t = sample_trace();
        let jsonl = to_jsonl(&t);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.len());
        let v = jcdn_json::parse(lines[0]).unwrap();
        // Record 0 has i % 5 == 0 → POST.
        assert_eq!(v.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(v.get("mime").unwrap().as_str(), Some("application/json"));
        assert_eq!(
            v.get("url").unwrap().as_str(),
            Some("https://api.example/items/1")
        );
        assert_eq!(v.get("cache").unwrap().as_str(), Some("hit"));
        // Record 0 has i % 3 == 0 → UA absent.
        assert!(v.get("ua").unwrap().is_null());
        // Record 0 has i % 11 == 0 → stale+retried flags, retries = 0.
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("flags").unwrap().as_str(), Some("stale,retried"));
    }

    #[test]
    fn file_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("jcdn-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jcdn");
        write_file(&t, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.records(), t.records());
        // The sharded writer round-trips through the sharded reader.
        let sharded = ShardedTrace::from_trace(t, 3);
        write_file_sharded(&sharded, &path).unwrap();
        let back = read_file_sharded(&path).unwrap();
        assert_eq!(back.shard_count(), 3);
        assert_eq!(back.len(), sharded.len());
        std::fs::remove_file(&path).ok();
        // Reading garbage fails with InvalidData, not a panic.
        let bad = dir.join("bad.jcdn");
        std::fs::write(&bad, b"not a trace").unwrap();
        let err = read_file(&bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn unsorted_trace_is_rejected_with_a_typed_error() {
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        for &time in &[50u64, 10, 90, 0, 60] {
            t.push(LogRecord {
                time: SimTime::from_secs(time),
                client: ClientId(0),
                ua: None,
                url: u,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 1,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        assert_eq!(
            encode(&t).unwrap_err(),
            EncodeError::OutOfOrder {
                index: 1,
                prev: SimTime::from_secs(50),
                next: SimTime::from_secs(10),
            }
        );
        // Sorting repairs the trace and it round-trips.
        t.sort_by_time();
        let decoded = decode(encode(&t).unwrap()).unwrap();
        assert_eq!(decoded.records(), t.records());
    }
}
