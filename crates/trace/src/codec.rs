//! Trace serialization: a compact versioned binary format and JSONL.
//!
//! The binary format exists so multi-million-record synthetic traces can be
//! written once and re-analyzed cheaply; JSONL exists for interop with
//! external tooling (and is, fittingly for this paper, JSON).
//!
//! Version 4 layout (integers little-endian or LEB128 varint):
//!
//! ```text
//! magic  b"JCDN"            4 bytes
//! version u16               (currently 4)
//! url table: varint count, then per string: varint len + UTF-8 bytes
//! ua  table: same
//! shard count: varint
//! shard frames, each:
//!   body length    u32 LE   (descriptor + columns)
//!   descriptor crc u32 LE   (CRC-32 of the descriptor bytes)
//!   descriptor:
//!     record count varint
//!     9 × (column length varint, column crc u32 LE), in column order
//!   columns, concatenated in order (n = record count):
//!     0 times    n varints: zigzag(delta µs); the delta base resets to 0
//!                at every frame start
//!     1 clients  group-varint64: per 4 values one control byte (2-bit
//!                width codes → {1,2,4,8} bytes), then the values LE
//!     2 uas      group-varint32 (widths {1,2,3,4}) of 0 = absent,
//!                else UaId + 1
//!     3 urls     group-varint32 of UrlId
//!     4 mmc      n bytes: method << 5 | mime << 2 | cache
//!     5 flags    ⌈n/2⌉ bytes: two RecordFlags nibbles per byte, record
//!                i in byte i/2, even i in the low nibble
//!     6 retries  sparse exceptions: varint count, then per nonzero
//!                retry: varint index delta (first is absolute; later
//!                deltas must be ≥ 1), u8 value
//!     7 statuses varint dict length, dict entries u16 LE in first-
//!                appearance order, then n indices (u8 if the dict has
//!                ≤ 256 entries, else u16 LE)
//!     8 bytes    n varints: response sizes
//! ```
//!
//! A trailing group-varint group with fewer than 4 values still writes one
//! control byte; the decoder knows `n`, and unused control slots code 0.
//!
//! Columnar frames let the decoder bulk-read each field into a pre-sized
//! vector instead of re-dispatching per record, and the whole decode
//! borrows from the input buffer — no intermediate copies. The
//! CRC-protected descriptor means a flipped record count or column length
//! is always *detected* (the v3 frame header was unprotected, so an
//! inflated count could silently skew salvage accounting), and per-column
//! CRCs localize payload damage. Length-prefixed frames let a reader hand
//! whole shards to worker threads without parsing records; both encode and
//! decode fan frames out on the `jcdn-exec` pool (see
//! [`encode_sharded_parallel`] / [`decode_sharded_parallel`]), with output
//! identical at any thread count.
//!
//! Older payloads still decode: version 3 (framed, per-record
//! interleaved fields), version 2 (unframed record stream) and version 1
//! (v2 minus the retry/flags bytes) — the last two into a single shard.
//! Frozen encoders for those versions live in [`crate::compat`].
//!
//! Time is delta-encoded, so **traces must be time-sorted before
//! encoding**; [`encode`] returns [`EncodeError::OutOfOrder`] on a record
//! whose timestamp precedes its predecessor's.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};

use crate::interner::Interner;
use crate::record::{CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, UaId, UrlId};
use crate::sharded::ShardedTrace;
use crate::time::SimTime;
use crate::trace::Trace;

pub(crate) const MAGIC: &[u8; 4] = b"JCDN";
/// The binary format version the encoder writes (decoders accept
/// [`MIN_VERSION`]..=[`VERSION`]).
pub const VERSION: u16 = 4;
/// The oldest binary format version decoders still read.
pub const MIN_VERSION: u16 = 1;

/// Number of per-field columns in a v4 frame.
const COLUMNS: usize = 9;

/// Minimum encoded size of one v3 record (each of the 6 varint fields is
/// at least 1 byte, plus 5 fixed tag bytes). Bounds how many records a
/// damaged v3 frame header can plausibly promise.
const MIN_V3_RECORD_BYTES: usize = 11;

/// Encoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A record's timestamp precedes its predecessor's. The format
    /// delta-encodes time, and shard frames are contiguous time ranges, so
    /// encoding requires time-sorted input (see
    /// [`Trace::sort_by_time`] / [`Trace::sort_canonical`]).
    OutOfOrder {
        /// Index of the offending record (across all shards, in frame order).
        index: usize,
        /// The predecessor's timestamp.
        prev: SimTime,
        /// The offending record's timestamp.
        next: SimTime,
    },
    /// A shard frame's encoded body exceeded the u32 length prefix.
    FrameTooLarge {
        /// Index of the oversized shard frame.
        shard: usize,
        /// Encoded body size in bytes.
        bytes: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::OutOfOrder { index, prev, next } => write!(
                f,
                "records not time-sorted: record {index} at {}µs follows {}µs",
                next.as_micros(),
                prev.as_micros()
            ),
            EncodeError::FrameTooLarge { shard, bytes } => write!(
                f,
                "shard frame {shard} body is {bytes} bytes; the length prefix is u32"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the `JCDN` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended prematurely.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant was out of range.
    BadDiscriminant(&'static str, u8),
    /// A record referenced an id beyond its table.
    DanglingId,
    /// A delta-encoded timestamp overflowed the time axis.
    TimeOverflow,
    /// A shard frame failed a stored CRC-32 check (descriptor or column
    /// in v4, whole payload in v3).
    BadChecksum {
        /// Index of the corrupt shard frame.
        shard: usize,
    },
    /// A shard frame's self-description and its actual bytes disagree.
    FrameMismatch,
    /// A string table overflowed the 32-bit id space.
    TableOverflow,
    /// A status code exceeded 16 bits.
    StatusOverflow,
    /// A v4 column's values are internally inconsistent (trailing bytes,
    /// out-of-range dictionary or exception indices, wrong fixed width).
    BadColumnValue(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a JCDN trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "truncated trace"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::InvalidUtf8 => write!(f, "invalid UTF-8 in string table"),
            DecodeError::BadDiscriminant(what, v) => write!(f, "bad {what} discriminant {v}"),
            DecodeError::DanglingId => write!(f, "record references missing table entry"),
            DecodeError::TimeOverflow => write!(f, "timestamp delta overflow"),
            DecodeError::BadChecksum { shard } => {
                write!(f, "shard frame {shard} failed its CRC-32 check")
            }
            DecodeError::FrameMismatch => write!(f, "shard frame length and records disagree"),
            DecodeError::TableOverflow => write!(f, "string table overflows 32-bit id space"),
            DecodeError::StatusOverflow => write!(f, "status code overflows 16 bits"),
            DecodeError::BadColumnValue(what) => {
                write!(f, "malformed {what} column in a columnar frame")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// IEEE CRC-32 (the polynomial used by zip/png/ethernet), table-driven.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // jcdn-lint: allow(D4) -- i ranges over 0..256; lossless by the loop bound
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        // jcdn-lint: allow(D4) -- masked to 8 bits before the cast
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        // jcdn-lint: allow(D4) -- masked to 7 bits before the cast
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// A zero-copy reader over a byte slice. Every decode path goes through
/// it: reads borrow from the input buffer, bounds failures surface as
/// [`DecodeError::Truncated`], and [`Cursor::pos`] gives the absolute
/// offset the salvage tallies report.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Borrows the next `len` bytes out of the input.
    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(len).ok_or(DecodeError::Truncated)?;
        if end > self.data.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let b = self.take(1)?;
        Ok(b[0])
    }

    pub(crate) fn get_u16_le(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// LEB128 varint, at most 10 bytes. The tenth byte may only carry bit
    /// 63: a continuation bit there, or value bits that a 64-bit shift
    /// would silently discard, are corruption — both yield
    /// [`DecodeError::VarintOverflow`] rather than a wrong value.
    pub(crate) fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.get_u8()?;
            if shift == 63 && byte & !0x01 != 0 {
                return Err(DecodeError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::VarintOverflow)
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    // jcdn-lint: allow(D4) -- zigzag is a bijective bit reinterpretation, not a narrowing
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    // jcdn-lint: allow(D4) -- inverse bijection of `zigzag`; same-width reinterpretation
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// `usize → u64`, lossless on every supported target (usize ≤ 64 bits).
pub(crate) fn len_u64(len: usize) -> u64 {
    // jcdn-lint: allow(D4) -- usize → u64 cannot truncate on ≤64-bit targets
    len as u64
}

/// `u64 → usize` with a caller-chosen error for values a 32-bit target
/// cannot represent (a wrapped length would corrupt the decode at a
/// distance — exactly the failure D4 exists to prevent).
fn to_usize(v: u64, err: DecodeError) -> Result<usize, DecodeError> {
    usize::try_from(v).map_err(|_| err)
}

/// `u32 → usize` table index, lossless on every supported target.
fn index32(v: u32) -> usize {
    // jcdn-lint: allow(D4) -- u32 → usize cannot truncate on ≥32-bit targets
    v as usize
}

/// Widens a count for the [`DecodeStats`] tallies.
fn count_u64(n: usize) -> u64 {
    // jcdn-lint: allow(D4) -- usize → u64 widens; it cannot truncate
    n as u64
}

pub(crate) fn put_string(buf: &mut BytesMut, s: &str) {
    put_varint(buf, len_u64(s.len()));
    buf.put_slice(s.as_bytes());
}

fn get_string(cur: &mut Cursor<'_>) -> Result<String, DecodeError> {
    let len = to_usize(cur.get_varint()?, DecodeError::Truncated)?;
    // One allocation: validate UTF-8 against the borrowed slice, then copy.
    std::str::from_utf8(cur.take(len)?)
        .map(str::to_owned)
        .map_err(|_| DecodeError::InvalidUtf8)
}

// ---------------------------------------------------------------------------
// Group varint: blocks of 4 values share one control byte holding four
// 2-bit width codes, so the decoder reads widths without per-value branch
// chains. The 64-bit flavor uses widths {1,2,4,8}; the 32-bit flavor
// (table ids) uses {1,2,3,4}.

const GV64_WIDTHS: [usize; 4] = [1, 2, 4, 8];
const GV32_WIDTHS: [usize; 4] = [1, 2, 3, 4];

fn gv64_code(v: u64) -> u8 {
    if v < 1 << 8 {
        0
    } else if v < 1 << 16 {
        1
    } else if v < 1 << 32 {
        2
    } else {
        3
    }
}

fn gv32_code(v: u32) -> u8 {
    if v < 1 << 8 {
        0
    } else if v < 1 << 16 {
        1
    } else if v < 1 << 24 {
        2
    } else {
        3
    }
}

fn put_gv64(out: &mut BytesMut, vals: &[u64]) {
    for group in vals.chunks(4) {
        let mut ctrl = 0u8;
        for (slot, &v) in group.iter().enumerate() {
            // jcdn-lint: allow(D4) -- slot < 4, so the shift stays in u8 range
            ctrl |= gv64_code(v) << (2 * slot as u8);
        }
        out.put_u8(ctrl);
        for &v in group {
            let width = GV64_WIDTHS[usize::from(gv64_code(v))];
            out.put_slice(&v.to_le_bytes()[..width]);
        }
    }
}

fn put_gv32(out: &mut BytesMut, vals: &[u32]) {
    for group in vals.chunks(4) {
        let mut ctrl = 0u8;
        for (slot, &v) in group.iter().enumerate() {
            // jcdn-lint: allow(D4) -- slot < 4, so the shift stays in u8 range
            ctrl |= gv32_code(v) << (2 * slot as u8);
        }
        out.put_u8(ctrl);
        for &v in group {
            let width = GV32_WIDTHS[usize::from(gv32_code(v))];
            out.put_slice(&v.to_le_bytes()[..width]);
        }
    }
}

fn get_gv64(cur: &mut Cursor<'_>, n: usize) -> Result<Vec<u64>, DecodeError> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let ctrl = cur.get_u8()?;
        let slots = (n - out.len()).min(4);
        for slot in 0..slots {
            // jcdn-lint: allow(D4) -- slot < 4, so the shift stays in u8 range
            let width = GV64_WIDTHS[usize::from((ctrl >> (2 * slot as u8)) & 0b11)];
            let bytes = cur.take(width)?;
            let mut le = [0u8; 8];
            le[..width].copy_from_slice(bytes);
            out.push(u64::from_le_bytes(le));
        }
    }
    Ok(out)
}

fn get_gv32(cur: &mut Cursor<'_>, n: usize) -> Result<Vec<u32>, DecodeError> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let ctrl = cur.get_u8()?;
        let slots = (n - out.len()).min(4);
        for slot in 0..slots {
            // jcdn-lint: allow(D4) -- slot < 4, so the shift stays in u8 range
            let width = GV32_WIDTHS[usize::from((ctrl >> (2 * slot as u8)) & 0b11)];
            let bytes = cur.take(width)?;
            let mut le = [0u8; 4];
            le[..width].copy_from_slice(bytes);
            out.push(u32::from_le_bytes(le));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Per-column codecs for the packed v4 columns.

/// Packs method/mime/cache into one byte: `method << 5 | mime << 2 | cache`.
fn pack_mmc(r: &LogRecord) -> u8 {
    method_tag(r.method) << 5 | mime_tag(r.mime) << 2 | cache_tag(r.cache)
}

/// Nibble-packs two records' flag sets per byte (record `i` in byte
/// `i/2`, even `i` in the low nibble). `RecordFlags` is guaranteed to fit
/// a nibble by a compile-time assertion next to its definition.
fn put_flag_column(out: &mut BytesMut, records: &[LogRecord]) {
    for pair in records.chunks(2) {
        let low = pair[0].flags.bits();
        let high = pair.get(1).map_or(0, |r| r.flags.bits());
        out.put_u8(low | (high << 4));
    }
}

/// Sparse exception list: most records retry zero times, so only nonzero
/// retries are stored as (index delta, value) pairs.
fn put_retry_column(out: &mut BytesMut, retries: &[u8]) {
    let count = retries.iter().filter(|&&r| r != 0).count();
    put_varint(out, len_u64(count));
    let mut prev = 0usize;
    let mut first = true;
    for (i, &r) in retries.iter().enumerate() {
        if r == 0 {
            continue;
        }
        let delta = if first { i } else { i - prev };
        put_varint(out, len_u64(delta));
        out.put_u8(r);
        prev = i;
        first = false;
    }
}

fn get_retry_column(cur: &mut Cursor<'_>, n: usize) -> Result<Vec<u8>, DecodeError> {
    let count = to_usize(cur.get_varint()?, DecodeError::BadColumnValue("retries"))?;
    if count > n {
        return Err(DecodeError::BadColumnValue("retries"));
    }
    let mut out = vec![0u8; n];
    let mut index = 0usize;
    for slot in 0..count {
        let delta = to_usize(cur.get_varint()?, DecodeError::BadColumnValue("retries"))?;
        // A zero delta past the first exception would silently overwrite
        // the previous entry; indices must be strictly increasing.
        if slot > 0 && delta == 0 {
            return Err(DecodeError::BadColumnValue("retries"));
        }
        index = if slot == 0 {
            delta
        } else {
            index
                .checked_add(delta)
                .ok_or(DecodeError::BadColumnValue("retries"))?
        };
        if index >= n {
            return Err(DecodeError::BadColumnValue("retries"));
        }
        out[index] = cur.get_u8()?;
    }
    Ok(out)
}

/// Dictionary-codes statuses: the distinct u16 codes in first-appearance
/// order, then one index per record (u8 while the dictionary stays ≤ 256
/// entries, which it always does for real HTTP status mixes).
fn put_status_column(out: &mut BytesMut, statuses: &[u16]) {
    let mut dict: Vec<u16> = Vec::new();
    let mut index_of: HashMap<u16, usize> = HashMap::new();
    let mut indices: Vec<usize> = Vec::with_capacity(statuses.len());
    for &s in statuses {
        let next = dict.len();
        let idx = *index_of.entry(s).or_insert(next);
        if idx == next {
            dict.push(s);
        }
        indices.push(idx);
    }
    put_varint(out, len_u64(dict.len()));
    for &s in &dict {
        out.put_u16_le(s);
    }
    if dict.len() <= 256 {
        for &i in &indices {
            // jcdn-lint: allow(D4) -- the dictionary has ≤ 256 entries, so the index fits u8
            out.put_u8(i as u8);
        }
    } else {
        for &i in &indices {
            // jcdn-lint: allow(D4) -- status codes are u16, so the dictionary fits u16 indices
            out.put_u16_le(i as u16);
        }
    }
}

fn get_status_column(cur: &mut Cursor<'_>, n: usize) -> Result<Vec<u16>, DecodeError> {
    let dict_len = to_usize(cur.get_varint()?, DecodeError::BadColumnValue("status"))?;
    if dict_len > 1 << 16 || (n > 0 && dict_len == 0) {
        return Err(DecodeError::BadColumnValue("status"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(cur.get_u16_le()?);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = if dict.len() <= 256 {
            usize::from(cur.get_u8()?)
        } else {
            usize::from(cur.get_u16_le()?)
        };
        out.push(*dict.get(idx).ok_or(DecodeError::BadColumnValue("status"))?);
    }
    Ok(out)
}

/// Decodes one v1–v3 interleaved record.
fn get_record(
    cur: &mut Cursor<'_>,
    version: u16,
    prev_time: &mut i64,
    url_map: &[UrlId],
    ua_map: &[UaId],
) -> Result<LogRecord, DecodeError> {
    let delta = unzigzag(cur.get_varint()?);
    let t = prev_time
        .checked_add(delta)
        .ok_or(DecodeError::TimeOverflow)?;
    *prev_time = t;
    let client = ClientId(cur.get_varint()?);
    let ua_raw = cur.get_varint()?;
    let ua = if ua_raw == 0 {
        None
    } else {
        let id = to_usize(ua_raw - 1, DecodeError::DanglingId)?;
        match ua_map.get(id) {
            Some(&mapped) => Some(mapped),
            None => return Err(DecodeError::DanglingId),
        }
    };
    let url_raw = to_usize(cur.get_varint()?, DecodeError::DanglingId)?;
    let url = match url_map.get(url_raw) {
        Some(&mapped) => mapped,
        None => return Err(DecodeError::DanglingId),
    };
    let method = untag_method(cur.get_u8()?)?;
    let mime = untag_mime(cur.get_u8()?)?;
    let cache = untag_cache(cur.get_u8()?)?;
    let (retries, flags) = match version {
        1 => (0, RecordFlags::NONE),
        2..=4 => {
            let retries = cur.get_u8()?;
            let raw = cur.get_u8()?;
            let flags =
                RecordFlags::from_bits(raw).ok_or(DecodeError::BadDiscriminant("flags", raw))?;
            (retries, flags)
        }
        v => return Err(DecodeError::BadVersion(v)),
    };
    let status = u16::try_from(cur.get_varint()?).map_err(|_| DecodeError::StatusOverflow)?;
    let response_bytes = cur.get_varint()?;
    Ok(LogRecord {
        // jcdn-lint: allow(D4) -- clamped non-negative, so i64 → u64 is value-preserving
        time: SimTime::from_micros(t.max(0) as u64),
        client,
        ua,
        url,
        method,
        mime,
        status,
        response_bytes,
        cache,
        retries,
        flags,
    })
}

/// Encodes the file prologue — magic, version, and both string tables —
/// *without* the shard-count varint that follows it in a complete file.
/// The durable store (see [`crate::store`]) persists this prologue once
/// per run and assembles `prologue + varint(shard_count) + frames` at
/// finalize time, which makes a resumed run byte-identical to an
/// uninterrupted one by construction.
pub(crate) fn encode_tables(interner: &Interner) -> Bytes {
    encode_tables_versioned(interner, VERSION)
}

/// [`encode_tables`] with an explicit version stamp; [`crate::compat`]
/// uses it to emit historical-format fixtures.
pub(crate) fn encode_tables_versioned(interner: &Interner, version: u16) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    put_varint(&mut buf, len_u64(interner.url_table().len()));
    for url in interner.url_table() {
        put_string(&mut buf, url);
    }
    put_varint(&mut buf, len_u64(interner.ua_table().len()));
    for ua in interner.ua_table() {
        put_string(&mut buf, ua);
    }
    buf.freeze()
}

/// One encoded shard frame: the full frame bytes (length prefix,
/// descriptor CRC, descriptor, columns) plus its record count for index
/// keeping.
pub(crate) struct EncodedFrame {
    /// The complete frame bytes, ready for concatenation.
    pub bytes: Bytes,
    /// Records the frame carries (what the shard index stores).
    pub records: u64,
}

/// Encodes one columnar v4 shard frame. `index_base`/`last_time` thread
/// the cross-shard time-ordering check through successive calls, so
/// encoding shard by shard enforces exactly what a single sequential pass
/// enforces — which is also what makes parallel per-shard encoding
/// byte-identical to the sequential order (see [`shard_bases`]).
pub(crate) fn encode_frame(
    records: &[LogRecord],
    index_base: usize,
    last_time: &mut Option<SimTime>,
    shard_idx: usize,
) -> Result<EncodedFrame, EncodeError> {
    let n = records.len();

    // Column 0 — timestamps. The ordering check rides along because the
    // time column is where disorder becomes unrepresentable.
    let mut times = BytesMut::with_capacity(n * 2 + 1);
    let mut prev: i64 = 0;
    for (offset, r) in records.iter().enumerate() {
        if let Some(prev_time) = *last_time {
            if r.time < prev_time {
                return Err(EncodeError::OutOfOrder {
                    index: index_base + offset,
                    prev: prev_time,
                    next: r.time,
                });
            }
        }
        *last_time = Some(r.time);
        // jcdn-lint: allow(D4) -- the time axis caps at 2^63 µs (~292k simulated years)
        let t = r.time.as_micros() as i64;
        put_varint(&mut times, zigzag(t - prev));
        prev = t;
    }

    // Columns 1–3 — ids. The +1 on UA ids cannot overflow: the interner
    // caps tables at u32::MAX entries, so ids stay below u32::MAX.
    let clients: Vec<u64> = records.iter().map(|r| r.client.0).collect();
    let mut clients_col = BytesMut::with_capacity(n * 3 + 1);
    put_gv64(&mut clients_col, &clients);
    let uas: Vec<u32> = records
        .iter()
        .map(|r| r.ua.map_or(0, |ua| ua.0 + 1))
        .collect();
    let mut uas_col = BytesMut::with_capacity(n * 2 + 1);
    put_gv32(&mut uas_col, &uas);
    let urls: Vec<u32> = records.iter().map(|r| r.url.0).collect();
    let mut urls_col = BytesMut::with_capacity(n * 2 + 1);
    put_gv32(&mut urls_col, &urls);

    // Columns 4–8 — packed scalars.
    let mut mmc_col = BytesMut::with_capacity(n);
    for r in records {
        mmc_col.put_u8(pack_mmc(r));
    }
    let mut flags_col = BytesMut::with_capacity(n / 2 + 1);
    put_flag_column(&mut flags_col, records);
    let retries: Vec<u8> = records.iter().map(|r| r.retries).collect();
    let mut retries_col = BytesMut::with_capacity(16);
    put_retry_column(&mut retries_col, &retries);
    let statuses: Vec<u16> = records.iter().map(|r| r.status).collect();
    let mut status_col = BytesMut::with_capacity(n + 16);
    put_status_column(&mut status_col, &statuses);
    let mut bytes_col = BytesMut::with_capacity(n * 2 + 1);
    for r in records {
        put_varint(&mut bytes_col, r.response_bytes);
    }

    let cols: [Bytes; COLUMNS] = [
        times.freeze(),
        clients_col.freeze(),
        uas_col.freeze(),
        urls_col.freeze(),
        mmc_col.freeze(),
        flags_col.freeze(),
        retries_col.freeze(),
        status_col.freeze(),
        bytes_col.freeze(),
    ];

    // Descriptor: record count, then each column's length and CRC-32.
    // Its own CRC (stamped in the frame header) makes the directory
    // trustworthy before any column is parsed.
    let mut desc = BytesMut::with_capacity(8 + COLUMNS * 9);
    put_varint(&mut desc, len_u64(n));
    for col in &cols {
        put_varint(&mut desc, len_u64(col.len()));
        desc.put_u32_le(crc32(col));
    }
    let desc = desc.freeze();

    let body_len: usize = desc.len() + cols.iter().map(|c| c.len()).sum::<usize>();
    let body_len_u32 = u32::try_from(body_len).map_err(|_| EncodeError::FrameTooLarge {
        shard: shard_idx,
        bytes: body_len,
    })?;
    let mut frame = BytesMut::with_capacity(body_len + 8);
    frame.put_u32_le(body_len_u32);
    frame.put_u32_le(crc32(&desc));
    frame.put_slice(&desc);
    for col in &cols {
        frame.put_slice(col);
    }
    Ok(EncodedFrame {
        bytes: frame.freeze(),
        records: len_u64(n),
    })
}

/// Per-shard starting points for the cross-shard ordering check:
/// `bases[i]` is the global index of shard `i`'s first record and
/// `prevs[i]` the timestamp of the last record in the nearest preceding
/// non-empty shard. Seeding [`encode_frame`] with these makes independent
/// per-shard encodes behave exactly like one sequential pass — same
/// bytes, and the lowest-indexed ordering error is the one a sequential
/// encoder would have hit first.
pub(crate) fn shard_bases(shards: &[&[LogRecord]]) -> (Vec<usize>, Vec<Option<SimTime>>) {
    let mut bases = Vec::with_capacity(shards.len());
    let mut prevs = Vec::with_capacity(shards.len());
    let mut base = 0usize;
    let mut last: Option<SimTime> = None;
    for shard in shards {
        bases.push(base);
        prevs.push(last);
        base += shard.len();
        if let Some(r) = shard.last() {
            last = Some(r.time);
        }
    }
    (bases, prevs)
}

/// Encodes one frame per record slice, fanning out on the exec pool.
pub(crate) fn encode_shard_frames(
    shards: &[&[LogRecord]],
    threads: usize,
) -> Result<Vec<EncodedFrame>, EncodeError> {
    let (bases, prevs) = shard_bases(shards);
    jcdn_exec::try_scatter_gather_labeled("codec.encode", shards.len(), threads, |i| {
        let mut last_time = prevs[i];
        encode_frame(shards[i], bases[i], &mut last_time, i)
    })
}

/// Encodes tables plus one frame per record slice. `shards` must together
/// form a non-decreasing time sequence.
fn encode_frames(
    interner: &Interner,
    shards: &[&[LogRecord]],
    threads: usize,
) -> Result<Bytes, EncodeError> {
    let frames = encode_shard_frames(shards, threads)?;
    let total: usize = frames.iter().map(|f| f.bytes.len()).sum();
    let tables = encode_tables(interner);
    let mut buf = BytesMut::with_capacity(tables.len() + total + 10);
    buf.put_slice(&tables);
    put_varint(&mut buf, len_u64(shards.len()));
    for frame in &frames {
        buf.put_slice(&frame.bytes);
    }
    Ok(buf.freeze())
}

/// Encodes a trace into the binary format as a single shard frame.
///
/// The trace must be time-sorted (the format delta-encodes time); an
/// out-of-order record yields [`EncodeError::OutOfOrder`].
pub fn encode(trace: &Trace) -> Result<Bytes, EncodeError> {
    encode_frames(trace.interner(), &[trace.records()], 1)
}

/// Encodes a sharded trace, one frame per shard.
pub fn encode_sharded(trace: &ShardedTrace) -> Result<Bytes, EncodeError> {
    encode_sharded_parallel(trace, 1)
}

/// [`encode_sharded`] with per-shard frames encoded on `threads` workers
/// of the exec pool. The output is byte-identical for any thread count.
pub fn encode_sharded_parallel(trace: &ShardedTrace, threads: usize) -> Result<Bytes, EncodeError> {
    let shards: Vec<&[LogRecord]> = (0..trace.shard_count())
        .map(|i| trace.shard_records(i))
        .collect();
    encode_frames(trace.interner(), &shards, threads)
}

/// Decodes a binary trace, flattening any shard frames into one trace.
pub fn decode(buf: Bytes) -> Result<Trace, DecodeError> {
    decode_sharded(buf).map(ShardedTrace::into_trace)
}

/// Tallies from a tolerant decode: how much of the payload survived, and
/// why the rest did not.
///
/// `records_dropped` counts records the frame descriptors promised but
/// that could not be decoded (corrupt bytes, dangling table references,
/// frames failing a checksum). Whole-frame losses are split by cause —
/// `frames_crc_failed` for frames failing a stored CRC-32 (bytes present
/// but corrupt), `frames_truncated` for frames cut off by a short file
/// (bytes missing), and `frames_header_damaged` for frames whose
/// self-description contradicts the bytes actually present — because the
/// causes call for different recoveries: a CRC failure means regenerate
/// or restore that shard, a truncation means the tail of the file is
/// gone, header damage means the frame boundary metadata itself is
/// suspect. A clean decode has every drop counter at zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Records successfully decoded.
    pub records_decoded: u64,
    /// Records promised by headers but lost to corruption.
    pub records_dropped: u64,
    /// Whole frames abandoned because a stored CRC-32 check failed.
    pub frames_crc_failed: u64,
    /// Whole frames abandoned because the file ended inside or before
    /// them.
    pub frames_truncated: u64,
    /// Frames whose self-description (record count or column directory)
    /// disagrees with the bytes present. Distinct from a CRC failure: the
    /// payload may be intact while the header lies about it.
    pub frames_header_damaged: u64,
    /// Byte offset (from the start of the decoded buffer) of the first
    /// error encountered, when anything was dropped. Localizes damage for
    /// the operator: a truncation offset near the file size means a torn
    /// tail, a small one means the file is mostly gone. Buffer-relative,
    /// so it only identifies a location within the *one* input it came
    /// from — never min offsets across different files.
    pub first_error_offset: Option<u64>,
}

impl DecodeStats {
    /// True when nothing was dropped.
    pub fn is_clean(&self) -> bool {
        self.records_dropped == 0 && self.frames_dropped() == 0
    }

    /// Total frames abandoned wholesale, any cause.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_crc_failed + self.frames_truncated + self.frames_header_damaged
    }

    /// Folds another tally into this one (the shard-merge direction: the
    /// earliest error offset wins, counters add). Only meaningful for
    /// tallies over the *same* buffer — offsets are buffer-relative, so
    /// merging stats from different files keeps the counters honest but
    /// makes the offset meaningless (see the `merge` command, which
    /// reports offsets per input instead).
    pub fn merge(&mut self, other: &DecodeStats) {
        self.records_decoded += other.records_decoded;
        self.records_dropped += other.records_dropped;
        self.frames_crc_failed += other.frames_crc_failed;
        self.frames_truncated += other.frames_truncated;
        self.frames_header_damaged += other.frames_header_damaged;
        self.first_error_offset = match (self.first_error_offset, other.first_error_offset) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// Records the byte offset of an error; the first one sticks.
    fn note_error(&mut self, offset: u64) {
        self.first_error_offset.get_or_insert(offset);
    }
}

/// Decodes a binary trace, preserving its shard frames. Version 1 and 2
/// payloads (which predate framing) decode into a single shard.
pub fn decode_sharded(buf: Bytes) -> Result<ShardedTrace, DecodeError> {
    decode_sharded_parallel(&buf, 1)
}

/// [`decode_sharded`] with per-shard frames decoded on `threads` workers
/// of the exec pool. The result is identical for any thread count.
pub fn decode_sharded_parallel(buf: &[u8], threads: usize) -> Result<ShardedTrace, DecodeError> {
    decode_sharded_impl(buf, false, threads).map(|(trace, _)| trace)
}

/// Decodes a binary trace, salvaging what it can from a damaged payload
/// instead of failing outright.
///
/// Header and string-table errors (bad magic, unsupported version,
/// truncation before the record streams) are still hard errors — there is
/// nothing to salvage without the tables. Past that point the decode is
/// best-effort: a v4 frame failing any stored CRC or whose descriptor
/// lies about its bytes is dropped whole (its shard slot stays, empty), a
/// v3 record that fails to decode drops the rest of its frame (v3 record
/// boundaries are not self-synchronizing), and truncation mid-stream
/// keeps everything already decoded. The returned [`DecodeStats`] says
/// exactly what was lost, so callers can surface the damage instead of
/// hiding it.
pub fn decode_sharded_tolerant(buf: Bytes) -> Result<(ShardedTrace, DecodeStats), DecodeError> {
    decode_sharded_impl(&buf, true, 1)
}

/// [`decode_sharded_tolerant`] with per-shard frames decoded on `threads`
/// workers of the exec pool. Salvage results and tallies are identical
/// for any thread count.
pub fn decode_sharded_tolerant_parallel(
    buf: &[u8],
    threads: usize,
) -> Result<(ShardedTrace, DecodeStats), DecodeError> {
    decode_sharded_impl(buf, true, threads)
}

/// One frame's boundaries, borrowed from the input during the cheap
/// sequential slicing pass; record-level decoding then fans out.
enum FrameSlice<'a> {
    V3 {
        payload: &'a [u8],
        crc: u32,
        claim: usize,
        at: u64,
    },
    V4 {
        body: &'a [u8],
        desc_crc: u32,
        at: u64,
    },
}

/// Why (part of) a frame was lost, for the tolerant-decode tallies.
struct FrameLoss {
    error: DecodeError,
    at: u64,
    dropped: u64,
    crc_failed: bool,
    header_damaged: bool,
}

/// Result of decoding one frame: salvaged records plus any loss.
struct FrameOutcome {
    records: Vec<LogRecord>,
    loss: Option<FrameLoss>,
    trailing_junk: bool,
}

fn slice_frame<'a>(cur: &mut Cursor<'a>, version: u16) -> Result<FrameSlice<'a>, DecodeError> {
    match version {
        // v1/v2 are undelimited streams with no frames; a caller asking to
        // slice a frame out of one is a dispatch bug, surfaced as BadVersion
        // rather than misparsed bytes.
        1 | 2 => Err(DecodeError::BadVersion(version)),
        3 => {
            let payload_len = to_usize(u64::from(cur.get_u32_le()?), DecodeError::Truncated)?;
            let claim = to_usize(cur.get_varint()?, DecodeError::Truncated)?;
            let crc = cur.get_u32_le()?;
            let at = count_u64(cur.pos());
            let payload = cur.take(payload_len)?;
            Ok(FrameSlice::V3 {
                payload,
                crc,
                claim,
                at,
            })
        }
        4 => {
            let body_len = to_usize(u64::from(cur.get_u32_le()?), DecodeError::Truncated)?;
            let desc_crc = cur.get_u32_le()?;
            let at = count_u64(cur.pos());
            let body = cur.take(body_len)?;
            Ok(FrameSlice::V4 { body, desc_crc, at })
        }
        v => Err(DecodeError::BadVersion(v)),
    }
}

fn decode_sharded_impl(
    buf: &[u8],
    tolerate: bool,
    threads: usize,
) -> Result<(ShardedTrace, DecodeStats), DecodeError> {
    let mut cur = Cursor::new(buf);
    if cur.remaining() < 6 {
        return Err(DecodeError::Truncated);
    }
    let magic = cur.take(4)?;
    if magic != &MAGIC[..] {
        return Err(DecodeError::BadMagic);
    }
    let version = cur.get_u16_le()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DecodeError::BadVersion(version));
    }

    let mut interner = Interner::new();
    // Interning deduplicates, so a (corrupted or adversarial) payload with
    // repeated table strings would otherwise leave record ids pointing past
    // the rebuilt table; map payload indices to interned ids explicitly.
    let url_count = to_usize(cur.get_varint()?, DecodeError::TableOverflow)?;
    let mut url_map = Vec::with_capacity(url_count.min(1 << 20));
    for _ in 0..url_count {
        let s = get_string(&mut cur)?;
        url_map.push(
            interner
                .try_intern_url(&s)
                .map_err(|_| DecodeError::TableOverflow)?,
        );
    }
    let ua_count = to_usize(cur.get_varint()?, DecodeError::TableOverflow)?;
    let mut ua_map = Vec::with_capacity(ua_count.min(1 << 20));
    for _ in 0..ua_count {
        let s = get_string(&mut cur)?;
        ua_map.push(
            interner
                .try_intern_ua(&s)
                .map_err(|_| DecodeError::TableOverflow)?,
        );
    }

    let mut stats = DecodeStats::default();

    match version {
        1 | 2 => {
            // Pre-framing formats: one undelimited record stream.
            let record_count = to_usize(cur.get_varint()?, DecodeError::Truncated)?;
            let mut records = Vec::with_capacity(record_count.min(1 << 24));
            let mut prev_time: i64 = 0;
            for decoded in 0..record_count {
                let record_at = count_u64(cur.pos());
                match get_record(&mut cur, version, &mut prev_time, &url_map, &ua_map) {
                    Ok(record) => records.push(record),
                    Err(e) => {
                        if !tolerate {
                            return Err(e);
                        }
                        // The stream is undelimited, so record boundaries past
                        // a bad record are unknowable; keep the decoded prefix.
                        stats.records_dropped += count_u64(record_count - decoded);
                        stats.note_error(record_at);
                        break;
                    }
                }
            }
            stats.records_decoded += count_u64(records.len());
            return Ok((ShardedTrace::from_parts(interner, vec![records]), stats));
        }
        // Framed formats fall through to the shared slice-then-fan-out path.
        3 | 4 => {}
        v => return Err(DecodeError::BadVersion(v)),
    }

    // Framed formats. First a cheap sequential pass over frame headers
    // slices the buffer — truncation here loses the cut frame and every
    // later one (frame boundaries are gone).
    let shard_count = to_usize(cur.get_varint()?, DecodeError::Truncated)?;
    let mut slices = Vec::with_capacity(shard_count.min(1 << 16));
    let mut truncation: Option<u64> = None;
    for _ in 0..shard_count {
        let frame_at = count_u64(cur.pos());
        match slice_frame(&mut cur, version) {
            Ok(slice) => slices.push(slice),
            Err(e) => {
                if !tolerate {
                    return Err(e);
                }
                truncation = Some(frame_at);
                break;
            }
        }
    }

    // Frames decode independently (time deltas reset per frame), so the
    // record-level work fans out on the exec pool.
    let outcomes =
        jcdn_exec::scatter_gather_labeled(
            "codec.decode",
            slices.len(),
            threads,
            |i| match slices[i] {
                FrameSlice::V3 {
                    payload,
                    crc,
                    claim,
                    at,
                } => decode_frame_v3(payload, crc, claim, at, i, &url_map, &ua_map),
                FrameSlice::V4 { body, desc_crc, at } => {
                    decode_frame_v4(body, desc_crc, at, i, &url_map, &ua_map)
                }
            },
        );

    // Fold outcomes in shard order, so the strict error (and the first
    // noted offset) match what a sequential decode would report.
    let mut shards = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        if !tolerate {
            if let Some(loss) = outcome.loss {
                return Err(loss.error);
            }
            if outcome.trailing_junk {
                return Err(DecodeError::FrameMismatch);
            }
        }
        if let Some(loss) = &outcome.loss {
            stats.records_dropped += loss.dropped;
            if loss.crc_failed {
                stats.frames_crc_failed += 1;
            }
            if loss.header_damaged {
                stats.frames_header_damaged += 1;
            }
            stats.note_error(loss.at);
        }
        stats.records_decoded += count_u64(outcome.records.len());
        shards.push(outcome.records);
    }
    if let Some(at) = truncation {
        stats.frames_truncated += count_u64(shard_count - shards.len());
        stats.note_error(at);
    }
    Ok((ShardedTrace::from_parts(interner, shards), stats))
}

/// Decodes one v3 frame (interleaved per-record fields). Kept prefix
/// semantics: a CRC-valid frame that dies mid-record keeps the records
/// already decoded.
fn decode_frame_v3(
    payload: &[u8],
    stored_crc: u32,
    claim: usize,
    payload_at: u64,
    shard: usize,
    url_map: &[UrlId],
    ua_map: &[UaId],
) -> FrameOutcome {
    if crc32(payload) != stored_crc {
        // The frame is framed, so only *it* is lost; its slot stays (as
        // an empty shard) so shard indices remain stable.
        return FrameOutcome {
            records: Vec::new(),
            loss: Some(FrameLoss {
                error: DecodeError::BadChecksum { shard },
                at: payload_at,
                dropped: count_u64(claim),
                crc_failed: true,
                header_damaged: false,
            }),
            trailing_junk: false,
        };
    }
    let mut cur = Cursor::new(payload);
    let mut records = Vec::with_capacity(claim.min(1 << 24));
    let mut prev_time: i64 = 0;
    for decoded in 0..claim {
        let record_start = cur.pos();
        match get_record(&mut cur, 3, &mut prev_time, url_map, ua_map) {
            Ok(record) => records.push(record),
            Err(e) => {
                // The v3 record count is outside the CRC, so an inflated
                // count must not inflate the drop tally: clamp to how many
                // records the remaining bytes could possibly hold, and
                // call out the header damage when the count was a lie.
                let missing = claim - decoded;
                let fit = (payload.len() - record_start) / MIN_V3_RECORD_BYTES;
                return FrameOutcome {
                    records,
                    loss: Some(FrameLoss {
                        error: e,
                        at: payload_at + count_u64(record_start),
                        dropped: count_u64(missing.min(fit)),
                        crc_failed: false,
                        header_damaged: missing > fit,
                    }),
                    trailing_junk: false,
                };
            }
        }
    }
    FrameOutcome {
        records,
        loss: None,
        trailing_junk: cur.remaining() > 0,
    }
}

/// Parses a v4 frame descriptor: `(record_count, column directory)`.
fn parse_descriptor(cur: &mut Cursor<'_>) -> Result<(usize, [(usize, u32); COLUMNS]), DecodeError> {
    let claim = to_usize(cur.get_varint()?, DecodeError::FrameMismatch)?;
    let mut dir = [(0usize, 0u32); COLUMNS];
    for slot in dir.iter_mut() {
        slot.0 = to_usize(cur.get_varint()?, DecodeError::FrameMismatch)?;
        slot.1 = cur.get_u32_le()?;
    }
    Ok((claim, dir))
}

/// Decodes one columnar v4 frame. All-or-nothing per frame: any CRC
/// failure, directory mismatch, or bad column value drops the frame
/// whole (its shard slot stays, empty).
fn decode_frame_v4(
    body: &[u8],
    desc_crc: u32,
    body_at: u64,
    shard: usize,
    url_map: &[UrlId],
    ua_map: &[UaId],
) -> FrameOutcome {
    let lost = |error, at, dropped, crc_failed, header_damaged| FrameOutcome {
        records: Vec::new(),
        loss: Some(FrameLoss {
            error,
            at,
            dropped,
            crc_failed,
            header_damaged,
        }),
        trailing_junk: false,
    };

    let mut cur = Cursor::new(body);
    let (claim, dir) = match parse_descriptor(&mut cur) {
        Ok(parsed) => parsed,
        Err(e) => return lost(e, body_at, 0, false, true),
    };
    let desc_len = cur.pos();
    if crc32(&body[..desc_len]) != desc_crc {
        // The record count itself is untrusted here, so nothing can be
        // added to the record drop tally — the frame loss counter carries
        // the damage report.
        return lost(DecodeError::BadChecksum { shard }, body_at, 0, true, false);
    }

    // The descriptor is now authenticated: `claim` is the real record
    // count, so losses below can be tallied exactly.
    let mut expected = count_u64(desc_len);
    let mut overflow = false;
    for &(len, _) in &dir {
        match expected.checked_add(count_u64(len)) {
            Some(sum) => expected = sum,
            None => overflow = true,
        }
    }
    if overflow || expected != count_u64(body.len()) {
        return lost(
            DecodeError::FrameMismatch,
            body_at,
            count_u64(claim),
            false,
            true,
        );
    }

    let mut col_slices: [&[u8]; COLUMNS] = [&[]; COLUMNS];
    let mut start = desc_len;
    for (slot, &(len, col_crc)) in dir.iter().enumerate() {
        let col = &body[start..start + len];
        if crc32(col) != col_crc {
            return lost(
                DecodeError::BadChecksum { shard },
                body_at + count_u64(start),
                count_u64(claim),
                true,
                false,
            );
        }
        col_slices[slot] = col;
        start += len;
    }

    match decode_columns(claim, &col_slices, url_map, ua_map) {
        Ok(records) => FrameOutcome {
            records,
            loss: None,
            trailing_junk: false,
        },
        Err(e) => lost(
            e,
            body_at + count_u64(desc_len),
            count_u64(claim),
            false,
            false,
        ),
    }
}

/// Requires a column cursor to be fully consumed — trailing bytes mean
/// the column length and its values disagree.
fn column_drained(cur: &Cursor<'_>, what: &'static str) -> Result<(), DecodeError> {
    if cur.remaining() != 0 {
        return Err(DecodeError::BadColumnValue(what));
    }
    Ok(())
}

/// Bulk-decodes the nine columns of a v4 frame into records.
fn decode_columns(
    n: usize,
    cols: &[&[u8]; COLUMNS],
    url_map: &[UrlId],
    ua_map: &[UaId],
) -> Result<Vec<LogRecord>, DecodeError> {
    // Even a CRC-valid descriptor could be adversarial, so bound `n` by
    // the fixed-width columns before any `n`-sized allocation: mmc is
    // exactly one byte per record, flags half a byte.
    if cols[4].len() != n || cols[5].len() != n.div_ceil(2) {
        return Err(DecodeError::BadColumnValue("fixed-width"));
    }

    let mut cur = Cursor::new(cols[0]);
    let mut times = Vec::with_capacity(n);
    let mut prev: i64 = 0;
    for _ in 0..n {
        let delta = unzigzag(cur.get_varint()?);
        prev = prev.checked_add(delta).ok_or(DecodeError::TimeOverflow)?;
        times.push(prev);
    }
    column_drained(&cur, "time")?;

    let mut cur = Cursor::new(cols[1]);
    let clients = get_gv64(&mut cur, n)?;
    column_drained(&cur, "client")?;

    let mut cur = Cursor::new(cols[2]);
    let uas_raw = get_gv32(&mut cur, n)?;
    column_drained(&cur, "ua")?;

    let mut cur = Cursor::new(cols[3]);
    let urls_raw = get_gv32(&mut cur, n)?;
    column_drained(&cur, "url")?;

    let mut cur = Cursor::new(cols[6]);
    let retries = get_retry_column(&mut cur, n)?;
    column_drained(&cur, "retries")?;

    let mut cur = Cursor::new(cols[7]);
    let statuses = get_status_column(&mut cur, n)?;
    column_drained(&cur, "status")?;

    let mut cur = Cursor::new(cols[8]);
    let mut sizes = Vec::with_capacity(n);
    for _ in 0..n {
        sizes.push(cur.get_varint()?);
    }
    column_drained(&cur, "bytes")?;

    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let ua = match uas_raw[i] {
            0 => None,
            raw => Some(
                *ua_map
                    .get(index32(raw - 1))
                    .ok_or(DecodeError::DanglingId)?,
            ),
        };
        let url = *url_map
            .get(index32(urls_raw[i]))
            .ok_or(DecodeError::DanglingId)?;
        let packed = cols[4][i];
        let flag_byte = cols[5][i >> 1];
        let nibble = if i & 1 == 0 {
            flag_byte & 0x0F
        } else {
            flag_byte >> 4
        };
        let flags =
            RecordFlags::from_bits(nibble).ok_or(DecodeError::BadDiscriminant("flags", nibble))?;
        records.push(LogRecord {
            // jcdn-lint: allow(D4) -- clamped non-negative, so i64 → u64 is value-preserving
            time: SimTime::from_micros(times[i].max(0) as u64),
            client: ClientId(clients[i]),
            ua,
            url,
            method: untag_method(packed >> 5)?,
            mime: untag_mime((packed >> 2) & 0x07)?,
            status: statuses[i],
            response_bytes: sizes[i],
            cache: untag_cache(packed & 0x03)?,
            retries: retries[i],
            flags,
        });
    }
    Ok(records)
}

pub(crate) fn method_tag(m: Method) -> u8 {
    match m {
        Method::Get => 0,
        Method::Post => 1,
        Method::Head => 2,
        Method::Put => 3,
        Method::Delete => 4,
    }
}

fn untag_method(v: u8) -> Result<Method, DecodeError> {
    Ok(match v {
        0 => Method::Get,
        1 => Method::Post,
        2 => Method::Head,
        3 => Method::Put,
        4 => Method::Delete,
        _ => return Err(DecodeError::BadDiscriminant("method", v)),
    })
}

pub(crate) fn mime_tag(m: MimeType) -> u8 {
    match m {
        MimeType::Json => 0,
        MimeType::Html => 1,
        MimeType::Css => 2,
        MimeType::JavaScript => 3,
        MimeType::Image => 4,
        MimeType::Video => 5,
        MimeType::Other => 6,
    }
}

fn untag_mime(v: u8) -> Result<MimeType, DecodeError> {
    Ok(match v {
        0 => MimeType::Json,
        1 => MimeType::Html,
        2 => MimeType::Css,
        3 => MimeType::JavaScript,
        4 => MimeType::Image,
        5 => MimeType::Video,
        6 => MimeType::Other,
        _ => return Err(DecodeError::BadDiscriminant("mime", v)),
    })
}

pub(crate) fn cache_tag(c: CacheStatus) -> u8 {
    match c {
        CacheStatus::Hit => 0,
        CacheStatus::Miss => 1,
        CacheStatus::NotCacheable => 2,
    }
}

fn untag_cache(v: u8) -> Result<CacheStatus, DecodeError> {
    Ok(match v {
        0 => CacheStatus::Hit,
        1 => CacheStatus::Miss,
        2 => CacheStatus::NotCacheable,
        _ => return Err(DecodeError::BadDiscriminant("cache", v)),
    })
}

fn encode_io_error(e: EncodeError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
}

/// Writes a trace to a file in the binary format. The trace must be
/// time-sorted; an unsorted trace fails with `InvalidInput`.
///
/// The write is durable (write-temp, fsync, rename — see
/// [`crate::store::durable_write`]): a crash mid-write leaves either the
/// previous file or the new one, never a torn hybrid.
pub fn write_file(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    let bytes = encode(trace).map_err(encode_io_error)?;
    crate::store::durable_write(path, bytes.to_vec(), "codec.write", jcdn_chaos::handle())
}

/// Writes a sharded trace to a file, one frame per shard. Durable, like
/// [`write_file`].
pub fn write_file_sharded(trace: &ShardedTrace, path: &std::path::Path) -> std::io::Result<()> {
    let bytes = encode_sharded(trace).map_err(encode_io_error)?;
    crate::store::durable_write(path, bytes.to_vec(), "codec.write", jcdn_chaos::handle())
}

/// Reads a binary trace file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<Trace> {
    read_file_sharded(path).map(ShardedTrace::into_trace)
}

/// [`read_file`] with frames decoded on `threads` workers.
pub fn read_file_parallel(path: &std::path::Path, threads: usize) -> std::io::Result<Trace> {
    read_file_sharded_parallel(path, threads).map(ShardedTrace::into_trace)
}

/// Reads a binary trace file, preserving shard frames.
pub fn read_file_sharded(path: &std::path::Path) -> std::io::Result<ShardedTrace> {
    read_file_sharded_parallel(path, 1)
}

/// [`read_file_sharded`] with frames decoded on `threads` workers.
pub fn read_file_sharded_parallel(
    path: &std::path::Path,
    threads: usize,
) -> std::io::Result<ShardedTrace> {
    let data = std::fs::read(path)?;
    decode_sharded_parallel(&data, threads)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads a binary trace file tolerantly (see [`decode_sharded_tolerant`]):
/// a damaged file yields what could be salvaged plus the drop tallies
/// instead of an error, so batch pipelines can report corruption without
/// aborting on it.
pub fn read_file_sharded_tolerant(
    path: &std::path::Path,
) -> std::io::Result<(ShardedTrace, DecodeStats)> {
    read_file_sharded_tolerant_parallel(path, 1)
}

/// [`read_file_sharded_tolerant`] with frames decoded on `threads`
/// workers.
pub fn read_file_sharded_tolerant_parallel(
    path: &std::path::Path,
    threads: usize,
) -> std::io::Result<(ShardedTrace, DecodeStats)> {
    let data = std::fs::read(path)?;
    decode_sharded_tolerant_parallel(&data, threads)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Serializes one record as a JSON object (JSONL line) with resolved
/// strings.
pub fn record_to_json(trace: &Trace, record: &LogRecord) -> jcdn_json::Value {
    let mut obj = jcdn_json::Map::new();
    obj.insert("time_us", jcdn_json::Value::from(record.time.as_micros()));
    obj.insert("client", jcdn_json::Value::from(record.client.0));
    match record.ua {
        Some(ua) => obj.insert("ua", jcdn_json::Value::from(trace.ua(ua))),
        None => obj.insert("ua", jcdn_json::Value::Null),
    };
    obj.insert("url", jcdn_json::Value::from(trace.url(record.url)));
    obj.insert("method", jcdn_json::Value::from(record.method.to_string()));
    obj.insert("mime", jcdn_json::Value::from(record.mime.as_header()));
    obj.insert("status", jcdn_json::Value::from(u64::from(record.status)));
    obj.insert("bytes", jcdn_json::Value::from(record.response_bytes));
    obj.insert(
        "cache",
        jcdn_json::Value::from(match record.cache {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::NotCacheable => "no-store",
        }),
    );
    obj.insert("retries", jcdn_json::Value::from(u64::from(record.retries)));
    obj.insert("flags", jcdn_json::Value::from(record.flags.to_string()));
    jcdn_json::Value::Object(obj)
}

/// Exports the whole trace as JSONL (one record per line).
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for r in trace.records() {
        out.push_str(&jcdn_json::to_string(&record_to_json(trace, r)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let ua = t.intern_ua("okhttp/3.12.1");
        let u1 = t.intern_url("https://api.example/items/1");
        let u2 = t.intern_url("https://api.example/items/2");
        for i in 0..100u64 {
            t.push(LogRecord {
                time: SimTime::from_millis(i * 37),
                client: ClientId(i % 7),
                ua: (i % 3 != 0).then_some(ua),
                url: if i % 2 == 0 { u1 } else { u2 },
                method: if i % 5 == 0 {
                    Method::Post
                } else {
                    Method::Get
                },
                mime: MimeType::Json,
                status: 200,
                response_bytes: 100 + i,
                cache: match i % 3 {
                    0 => CacheStatus::Hit,
                    1 => CacheStatus::Miss,
                    _ => CacheStatus::NotCacheable,
                },
                retries: (i % 4) as u8,
                flags: if i % 11 == 0 {
                    RecordFlags::SERVED_STALE.with(RecordFlags::RETRIED)
                } else {
                    RecordFlags::NONE
                },
            });
        }
        t
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let encoded = encode(&t).unwrap();
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded.len(), t.len());
        assert_eq!(decoded.url_table(), t.url_table());
        assert_eq!(decoded.ua_table(), t.ua_table());
        assert_eq!(decoded.records(), t.records());
    }

    #[test]
    fn sharded_round_trip_preserves_frames() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        let decoded = decode_sharded(encoded.clone()).unwrap();
        assert_eq!(decoded.shard_count(), 4);
        for i in 0..4 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
        // Flattening matches the unsharded decode.
        let flat = decode(encoded).unwrap();
        assert_eq!(flat.records(), sharded.clone().into_trace().records());
    }

    #[test]
    fn parallel_encode_and_decode_match_sequential() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let seq = encode_sharded(&sharded).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = encode_sharded_parallel(&sharded, threads).unwrap();
            assert_eq!(&par[..], &seq[..], "threads={threads}");
            let decoded = decode_sharded_parallel(&seq, threads).unwrap();
            assert_eq!(decoded.shard_count(), 4);
            for i in 0..4 {
                assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
            }
        }
    }

    #[test]
    fn parallel_encode_reports_the_sequential_ordering_error() {
        // Disorder inside shard 1 must surface as shard 1's error even
        // when later shards encode concurrently (and would also fail the
        // cross-shard check).
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        for &time in &[10u64, 20, 90, 30, 40, 50, 60, 70] {
            t.push(LogRecord {
                time: SimTime::from_secs(time),
                client: ClientId(0),
                ua: None,
                url: u,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 1,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        let (interner, records) = t.into_parts();
        let shards: Vec<Vec<LogRecord>> = records.chunks(2).map(<[_]>::to_vec).collect();
        let sharded = ShardedTrace::from_parts(interner, shards);
        let seq = encode_sharded(&sharded).unwrap_err();
        for threads in [2, 4] {
            assert_eq!(encode_sharded_parallel(&sharded, threads).unwrap_err(), seq);
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new();
        let decoded = decode(encode(&t).unwrap()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.url_count(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode(Bytes::from_static(b"")).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            decode(Bytes::from_static(b"NOPE\x01\x00")).unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            decode(Bytes::from_static(b"JCDN\xff\x00")).unwrap_err(),
            DecodeError::BadVersion(255)
        );
    }

    /// Offset of frame 0 (its body-length u32) in an encoded v4 file; the
    /// descriptor CRC and body follow at +4 and +8.
    fn first_frame_offset(encoded: &[u8]) -> usize {
        let mut cur = Cursor::new(encoded);
        cur.take(6).unwrap(); // magic + version
        for _ in 0..cur.get_varint().unwrap() {
            get_string(&mut cur).unwrap(); // url table
        }
        for _ in 0..cur.get_varint().unwrap() {
            get_string(&mut cur).unwrap(); // ua table
        }
        cur.get_varint().unwrap(); // shard count
        cur.pos()
    }

    /// Flips the last byte of frame 0's body (inside its final column) so
    /// a column CRC fails while the other frames stay intact.
    fn corrupt_first_frame_payload(encoded: &Bytes) -> Bytes {
        let frame_at = first_frame_offset(encoded);
        let body_len =
            u32::from_le_bytes(encoded[frame_at..frame_at + 4].try_into().unwrap()) as usize;
        let mut bytes = encoded.to_vec();
        bytes[frame_at + 8 + body_len - 1] ^= 0xFF;
        Bytes::from(bytes)
    }

    #[test]
    fn tolerant_decode_of_clean_payload_is_clean() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        let (decoded, stats) = decode_sharded_tolerant(encoded).unwrap();
        assert!(stats.is_clean(), "{stats:?}");
        assert_eq!(stats.records_decoded, 100);
        assert_eq!(decoded.shard_count(), 4);
        for i in 0..4 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
    }

    #[test]
    fn tolerant_decode_salvages_frames_around_a_bad_checksum() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        let corrupted = corrupt_first_frame_payload(&encoded);

        // Strict decode refuses the whole file.
        assert_eq!(
            decode_sharded(corrupted.clone()).unwrap_err(),
            DecodeError::BadChecksum { shard: 0 }
        );

        // Tolerant decode loses exactly frame 0 and keeps the rest.
        let lost = sharded.shard_records(0).len() as u64;
        let (decoded, stats) = decode_sharded_tolerant(corrupted).unwrap();
        assert_eq!(stats.frames_crc_failed, 1);
        assert_eq!(stats.frames_truncated, 0);
        assert_eq!(stats.frames_header_damaged, 0);
        assert_eq!(stats.frames_dropped(), 1);
        assert_eq!(stats.records_dropped, lost);
        assert!(
            stats.first_error_offset.is_some(),
            "corruption is localized"
        );
        assert_eq!(stats.records_decoded, 100 - lost);
        assert_eq!(decoded.shard_count(), 4, "dropped frame keeps its slot");
        assert!(decoded.shard_records(0).is_empty());
        for i in 1..4 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
    }

    #[test]
    fn tolerant_decode_flags_a_corrupt_descriptor_without_over_counting() {
        // Flip the record-count byte at the start of frame 0's descriptor:
        // the descriptor CRC catches it, so the count is untrusted and the
        // drop tally must not echo the corrupted claim.
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        let frame_at = first_frame_offset(&encoded);
        let mut bytes = encoded.to_vec();
        bytes[frame_at + 8] ^= 0x7F; // record-count varint byte
        let corrupted = Bytes::from(bytes);

        assert_eq!(
            decode_sharded(corrupted.clone()).unwrap_err(),
            DecodeError::BadChecksum { shard: 0 }
        );
        let encoded_records = sharded.len() as u64;
        let (decoded, stats) = decode_sharded_tolerant(corrupted).unwrap();
        assert_eq!(stats.frames_crc_failed, 1);
        assert_eq!(stats.records_dropped, 0, "untrusted count is not tallied");
        assert!(
            stats.records_decoded + stats.records_dropped <= encoded_records,
            "over-counted: {stats:?}"
        );
        assert!(!stats.is_clean());
        assert_eq!(decoded.shard_count(), 4);
        assert!(decoded.shard_records(0).is_empty());
    }

    #[test]
    fn tolerant_decode_keeps_prefix_of_a_truncated_file() {
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let encoded = encode_sharded(&sharded).unwrap();
        // Cut into the last frame's body.
        let truncated = encoded.slice(0..encoded.len() - 5);

        assert_eq!(
            decode_sharded(truncated.clone()).unwrap_err(),
            DecodeError::Truncated
        );

        let (decoded, stats) = decode_sharded_tolerant(truncated).unwrap();
        assert_eq!(stats.frames_truncated, 1, "only the cut frame is lost");
        assert_eq!(stats.frames_crc_failed, 0);
        assert_eq!(decoded.shard_count(), 3);
        for i in 0..3 {
            assert_eq!(decoded.shard_records(i), sharded.shard_records(i));
        }
    }

    #[test]
    fn tolerant_decode_of_undelimited_stream_keeps_record_prefix() {
        // A v1 payload promising two records but carrying one: the strict
        // decoder errors, the tolerant one keeps the decoded prefix.
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(1);
        put_varint(&mut buf, 1); // url table
        put_string(&mut buf, "https://legacy.example/v1");
        put_varint(&mut buf, 0); // ua table
        put_varint(&mut buf, 2); // record count (one short)
        put_varint(&mut buf, zigzag(1_000_000));
        put_varint(&mut buf, 7); // client
        put_varint(&mut buf, 0); // ua absent
        put_varint(&mut buf, 0); // url id
        buf.put_u8(0); // method = GET
        buf.put_u8(0); // mime = JSON
        buf.put_u8(0); // cache = hit
        put_varint(&mut buf, 200); // status
        put_varint(&mut buf, 512); // bytes
        let bytes = buf.freeze();

        assert_eq!(decode(bytes.clone()).unwrap_err(), DecodeError::Truncated);
        let (decoded, stats) = decode_sharded_tolerant(bytes).unwrap();
        assert_eq!(stats.records_decoded, 1);
        assert_eq!(stats.records_dropped, 1);
        let trace = decoded.into_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records()[0].client, ClientId(7));
    }

    #[test]
    fn version_1_traces_decode_with_zeroed_resilience_fields() {
        // Hand-build a version-1 payload: one URL, no UAs, one record laid
        // out without the retry/flags bytes that version 2 added.
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(1);
        put_varint(&mut buf, 1); // url table
        put_string(&mut buf, "https://legacy.example/v1");
        put_varint(&mut buf, 0); // ua table
        put_varint(&mut buf, 1); // record count
        put_varint(&mut buf, zigzag(1_500_000)); // time delta
        put_varint(&mut buf, 42); // client
        put_varint(&mut buf, 0); // ua absent
        put_varint(&mut buf, 0); // url id
        buf.put_u8(0); // method = GET
        buf.put_u8(0); // mime = JSON
        buf.put_u8(1); // cache = Miss
        put_varint(&mut buf, 503); // status
        put_varint(&mut buf, 2048); // bytes
        let decoded = decode(buf.freeze()).expect("v1 payload decodes");
        assert_eq!(decoded.len(), 1);
        let r = decoded.records()[0];
        assert_eq!(r.time, SimTime::from_micros(1_500_000));
        assert_eq!(r.client, ClientId(42));
        assert_eq!(r.status, 503);
        assert_eq!(r.retries, 0, "v1 records carry no retry count");
        assert_eq!(r.flags, RecordFlags::NONE, "v1 records carry no flags");
    }

    #[test]
    fn version_2_traces_decode_into_a_single_shard() {
        // Hand-build a version-2 payload (record stream without frames).
        let mut buf = BytesMut::with_capacity(128);
        buf.put_slice(MAGIC);
        buf.put_u16_le(2);
        put_varint(&mut buf, 1); // url table
        put_string(&mut buf, "https://legacy.example/v2");
        put_varint(&mut buf, 0); // ua table
        put_varint(&mut buf, 2); // record count
        for (delta, retries) in [(1_000_000i64, 1u8), (500_000, 2)] {
            put_varint(&mut buf, zigzag(delta));
            put_varint(&mut buf, 7); // client
            put_varint(&mut buf, 0); // ua absent
            put_varint(&mut buf, 0); // url id
            buf.put_u8(0); // method
            buf.put_u8(0); // mime
            buf.put_u8(1); // cache
            buf.put_u8(retries);
            buf.put_u8(RecordFlags::RETRIED.bits());
            put_varint(&mut buf, 502); // status
            put_varint(&mut buf, 10); // bytes
        }
        let sharded = decode_sharded(buf.freeze()).expect("v2 payload decodes");
        assert_eq!(
            sharded.shard_count(),
            1,
            "pre-framing formats get one shard"
        );
        assert_eq!(sharded.len(), 2);
        let r = sharded.shard_records(0)[1];
        assert_eq!(r.time, SimTime::from_micros(1_500_000));
        assert_eq!(r.retries, 2);
        assert_eq!(r.flags, RecordFlags::RETRIED);
    }

    /// Single-record v4 trace plus the offset of frame 0. URL is 19
    /// bytes; the tables span magic 4 + version 2 + url count 1 + url
    /// len 1 + url 19 + ua count 1 = 28, then the shard-count varint.
    fn one_record_encoding() -> (Vec<u8>, usize) {
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        t.push(LogRecord {
            time: SimTime::from_secs(1),
            client: ClientId(0),
            ua: None,
            url: u,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 1,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
        let data = encode(&t).unwrap().to_vec();
        let frame_at = first_frame_offset(&data);
        assert_eq!(frame_at, 29, "layout drifted; update this helper");
        (data, frame_at)
    }

    /// Absolute `(offset, length)` of each column in a single-frame file.
    fn column_offsets(data: &[u8], frame_at: usize) -> Vec<(usize, usize)> {
        let body_at = frame_at + 8;
        let mut cur = Cursor::new(&data[body_at..]);
        cur.get_varint().unwrap(); // record count
        let mut lens = Vec::new();
        for _ in 0..COLUMNS {
            lens.push(cur.get_varint().unwrap() as usize);
            cur.get_u32_le().unwrap();
        }
        let mut at = body_at + cur.pos();
        lens.into_iter()
            .map(|len| {
                let start = at;
                at += len;
                (start, len)
            })
            .collect()
    }

    /// Recomputes every CRC of a single-frame v4 file after test surgery
    /// on a column, so corruption reaches the value-level checks.
    fn restamp_single_frame(data: &mut [u8], frame_at: usize) {
        let body_at = frame_at + 8;
        let body_len =
            u32::from_le_bytes(data[frame_at..frame_at + 4].try_into().unwrap()) as usize;
        let (desc_len, crc_fields) = {
            let body = &data[body_at..body_at + body_len];
            let mut cur = Cursor::new(body);
            cur.get_varint().unwrap();
            let mut fields = Vec::new(); // (crc field offset in body, column length)
            for _ in 0..COLUMNS {
                let len = cur.get_varint().unwrap() as usize;
                fields.push((cur.pos(), len));
                cur.get_u32_le().unwrap();
            }
            (cur.pos(), fields)
        };
        let mut col_at = body_at + desc_len;
        for (crc_field, len) in crc_fields {
            let crc = crc32(&data[col_at..col_at + len]);
            data[body_at + crc_field..body_at + crc_field + 4].copy_from_slice(&crc.to_le_bytes());
            col_at += len;
        }
        let desc_crc = crc32(&data[body_at..body_at + desc_len]);
        data[frame_at + 4..frame_at + 8].copy_from_slice(&desc_crc.to_le_bytes());
    }

    #[test]
    fn rejects_unknown_method_tag() {
        let (mut data, frame_at) = one_record_encoding();
        // Column 4 packs method/mime/cache; 0xFF decodes to method tag 7.
        let (mmc_at, mmc_len) = column_offsets(&data, frame_at)[4];
        assert_eq!(mmc_len, 1);
        data[mmc_at] = 0xFF;
        restamp_single_frame(&mut data, frame_at);
        assert_eq!(
            decode(Bytes::from(data)).unwrap_err(),
            DecodeError::BadDiscriminant("method", 7)
        );
    }

    #[test]
    fn corrupted_frame_fails_its_checksum() {
        let (mut data, _) = one_record_encoding();
        // Flip a column byte, leave the CRCs stale.
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        assert_eq!(
            decode(Bytes::from(data)).unwrap_err(),
            DecodeError::BadChecksum { shard: 0 }
        );
    }

    #[test]
    fn frame_with_extra_payload_is_rejected() {
        let (mut data, frame_at) = one_record_encoding();
        // Append a stray byte and grow the declared body length: the
        // CRC-valid descriptor no longer accounts for every body byte.
        data.push(0x00);
        let body_len = (data.len() - frame_at - 8) as u32;
        data[frame_at..frame_at + 4].copy_from_slice(&body_len.to_le_bytes());
        assert_eq!(
            decode(Bytes::from(data.clone())).unwrap_err(),
            DecodeError::FrameMismatch
        );
        let (decoded, stats) = decode_sharded_tolerant(Bytes::from(data)).unwrap();
        assert_eq!(stats.frames_header_damaged, 1);
        assert_eq!(stats.records_dropped, 1, "authenticated count is tallied");
        assert!(decoded.shard_records(0).is_empty());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let full = encode(&sample_trace()).unwrap();
        // Chop at a few byte positions spread across the buffer; every
        // prefix must fail cleanly, never panic.
        for cut in [7, 20, full.len() / 2, full.len() - 1] {
            let r = decode(full.slice(0..cut));
            assert!(r.is_err(), "prefix of {cut} bytes should fail");
        }
    }

    #[test]
    fn sparse_retry_column_round_trips() {
        let retries = [0u8, 3, 0, 0, 7, 1, 0];
        let mut col = BytesMut::with_capacity(32);
        put_retry_column(&mut col, &retries);
        let bytes = col.freeze();
        let mut cur = Cursor::new(&bytes);
        assert_eq!(get_retry_column(&mut cur, retries.len()).unwrap(), retries);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn sparse_retry_column_rejects_bad_exception_indices() {
        // An exception index past the record count.
        let mut col = BytesMut::with_capacity(8);
        put_varint(&mut col, 1);
        put_varint(&mut col, 9); // index 9 with n = 2
        col.put_u8(1);
        let bytes = col.freeze();
        let mut cur = Cursor::new(&bytes);
        assert_eq!(
            get_retry_column(&mut cur, 2).unwrap_err(),
            DecodeError::BadColumnValue("retries")
        );
        // A zero delta after the first exception (a stuck index).
        let mut col = BytesMut::with_capacity(8);
        put_varint(&mut col, 2);
        put_varint(&mut col, 0);
        col.put_u8(1);
        put_varint(&mut col, 0); // delta 0 would overwrite index 0
        col.put_u8(2);
        let bytes = col.freeze();
        let mut cur = Cursor::new(&bytes);
        assert_eq!(
            get_retry_column(&mut cur, 4).unwrap_err(),
            DecodeError::BadColumnValue("retries")
        );
    }

    #[test]
    fn status_dictionary_rejects_out_of_range_indices() {
        let mut col = BytesMut::with_capacity(8);
        put_varint(&mut col, 1); // dict: [200]
        col.put_u16_le(200);
        col.put_u8(1); // index 1 ≥ dict length
        let bytes = col.freeze();
        let mut cur = Cursor::new(&bytes);
        assert_eq!(
            get_status_column(&mut cur, 1).unwrap_err(),
            DecodeError::BadColumnValue("status")
        );
    }

    #[test]
    fn jsonl_lines_parse_and_carry_fields() {
        let t = sample_trace();
        let jsonl = to_jsonl(&t);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.len());
        let v = jcdn_json::parse(lines[0]).unwrap();
        // Record 0 has i % 5 == 0 → POST.
        assert_eq!(v.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(v.get("mime").unwrap().as_str(), Some("application/json"));
        assert_eq!(
            v.get("url").unwrap().as_str(),
            Some("https://api.example/items/1")
        );
        assert_eq!(v.get("cache").unwrap().as_str(), Some("hit"));
        // Record 0 has i % 3 == 0 → UA absent.
        assert!(v.get("ua").unwrap().is_null());
        // Record 0 has i % 11 == 0 → stale+retried flags, retries = 0.
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("flags").unwrap().as_str(), Some("stale,retried"));
    }

    #[test]
    fn file_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("jcdn-codec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jcdn");
        write_file(&t, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.records(), t.records());
        // The sharded writer round-trips through the sharded reader.
        let sharded = ShardedTrace::from_trace(t, 3);
        write_file_sharded(&sharded, &path).unwrap();
        let back = read_file_sharded(&path).unwrap();
        assert_eq!(back.shard_count(), 3);
        assert_eq!(back.len(), sharded.len());
        std::fs::remove_file(&path).ok();
        // Reading garbage fails with InvalidData, not a panic.
        let bad = dir.join("bad.jcdn");
        std::fs::write(&bad, b"not a trace").unwrap();
        let err = read_file(&bad).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn unsorted_trace_is_rejected_with_a_typed_error() {
        let mut t = Trace::new();
        let u = t.intern_url("https://h.example/x");
        for &time in &[50u64, 10, 90, 0, 60] {
            t.push(LogRecord {
                time: SimTime::from_secs(time),
                client: ClientId(0),
                ua: None,
                url: u,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 1,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        assert_eq!(
            encode(&t).unwrap_err(),
            EncodeError::OutOfOrder {
                index: 1,
                prev: SimTime::from_secs(50),
                next: SimTime::from_secs(10),
            }
        );
        // Sorting repairs the trace and it round-trips.
        t.sort_by_time();
        let decoded = decode(encode(&t).unwrap()).unwrap();
        assert_eq!(decoded.records(), t.records());
    }

    proptest! {
        #[test]
        fn varints_round_trip(v in any::<u64>()) {
            let mut buf = BytesMut::with_capacity(10);
            put_varint(&mut buf, v);
            let bytes = buf.freeze();
            let mut cur = Cursor::new(&bytes);
            prop_assert_eq!(cur.get_varint().unwrap(), v);
            prop_assert_eq!(cur.remaining(), 0);
        }

        #[test]
        fn corrupt_ten_byte_varints_never_decode_silently(
            prefix in prop::collection::vec(any::<u8>(), 9),
            last in any::<u8>(),
        ) {
            // Force continuation bits on the first nine bytes, then try
            // every possible tenth byte: anything carrying bits beyond
            // value bit 63 must error, never silently truncate.
            let mut data: Vec<u8> = prefix.iter().map(|b| b | 0x80).collect();
            data.push(last);
            let mut cur = Cursor::new(&data);
            let result = cur.get_varint();
            if last & !0x01 != 0 {
                prop_assert_eq!(result, Err(DecodeError::VarintOverflow));
            } else {
                prop_assert!(result.is_ok(), "0x00/0x01 are in-range tenth bytes");
            }
        }

        #[test]
        fn group_varint64_round_trips(vals in prop::collection::vec(any::<u64>(), 0..50)) {
            let mut col = BytesMut::with_capacity(512);
            put_gv64(&mut col, &vals);
            let bytes = col.freeze();
            let mut cur = Cursor::new(&bytes);
            prop_assert_eq!(get_gv64(&mut cur, vals.len()).unwrap(), vals);
            prop_assert_eq!(cur.remaining(), 0, "encoder and decoder agree on width");
        }

        #[test]
        fn group_varint32_round_trips(vals in prop::collection::vec(any::<u32>(), 0..50)) {
            let mut col = BytesMut::with_capacity(256);
            put_gv32(&mut col, &vals);
            let bytes = col.freeze();
            let mut cur = Cursor::new(&bytes);
            prop_assert_eq!(get_gv32(&mut cur, vals.len()).unwrap(), vals);
            prop_assert_eq!(cur.remaining(), 0, "encoder and decoder agree on width");
        }

        #[test]
        fn status_dictionary_round_trips(vals in prop::collection::vec(any::<u16>(), 0..300)) {
            let mut col = BytesMut::with_capacity(1024);
            put_status_column(&mut col, &vals);
            let bytes = col.freeze();
            let mut cur = Cursor::new(&bytes);
            prop_assert_eq!(get_status_column(&mut cur, vals.len()).unwrap(), vals);
            prop_assert_eq!(cur.remaining(), 0);
        }
    }
}
