//! Dataset summaries (Table 2 of the paper).

use std::collections::HashSet;

use crate::record::MimeType;
use crate::time::SimDuration;
use crate::trace::{host_of_url, Trace};

/// The roll-up the paper reports per dataset in Table 2, plus a few extra
/// counts the rest of the pipeline needs.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSummary {
    /// Human-readable dataset name ("Short-term", "Long-term").
    pub name: String,
    /// Total number of logs.
    pub logs: usize,
    /// Span between first and last record.
    pub duration: SimDuration,
    /// Number of distinct domains (URL hosts).
    pub domains: usize,
    /// Number of distinct clients (hashed IP + UA pairs, §5.1).
    pub clients: usize,
    /// Number of distinct objects (URLs).
    pub objects: usize,
    /// Number of records with `application/json` responses.
    pub json_logs: usize,
}

impl DatasetSummary {
    /// Computes the summary for a trace.
    pub fn compute(name: impl Into<String>, trace: &Trace) -> Self {
        let mut domains: HashSet<&str> = HashSet::new();
        for url in trace.url_table() {
            domains.insert(host_of_url(url));
        }
        // Unused table entries (possible after `retain`) still count as
        // objects only if referenced by a record.
        let mut objects = HashSet::new();
        let mut clients = HashSet::new();
        let mut json_logs = 0;
        for r in trace.records() {
            objects.insert(r.url);
            clients.insert((r.client, r.ua));
            if r.mime == MimeType::Json {
                json_logs += 1;
            }
        }
        let duration = trace
            .time_span()
            .map(|(first, last)| last - first)
            .unwrap_or(SimDuration::ZERO);
        DatasetSummary {
            name: name.into(),
            logs: trace.len(),
            duration,
            domains: domains.len(),
            clients: clients.len(),
            objects: objects.len(),
            json_logs,
        }
    }

    /// Renders a Table 2-shaped row: `name | logs | duration | domains`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<12} | {:>10} | {:>10} | {:>8}",
            self.name,
            self.logs,
            self.duration.to_string(),
            self.domains
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CacheStatus, ClientId, LogRecord, Method, RecordFlags, UaId};
    use crate::time::SimTime;

    fn push(trace: &mut Trace, t: u64, client: u64, url: &str, mime: MimeType, ua: Option<UaId>) {
        let url = trace.intern_url(url);
        trace.push(LogRecord {
            time: SimTime::from_secs(t),
            client: ClientId(client),
            ua,
            url,
            method: Method::Get,
            mime,
            status: 200,
            response_bytes: 10,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
    }

    #[test]
    fn counts_distinct_entities() {
        let mut t = Trace::new();
        let ua = t.intern_ua("okhttp/3.12.1");
        push(
            &mut t,
            0,
            1,
            "https://a.example/x",
            MimeType::Json,
            Some(ua),
        );
        push(
            &mut t,
            10,
            1,
            "https://a.example/y",
            MimeType::Json,
            Some(ua),
        );
        push(&mut t, 20, 2, "https://b.example/x", MimeType::Html, None);
        push(&mut t, 30, 1, "https://a.example/x", MimeType::Json, None);

        let s = DatasetSummary::compute("Test", &t);
        assert_eq!(s.logs, 4);
        assert_eq!(s.domains, 2);
        assert_eq!(s.objects, 3);
        // Client identity is (ip, ua): client 1 appears with and without a
        // UA → two distinct clients, plus client 2.
        assert_eq!(s.clients, 3);
        assert_eq!(s.json_logs, 3);
        assert_eq!(s.duration, SimDuration::from_secs(30));
    }

    #[test]
    fn empty_trace_summary() {
        let s = DatasetSummary::compute("Empty", &Trace::new());
        assert_eq!(s.logs, 0);
        assert_eq!(s.duration, SimDuration::ZERO);
        assert_eq!(s.domains, 0);
    }

    #[test]
    fn table_row_contains_name_and_count() {
        let mut t = Trace::new();
        push(&mut t, 0, 1, "https://a.example/x", MimeType::Json, None);
        let row = DatasetSummary::compute("Short-term", &t).table_row();
        assert!(row.contains("Short-term"));
        assert!(row.contains('1'));
    }
}
