//! Model serialization.
//!
//! A production prefetcher trains its model offline (on yesterday's logs)
//! and ships it to edge servers; this module is that wire format — a
//! compact, versioned binary encoding of a trained [`NgramModel`] plus its
//! [`Vocab`] strings.
//!
//! Layout (LEB128 varints, UTF-8 strings):
//!
//! ```text
//! magic  b"JNGM", version u8 (1)
//! max_order varint, backoff f64 (LE bits)
//! vocab: varint count, then per entry varint len + bytes
//! per order 0..=max_order:
//!   varint context count
//!   per context: varint token count, tokens, varint total,
//!                varint successor count, (token, count)*
//! ```

use crate::model::NgramModel;
use crate::vocab::Vocab;

const MAGIC: &[u8; 4] = b"JNGM";
const VERSION: u8 = 1;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing magic or truncated input.
    Malformed,
    /// Unsupported version byte.
    BadVersion(u8),
    /// Model invariants violated (e.g. zero order).
    Invalid,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Malformed => write!(f, "malformed n-gram model"),
            DecodeError::BadVersion(v) => write!(f, "unsupported model version {v}"),
            DecodeError::Invalid => write!(f, "invalid model contents"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.data.get(self.pos).ok_or(DecodeError::Malformed)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::Malformed)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(len).ok_or(DecodeError::Malformed)?;
        let slice = self.data.get(self.pos..end).ok_or(DecodeError::Malformed)?;
        self.pos = end;
        Ok(slice)
    }
}

/// Serializes a trained model and its vocabulary.
pub fn encode(model: &NgramModel, vocab: &Vocab) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, model.max_order() as u64);
    out.extend_from_slice(&model.backoff().to_le_bytes());

    put_varint(&mut out, vocab.len() as u64);
    for token in 0..vocab.len() as u32 {
        let s = vocab.resolve(token).unwrap_or("");
        put_varint(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }

    for order in 0..=model.max_order() {
        let contexts = model.contexts_at(order);
        put_varint(&mut out, contexts.len() as u64);
        for (context, total, successors) in contexts {
            put_varint(&mut out, context.len() as u64);
            for &t in context {
                put_varint(&mut out, u64::from(t));
            }
            put_varint(&mut out, total);
            put_varint(&mut out, successors.len() as u64);
            for &(token, count) in &successors {
                put_varint(&mut out, u64::from(token));
                put_varint(&mut out, count);
            }
        }
    }
    out
}

/// Decodes a model and vocabulary. The vocabulary's mode (raw/clustered)
/// is not serialized — pass the mode the model was trained with.
pub fn decode(data: &[u8], mode: crate::VocabMode) -> Result<(NgramModel, Vocab), DecodeError> {
    let mut r = Reader { data, pos: 0 };
    if r.bytes(4)? != MAGIC {
        return Err(DecodeError::Malformed);
    }
    let version = r.byte()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let max_order = r.varint()? as usize;
    if max_order == 0 || max_order > 64 {
        return Err(DecodeError::Invalid);
    }
    let backoff_bits: [u8; 8] = r.bytes(8)?.try_into().map_err(|_| DecodeError::Invalid)?;
    let backoff = f64::from_le_bytes(backoff_bits);
    if !(backoff > 0.0 && backoff <= 1.0) {
        return Err(DecodeError::Invalid);
    }

    let mut vocab = Vocab::with_mode(mode);
    let vocab_len = r.varint()? as usize;
    for expected in 0..vocab_len {
        let len = r.varint()? as usize;
        let bytes = r.bytes(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| DecodeError::Malformed)?;
        // Interning must reproduce the dense token ids; mismatches mean
        // the payload's vocabulary is inconsistent with the mode.
        let token = vocab.intern_verbatim(s);
        if token != expected as u32 {
            return Err(DecodeError::Invalid);
        }
    }

    let mut model = NgramModel::new(max_order).with_backoff(backoff);
    for order in 0..=max_order {
        let contexts = r.varint()? as usize;
        for _ in 0..contexts {
            let context_len = r.varint()? as usize;
            if context_len != order {
                return Err(DecodeError::Invalid);
            }
            let mut context = Vec::with_capacity(context_len);
            for _ in 0..context_len {
                context.push(u32::try_from(r.varint()?).map_err(|_| DecodeError::Invalid)?);
            }
            let total = r.varint()?;
            let successor_count = r.varint()? as usize;
            let mut successors = Vec::with_capacity(successor_count);
            let mut sum = 0u64;
            for _ in 0..successor_count {
                let token = u32::try_from(r.varint()?).map_err(|_| DecodeError::Invalid)?;
                let count = r.varint()?;
                sum = sum.checked_add(count).ok_or(DecodeError::Invalid)?;
                successors.push((token, count));
            }
            if sum != total {
                return Err(DecodeError::Invalid);
            }
            model.restore_context(order, context, total, successors);
        }
    }
    if r.pos != data.len() {
        return Err(DecodeError::Malformed);
    }
    Ok((model, vocab))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VocabMode;

    fn trained() -> (NgramModel, Vocab) {
        let mut vocab = Vocab::raw();
        let mut model = NgramModel::new(2);
        for c in 0..20 {
            let seq: Vec<u32> = (0..10)
                .map(|i| vocab.intern(&format!("https://h.example/{}", (c * 3 + i * 7) % 15)))
                .collect();
            model.train_sequence(&seq);
        }
        (model, vocab)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (model, vocab) = trained();
        let bytes = encode(&model, &vocab);
        let (back_model, back_vocab) = decode(&bytes, VocabMode::Raw).expect("round trip");
        assert_eq!(back_vocab.len(), vocab.len());
        assert_eq!(back_model.max_order(), model.max_order());
        assert_eq!(back_model.transition_count(), model.transition_count());
        // Predictions agree on every single-token history.
        for t in 0..vocab.len() as u32 {
            let a = model.predict(&[t], 5);
            let b = back_model.predict(&[t], 5);
            assert_eq!(a, b, "history {t}");
        }
        // Vocabulary strings resolve identically.
        for t in 0..vocab.len() as u32 {
            assert_eq!(vocab.resolve(t), back_vocab.resolve(t));
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(
            decode(b"", VocabMode::Raw).unwrap_err(),
            DecodeError::Malformed
        );
        assert_eq!(
            decode(b"NOPE\x01", VocabMode::Raw).unwrap_err(),
            DecodeError::Malformed
        );
        let (model, vocab) = trained();
        let bytes = encode(&model, &vocab);
        for cut in [5, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut], VocabMode::Raw).is_err(), "cut {cut}");
        }
        // Bad version byte.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert_eq!(
            decode(&bad, VocabMode::Raw).unwrap_err(),
            DecodeError::BadVersion(99)
        );
    }

    #[test]
    fn bit_flips_never_panic() {
        let (model, vocab) = trained();
        let bytes = encode(&model, &vocab);
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x55;
            let _ = decode(&corrupted, VocabMode::Raw);
        }
    }
}
