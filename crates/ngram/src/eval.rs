//! Train/test evaluation of the prediction model (Table 3).
//!
//! The paper: "we first split the JSON dataset by unique clients into a
//! testing and training set … the ngram models are also tested on
//! individual client request flows." Splitting by client (not by time)
//! ensures the model never sees a test client's own history.

use crate::model::NgramModel;

/// Which side of the split a client lands on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Used to train the model.
    Train,
    /// Held out for evaluation.
    Test,
}

/// Deterministically assigns a client to train/test by hashing its id:
/// clients whose hash bucket (out of 100) falls below
/// `train_percent` train the model.
pub fn split_client(client_key: u64, train_percent: u8) -> Split {
    // SplitMix finalizer decorrelates sequential client ids.
    let mut x = client_key;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    if (x % 100) < u64::from(train_percent) {
        Split::Train
    } else {
        Split::Test
    }
}

/// Accuracy accumulator for top-K evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalResult {
    /// Transitions evaluated.
    pub transitions: u64,
    /// Transitions whose actual next request was in the top-K prediction.
    pub hits: u64,
}

impl EvalResult {
    /// Fraction of transitions predicted correctly, or `None` when nothing
    /// was evaluated.
    pub fn accuracy(&self) -> Option<f64> {
        (self.transitions > 0).then(|| self.hits as f64 / self.transitions as f64)
    }

    /// Merges another result into this one.
    pub fn merge(&mut self, other: EvalResult) {
        self.transitions += other.transitions;
        self.hits += other.hits;
    }
}

/// Evaluates top-`k` accuracy of `model` on one held-out client sequence:
/// for every position `i ≥ 1`, predict from the preceding history and check
/// whether `seq[i]` is among the top `k`.
pub fn evaluate_sequence(model: &NgramModel, seq: &[u32], k: usize) -> EvalResult {
    let mut result = EvalResult::default();
    for i in 1..seq.len() {
        let history_start = i.saturating_sub(model.max_order());
        let history = &seq[history_start..i];
        result.transitions += 1;
        if model.hit(history, seq[i], k) {
            result.hits += 1;
        }
    }
    result
}

/// Trains on `Train` sequences and evaluates top-`k` accuracy over `Test`
/// sequences in one pass. Sequences are `(client_key, tokens)` pairs.
pub fn train_and_evaluate(
    sequences: &[(u64, Vec<u32>)],
    max_order: usize,
    k: usize,
    train_percent: u8,
) -> (NgramModel, EvalResult) {
    let mut model = NgramModel::new(max_order);
    for (client, seq) in sequences {
        if split_client(*client, train_percent) == Split::Train {
            model.train_sequence(seq);
        }
    }
    let mut result = EvalResult::default();
    for (client, seq) in sequences {
        if split_client(*client, train_percent) == Split::Test {
            result.merge(evaluate_sequence(&model, seq, k));
        }
    }
    (model, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_roughly_proportional() {
        let train = (0..10_000u64)
            .filter(|&c| split_client(c, 80) == Split::Train)
            .count();
        assert!((7_500..8_500).contains(&train), "train count {train}");
        for c in 0..100 {
            assert_eq!(split_client(c, 80), split_client(c, 80));
        }
        assert!((0..1000).all(|c| split_client(c, 100) == Split::Train));
        assert!((0..1000).all(|c| split_client(c, 0) == Split::Test));
    }

    #[test]
    fn perfect_pattern_scores_perfectly() {
        // All clients repeat the same cycle; the held-out clients are
        // perfectly predictable.
        let sequences: Vec<(u64, Vec<u32>)> = (0..50)
            .map(|c| (c, vec![1, 2, 3, 1, 2, 3, 1, 2, 3]))
            .collect();
        let (_, result) = train_and_evaluate(&sequences, 1, 1, 70);
        assert!(result.transitions > 0);
        // After token 3 the model sees both 1 (cycle) — all transitions
        // within the cycle are deterministic.
        assert_eq!(result.accuracy(), Some(1.0));
    }

    #[test]
    fn larger_k_never_hurts() {
        let sequences: Vec<(u64, Vec<u32>)> = (0..60)
            .map(|c| {
                // Mix of two interleaved patterns; K=1 cannot cover both.
                if c % 2 == 0 {
                    (c, vec![1, 2, 1, 2, 1, 2])
                } else {
                    (c, vec![1, 3, 1, 3, 1, 3])
                }
            })
            .collect();
        let (_, at1) = train_and_evaluate(&sequences, 1, 1, 50);
        let (_, at2) = train_and_evaluate(&sequences, 1, 2, 50);
        let a1 = at1.accuracy().unwrap();
        let a2 = at2.accuracy().unwrap();
        assert!(a2 >= a1, "K=2 accuracy {a2} < K=1 accuracy {a1}");
        assert!(a2 > 0.9, "K=2 should cover both patterns, got {a2}");
    }

    #[test]
    fn empty_and_singleton_sequences_contribute_nothing() {
        let sequences: Vec<(u64, Vec<u32>)> = vec![(1, vec![]), (2, vec![7])];
        let (_, result) = train_and_evaluate(&sequences, 1, 5, 50);
        assert_eq!(result.transitions, 0);
        assert_eq!(result.accuracy(), None);
    }

    #[test]
    fn evaluate_sequence_respects_history_window() {
        let mut model = NgramModel::new(2);
        model.train_sequence(&[1, 2, 3, 4]);
        let r = evaluate_sequence(&model, &[1, 2, 3, 4], 1);
        assert_eq!(r.transitions, 3);
        assert_eq!(r.hits, 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EvalResult {
            transitions: 10,
            hits: 5,
        };
        a.merge(EvalResult {
            transitions: 10,
            hits: 10,
        });
        assert_eq!(a.accuracy(), Some(0.75));
    }
}
