//! The backoff n-gram model.

use std::collections::HashMap;

/// One predicted next-token with its backoff score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// The predicted token.
    pub token: u32,
    /// Stupid-backoff score (comparable within one `predict` call, not a
    /// probability).
    pub score: f64,
    /// Length of the context that produced the score (higher = more
    /// specific evidence).
    pub context_len: usize,
}

/// One exported context: `(context tokens, total, successors sorted by
/// token)` — the serialization view of the model.
pub type ContextExport<'m> = (&'m Vec<u32>, u64, Vec<(u32, u64)>);

/// Counts for one context: total and per-successor.
#[derive(Clone, Debug, Default)]
struct ContextCounts {
    total: u64,
    successors: HashMap<u32, u64>,
}

/// A backoff n-gram model over `u32` token sequences.
///
/// `max_order = N` is the paper's history parameter: contexts of length
/// `0..=N` are counted (length 0 is the unigram/popularity table — "this
/// approach takes into account the popularity of highly requested items,
/// unlike standard program analysis").
///
/// Scoring is *stupid backoff* (Brants et al.): the score of token `w`
/// after context `c` is `count(c·w)/count(c)` when the full context was
/// seen, else `α^d` times the score under the context shortened by `d`
/// tokens (`α = 0.4`). Not normalized — fine for ranking, which is all
/// top-K prediction needs.
#[derive(Clone, Debug)]
pub struct NgramModel {
    max_order: usize,
    backoff: f64,
    /// `counts[len]` maps contexts of length `len` to successor counts.
    counts: Vec<HashMap<Vec<u32>, ContextCounts>>,
    /// Lazily built popularity ranking of the unigram table.
    unigram_cache: std::cell::OnceCell<Vec<(u32, u64)>>,
}

impl NgramModel {
    /// Creates a model with history length `max_order` (the paper's N ≥ 1).
    ///
    /// # Panics
    /// Panics when `max_order == 0`; use N = 1 for bigram prediction.
    pub fn new(max_order: usize) -> Self {
        assert!(max_order >= 1, "history length must be at least 1");
        NgramModel {
            max_order,
            backoff: 0.4,
            counts: vec![HashMap::new(); max_order + 1],
            unigram_cache: std::cell::OnceCell::new(),
        }
    }

    /// Sets the backoff factor (default 0.4).
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        assert!(backoff > 0.0 && backoff <= 1.0, "backoff must be in (0,1]");
        self.backoff = backoff;
        self
    }

    /// The model's history length N.
    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// The backoff factor.
    pub fn backoff(&self) -> f64 {
        self.backoff
    }

    /// All contexts at one order, sorted for deterministic serialization:
    /// `(context, total, successors sorted by token)`.
    pub fn contexts_at(&self, order: usize) -> Vec<ContextExport<'_>> {
        let mut contexts: Vec<ContextExport<'_>> = self.counts[order]
            .iter()
            .map(|(context, counts)| {
                let mut successors: Vec<(u32, u64)> =
                    counts.successors.iter().map(|(&t, &c)| (t, c)).collect();
                successors.sort_unstable_by_key(|&(t, _)| t);
                (context, counts.total, successors)
            })
            .collect();
        contexts.sort_unstable_by(|a, b| a.0.cmp(b.0));
        contexts
    }

    /// Restores one context's counts verbatim (deserialization). `total`
    /// must equal the successor-count sum — the codec validates this.
    pub fn restore_context(
        &mut self,
        order: usize,
        context: Vec<u32>,
        total: u64,
        successors: Vec<(u32, u64)>,
    ) {
        assert!(order <= self.max_order, "order out of range");
        assert_eq!(context.len(), order, "context length must equal order");
        self.unigram_cache.take();
        let entry = self.counts[order].entry(context).or_default();
        entry.total = total;
        entry.successors = successors.into_iter().collect();
    }

    /// Trains on one client's request sequence: every transition
    /// `(seq[i-len..i]) → seq[i]` for `len = 0..=N` is counted.
    pub fn train_sequence(&mut self, seq: &[u32]) {
        for i in 0..seq.len() {
            if i == 0 {
                // Only the unigram count exists for the first request.
                self.bump(0, &[], seq[0]);
                continue;
            }
            for len in 0..=self.max_order.min(i) {
                self.bump(len, &seq[i - len..i], seq[i]);
            }
        }
    }

    fn bump(&mut self, len: usize, context: &[u32], next: u32) {
        self.unigram_cache.take();
        let entry = self.counts[len].entry(context.to_vec()).or_default();
        entry.total += 1;
        *entry.successors.entry(next).or_insert(0) += 1;
    }

    /// Number of transitions observed at full order.
    pub fn transition_count(&self) -> u64 {
        self.counts[self.max_order].values().map(|c| c.total).sum()
    }

    /// Number of distinct contexts at full order.
    pub fn context_count(&self) -> usize {
        self.counts[self.max_order].len()
    }

    /// Predicts the top-`k` next tokens after `history` (most recent last).
    ///
    /// Backoff fill: successors of the longest matching context rank
    /// first (ordered by count); when fewer than `k` exist, the next
    /// shorter context fills the remaining slots, down to the unigram
    /// popularity table. Ties break on token id for determinism.
    ///
    /// This "fill by order" rule is both what a prefetcher wants (trust
    /// the most specific evidence first) and what makes prediction O(k)
    /// per backoff level instead of O(vocabulary) — the unigram table has
    /// every token as a successor and is consulted through a cached
    /// popularity ranking.
    pub fn predict(&self, history: &[u32], k: usize) -> Vec<Prediction> {
        if k == 0 {
            return Vec::new();
        }
        let start = self.max_order.min(history.len());
        let mut predictions: Vec<Prediction> = Vec::with_capacity(k);
        for len in (1..=start).rev() {
            if predictions.len() >= k {
                break;
            }
            let context = &history[history.len() - len..];
            let Some(counts) = self.counts[len].get(context) else {
                continue;
            };
            let depth = (start - len) as i32;
            let discount = self.backoff.powi(depth);
            let mut ranked: Vec<(u32, u64)> = counts
                .successors
                .iter()
                .map(|(&token, &count)| (token, count))
                .collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (token, count) in ranked {
                if predictions.len() >= k {
                    break;
                }
                if predictions.iter().any(|p| p.token == token) {
                    continue;
                }
                predictions.push(Prediction {
                    token,
                    score: discount * count as f64 / counts.total as f64,
                    context_len: len,
                });
            }
        }
        // Unigram fallback through the cached popularity ranking.
        if predictions.len() < k {
            let discount = self.backoff.powi(start as i32);
            let total = self.counts[0]
                .get(&Vec::new() as &Vec<u32>)
                .map_or(1, |c| c.total);
            for &(token, count) in self.unigram_ranking() {
                if predictions.len() >= k {
                    break;
                }
                if predictions.iter().any(|p| p.token == token) {
                    continue;
                }
                predictions.push(Prediction {
                    token,
                    score: discount * count as f64 / total as f64,
                    context_len: 0,
                });
            }
        }
        predictions
    }

    /// The unigram successors ordered by count (descending, token id as
    /// tie break), cached after training.
    fn unigram_ranking(&self) -> &[(u32, u64)] {
        self.unigram_cache.get_or_init(|| {
            let mut ranked: Vec<(u32, u64)> = self.counts[0]
                .get(&Vec::new() as &Vec<u32>)
                .map(|c| c.successors.iter().map(|(&t, &n)| (t, n)).collect())
                .unwrap_or_default();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            ranked
        })
    }

    /// Convenience: does the actual next token appear in the top-`k`
    /// prediction after `history`?
    pub fn hit(&self, history: &[u32], actual: u32, k: usize) -> bool {
        self.predict(history, k).iter().any(|p| p.token == actual)
    }

    /// The stupid-backoff score of one specific continuation, mirroring the
    /// recursive definition (useful for anomaly detection: a very low score
    /// marks an improbable request).
    pub fn score(&self, history: &[u32], next: u32) -> f64 {
        let start = self.max_order.min(history.len());
        for len in (0..=start).rev() {
            let context = &history[history.len() - len..];
            if let Some(counts) = self.counts[len].get(context) {
                if let Some(&c) = counts.successors.get(&next) {
                    let depth = (start - len) as i32;
                    return self.backoff.powi(depth) * c as f64 / counts.total as f64;
                }
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_deterministic_transitions() {
        let mut m = NgramModel::new(1);
        m.train_sequence(&[1, 2, 3, 1, 2, 3, 1, 2]);
        let p = m.predict(&[1], 1);
        assert_eq!(p[0].token, 2);
        assert!((p[0].score - 1.0).abs() < 1e-12);
        let p = m.predict(&[2], 1);
        assert_eq!(p[0].token, 3);
    }

    #[test]
    fn predicts_most_frequent_successor_first() {
        let mut m = NgramModel::new(1);
        // After 1: 2 appears 3 times, 3 once.
        m.train_sequence(&[1, 2, 1, 2, 1, 2, 1, 3]);
        let p = m.predict(&[1], 2);
        assert_eq!(p[0].token, 2);
        assert_eq!(p[1].token, 3);
        assert!(p[0].score > p[1].score);
    }

    #[test]
    fn backs_off_to_popularity_for_unseen_context() {
        let mut m = NgramModel::new(1);
        m.train_sequence(&[5, 5, 5, 7]);
        // Context 99 was never seen; prediction falls back to unigrams.
        let p = m.predict(&[99], 2);
        assert_eq!(p[0].token, 5);
        assert!(p[0].context_len == 0);
        // Backoff discount applied.
        assert!(p[0].score < 1.0);
    }

    #[test]
    fn empty_history_uses_unigram_table() {
        let mut m = NgramModel::new(2);
        m.train_sequence(&[4, 4, 9]);
        let p = m.predict(&[], 1);
        assert_eq!(p[0].token, 4);
    }

    #[test]
    fn higher_order_context_beats_popularity() {
        let mut m = NgramModel::new(2);
        // Globally, 8 is most popular; but after [1, 2] the next is always 3.
        m.train_sequence(&[8, 8, 8, 8, 8, 1, 2, 3, 1, 2, 3]);
        let p = m.predict(&[1, 2], 1);
        assert_eq!(p[0].token, 3);
        assert_eq!(p[0].context_len, 2);
    }

    #[test]
    fn k_truncates_and_orders_deterministically() {
        let mut m = NgramModel::new(1);
        m.train_sequence(&[1, 10, 1, 11, 1, 12, 1, 13]);
        let p = m.predict(&[1], 2);
        assert_eq!(p.len(), 2);
        // All successors tie at count 1 → token order breaks ties.
        assert_eq!(p[0].token, 10);
        assert_eq!(p[1].token, 11);
        assert!(m.predict(&[1], 0).is_empty());
        // k larger than candidate set returns what exists.
        assert_eq!(m.predict(&[1], 100).len(), m.predict(&[1], 50).len());
    }

    #[test]
    fn hit_checks_topk_membership() {
        let mut m = NgramModel::new(1);
        m.train_sequence(&[1, 2, 1, 2, 1, 3]);
        assert!(m.hit(&[1], 2, 1));
        assert!(!m.hit(&[1], 3, 1));
        assert!(m.hit(&[1], 3, 2));
    }

    #[test]
    fn score_decreases_with_backoff_depth() {
        let mut m = NgramModel::new(2);
        m.train_sequence(&[1, 2, 3, 1, 2, 3]);
        let full = m.score(&[1, 2], 3);
        let partial = m.score(&[99, 2], 3); // order-1 evidence only
        let none = m.score(&[99, 98], 3); // unigram only
        assert!(full > partial, "{full} vs {partial}");
        assert!(partial > none, "{partial} vs {none}");
        assert!(none > 0.0);
        assert_eq!(m.score(&[1, 2], 999), 0.0);
    }

    #[test]
    fn training_accumulates_across_sequences() {
        let mut m = NgramModel::new(1);
        m.train_sequence(&[1, 2]);
        m.train_sequence(&[1, 3]);
        m.train_sequence(&[1, 3]);
        let p = m.predict(&[1], 1);
        assert_eq!(p[0].token, 3);
        assert_eq!(m.transition_count(), 3);
    }

    #[test]
    fn backoff_fill_prefers_specific_context_over_popularity() {
        let mut m = NgramModel::new(1);
        // Token 9 is globally dominant; after 1 the only observed next is 2.
        m.train_sequence(&[9, 9, 9, 9, 9, 9, 1, 2]);
        let p = m.predict(&[1], 3);
        // Slot 0 must be the specific successor, popularity fills after.
        assert_eq!(p[0].token, 2);
        assert_eq!(p[0].context_len, 1);
        assert!(p[1..].iter().any(|x| x.token == 9));
        assert!(p[1..].iter().all(|x| x.context_len == 0));
    }

    #[test]
    fn predictions_have_no_duplicate_tokens() {
        let mut m = NgramModel::new(2);
        m.train_sequence(&[1, 2, 3, 1, 2, 3, 1, 2, 4]);
        let p = m.predict(&[1, 2], 10);
        let mut tokens: Vec<u32> = p.iter().map(|x| x.token).collect();
        tokens.sort_unstable();
        let before = tokens.len();
        tokens.dedup();
        assert_eq!(before, tokens.len());
    }

    #[test]
    fn unigram_cache_invalidates_on_retraining() {
        let mut m = NgramModel::new(1);
        m.train_sequence(&[5, 5, 5]);
        assert_eq!(m.predict(&[], 1)[0].token, 5);
        // Retrain so 7 becomes dominant; the cached ranking must refresh.
        m.train_sequence(&[7, 7, 7, 7, 7, 7, 7, 7]);
        assert_eq!(m.predict(&[], 1)[0].token, 7);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_order_rejected() {
        let _ = NgramModel::new(0);
    }
}
