//! URL ↔ token interning, with optional clustering.

use std::collections::HashMap;

use jcdn_url::cluster::Clusterer;
use jcdn_url::Url;

/// How URLs are canonicalized before interning.
#[derive(Clone, Debug, Default)]
pub enum VocabMode {
    /// Use the URL string verbatim (Table 3's "Actual URLs" column).
    #[default]
    Raw,
    /// Map each URL through the Klotski-style clusterer first (Table 3's
    /// "Clustered URLs" column). URLs that fail to parse fall back to the
    /// raw string.
    Clustered(Clusterer),
}

/// An interning table from canonicalized URL strings to dense `u32` tokens.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    mode: VocabMode,
    index: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Vocab {
    /// A raw (non-clustering) vocabulary.
    pub fn raw() -> Self {
        Vocab::default()
    }

    /// A clustering vocabulary with the default clusterer.
    pub fn clustered() -> Self {
        Vocab {
            mode: VocabMode::Clustered(Clusterer::default()),
            ..Vocab::default()
        }
    }

    /// A vocabulary with an explicit mode.
    pub fn with_mode(mode: VocabMode) -> Self {
        Vocab {
            mode,
            ..Vocab::default()
        }
    }

    /// Canonicalizes a URL per the mode (cluster key or verbatim).
    pub fn canonicalize(&self, url: &str) -> String {
        match &self.mode {
            VocabMode::Raw => url.to_owned(),
            VocabMode::Clustered(clusterer) => match Url::parse(url) {
                Ok(parsed) => clusterer.cluster(&parsed),
                Err(_) => url.to_owned(),
            },
        }
    }

    /// Interns an already-canonicalized key verbatim, bypassing the mode's
    /// canonicalization (used by the model codec, whose payload stores the
    /// canonical strings).
    pub fn intern_verbatim(&mut self, key: &str) -> u32 {
        if let Some(&tok) = self.index.get(key) {
            return tok;
        }
        // jcdn-lint: allow(D3) -- id-space exhaustion (2^32 interned strings) has no recovery path
        let tok = u32::try_from(self.strings.len()).expect("vocabulary overflow");
        self.index.insert(key.to_owned(), tok);
        self.strings.push(key.to_owned());
        tok
    }

    /// Interns a URL, returning its token.
    pub fn intern(&mut self, url: &str) -> u32 {
        let key = self.canonicalize(url);
        if let Some(&tok) = self.index.get(&key) {
            return tok;
        }
        // jcdn-lint: allow(D3) -- id-space exhaustion (2^32 interned strings) has no recovery path
        let tok = u32::try_from(self.strings.len()).expect("vocabulary overflow");
        self.index.insert(key.clone(), tok);
        self.strings.push(key);
        tok
    }

    /// Looks up a URL without inserting.
    pub fn get(&self, url: &str) -> Option<u32> {
        self.index.get(&self.canonicalize(url)).copied()
    }

    /// Resolves a token back to its canonical string.
    pub fn resolve(&self, token: u32) -> Option<&str> {
        self.strings.get(token as usize).map(String::as_str)
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no tokens have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_mode_distinguishes_ids() {
        let mut v = Vocab::raw();
        let a = v.intern("https://h.example/article/1");
        let b = v.intern("https://h.example/article/2");
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.resolve(a), Some("https://h.example/article/1"));
    }

    #[test]
    fn clustered_mode_merges_ids() {
        let mut v = Vocab::clustered();
        let a = v.intern("https://h.example/article/1");
        let b = v.intern("https://h.example/article/2");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.resolve(a), Some("h.example/article/{id}"));
    }

    #[test]
    fn clustered_mode_falls_back_on_unparseable() {
        let mut v = Vocab::clustered();
        let a = v.intern("not a url at all");
        assert_eq!(v.resolve(a), Some("not a url at all"));
    }

    #[test]
    fn get_does_not_insert() {
        let mut v = Vocab::raw();
        assert_eq!(v.get("https://h.example/x"), None);
        let tok = v.intern("https://h.example/x");
        assert_eq!(v.get("https://h.example/x"), Some(tok));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocab::raw();
        let a = v.intern("https://h.example/x");
        let b = v.intern("https://h.example/x");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }
}
