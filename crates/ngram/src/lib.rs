//! # jcdn-ngram — backoff n-gram request prediction
//!
//! §5.2 of the paper models "the relationship between requests using a
//! backoff ngram model \[12\]. The ngram model captures transition
//! probabilities from a subsequence of previously requested objects to the
//! next request in the client flow." Trained on per-client URL sequences, it
//! predicts the next request; Table 3 reports top-K accuracy for raw and
//! clustered URLs.
//!
//! This crate provides:
//!
//! * [`Vocab`] — URL-string ↔ token interning, with optional
//!   Klotski-style clustering (via `jcdn-url`) applied at interning time,
//! * [`NgramModel`] — counts for context lengths `0..=N` with
//!   *stupid backoff* scoring and top-K prediction,
//! * [`eval`] — client-disjoint train/test splitting and the top-K accuracy
//!   measurement the paper's Table 3 reports,
//! * [`codec`] — a versioned binary format for shipping trained models to
//!   edge servers.
//!
//! ## Example
//!
//! ```
//! use jcdn_ngram::{NgramModel, Vocab};
//!
//! let mut vocab = Vocab::raw();
//! let seq: Vec<u32> = ["a", "b", "c", "a", "b", "c", "a", "b"]
//!     .iter()
//!     .map(|s| vocab.intern(s))
//!     .collect();
//! let mut model = NgramModel::new(2);
//! model.train_sequence(&seq);
//!
//! // After "a", the model predicts "b".
//! let top = model.predict(&seq[..1], 1);
//! assert_eq!(top[0].token, vocab.intern("b"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod eval;
mod model;
mod vocab;

pub use model::{NgramModel, Prediction};
pub use vocab::{Vocab, VocabMode};
