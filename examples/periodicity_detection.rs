//! §5.1 in miniature: plant periodic machine-to-machine flows among noisy
//! human traffic, run the permutation-thresholded detector, and print the
//! Figure 5 histogram and Figure 6 CDF.
//!
//! ```sh
//! cargo run --release --example periodicity_detection
//! ```

use jcdn::core::dataset;
use jcdn::core::periodicity::{run_study, PeriodicityStudyConfig};
use jcdn::core::report::pct;
use jcdn::signal::periodicity::PeriodicityConfig;
use jcdn::trace::SimDuration;
use jcdn::workload::WorkloadConfig;

fn main() {
    // An hour-long capture so even 3-minute pollers produce enough ticks.
    let mut config = WorkloadConfig::tiny(2024);
    config.duration = SimDuration::from_secs(3600);
    config.clients = 400;
    config.target_events = 60_000;
    println!(
        "Simulating one hour of traffic ({} clients)...",
        config.clients
    );
    let data = dataset::simulate(&config);

    let planted = &data.workload.truth;
    println!(
        "Planted: {} periodic objects, {} periodic client-object flows\n",
        planted.periodic_objects.len(),
        planted.periodic_pairs.len()
    );

    let study = PeriodicityStudyConfig {
        detector: PeriodicityConfig {
            permutations: 100,
            parallel: true,
            max_bins: 1 << 13,
            ..PeriodicityConfig::default()
        },
        ..PeriodicityStudyConfig::default()
    };
    println!(
        "Running the periodicity study (x = {} permutations)...",
        study.detector.permutations
    );
    let report = run_study(&data.trace, &study);

    println!(
        "\nDetected {} periodic objects; {} of JSON requests are periodic (paper: 6.3%)",
        report.object_periods.len(),
        pct(report.periodic_share()),
    );
    println!(
        "Periodic traffic: {} uncacheable (paper: 56.2%), {} uploads (paper: 78%)",
        pct(report.periodic_uncacheable_share()),
        pct(report.periodic_upload_share()),
    );

    println!("\nFigure 5 — histogram of detected object periods (seconds):");
    print!("{}", report.period_histogram().render(40));

    println!("\nFigure 6 — CDF of the share of periodic clients per object:");
    print!("{}", report.client_fraction_cdf().render(10, 40));
    println!(
        "\nObjects where a majority of clients is periodic: {} (paper: ~20%)",
        pct(report.majority_periodic_object_share()),
    );

    // Compare detections against the planted ground truth.
    let mut matched = 0;
    for (&url, &period) in &report.object_periods {
        let url_str = data.trace.url(url);
        let hit = data
            .workload
            .objects
            .iter()
            .position(|o| o.url == url_str)
            .and_then(|id| planted.periodic_objects.get(&(id as u32)))
            .map(|planted_period| (planted_period.as_secs_f64() - period).abs() <= 5.0)
            .unwrap_or(false);
        if hit {
            matched += 1;
        }
    }
    println!(
        "\nGround-truth check: {matched}/{} detected objects match a planted period",
        report.object_periods.len()
    );
}
