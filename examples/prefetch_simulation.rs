//! §5.2's implication, measured: train an n-gram prefetcher on yesterday's
//! trace, deploy it on today's traffic, and compare cache hit ratios
//! against both no prefetching and manifest-driven prefetching.
//!
//! ```sh
//! cargo run --release --example prefetch_simulation
//! ```

use jcdn::cdnsim::SimConfig;
use jcdn::core::dataset;
use jcdn::core::report::{pct, TextTable};
use jcdn::prefetch::eval::compare_policies;
use jcdn::prefetch::{ManifestPrefetcher, NgramPrefetcher};
use jcdn::workload::{build, WorkloadConfig};

fn main() {
    // "Yesterday": the training capture. "Today": same population, replayed
    // with the same seed — the steady-state app traffic a CDN sees.
    let config = WorkloadConfig::tiny(777);
    println!("Simulating the training day...");
    let yesterday = dataset::simulate(&config);
    println!("Building today's traffic...");
    let today = build(&config);
    let sim = SimConfig::default();

    let mut table = TextTable::new(&["Policy", "Hit ratio", "Uplift", "Prefetches", "Precision"]);

    // Baseline numbers come from any comparison's baseline half.
    let mut ngram = NgramPrefetcher::train_from_trace(&yesterday.trace, 1, 5);
    ngram.bind_universe(&today.objects);
    let ngram_cmp = compare_policies(&today, &sim, &mut ngram);

    let mut manifest = ManifestPrefetcher::new();
    manifest.bind_universe(&today.objects);
    let manifest_cmp = compare_policies(&today, &sim, &mut manifest);

    let base_ratio = ngram_cmp.baseline.cacheable_hit_ratio().unwrap_or(0.0);
    table.row(&[
        "none (baseline)".into(),
        pct(base_ratio),
        "-".into(),
        "0".into(),
        "-".into(),
    ]);
    for (name, cmp) in [
        ("ngram top-5", &ngram_cmp),
        ("manifest push", &manifest_cmp),
    ] {
        table.row(&[
            name.into(),
            pct(cmp.with_policy.cacheable_hit_ratio().unwrap_or(0.0)),
            format!("{:+.1}pp", cmp.hit_ratio_uplift().unwrap_or(0.0) * 100.0),
            cmp.with_policy.prefetch_issued.to_string(),
            cmp.prefetch_precision()
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("\n{}", table.render());

    println!(
        "Extra origin traffic paid by the n-gram policy: {:.1} MiB",
        ngram_cmp.extra_origin_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "Normal-class mean latency delta: {:+.2} ms",
        ngram_cmp.normal_latency_delta().unwrap_or(0.0) * 1e3
    );
}
