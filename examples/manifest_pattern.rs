//! Table 1's manifest pattern, end to end: inspect a generated JSON
//! manifest body, follow its references the way a mobile news app would,
//! and show how the edge can prefetch them.
//!
//! ```sh
//! cargo run --release --example manifest_pattern
//! ```

use jcdn::json;
use jcdn::workload::{build, WorkloadConfig};

fn main() {
    let workload = build(&WorkloadConfig::tiny(7));

    // Find a JSON manifest object the generator produced.
    let (manifest_id, manifest) = workload
        .objects
        .iter()
        .enumerate()
        .find(|(_, o)| o.body.is_some())
        .expect("the workload always contains manifest objects");
    let body = manifest.body.as_ref().expect("checked");

    println!("1. Request:  GET -> {}", manifest.url);
    println!("   Response: <- \"application/json\"");
    let doc = json::parse(body).expect("generated manifests are valid JSON");
    // Print the first two stories, pretty-printed, like Table 1.
    if let Some(stories) = doc.as_array() {
        for story in stories.iter().take(2) {
            println!("{}", indent(&json::to_string_pretty(story), 3));
        }
        if stories.len() > 2 {
            println!("   ... ({} stories total)", stories.len());
        }
    }

    // Follow the references like the app would.
    let refs = json::extract_url_refs(&doc);
    println!("\n2. The app now requests the referenced objects:");
    for (i, reference) in refs.iter().take(4).enumerate() {
        println!("   Request {}: GET -> {}", i + 2, reference);
    }
    if refs.len() > 4 {
        println!("   ... ({} references total)", refs.len());
    }

    // The generator records the same dependency as ground truth; verify the
    // two views agree.
    let truth = &workload.truth.manifest_children[&(manifest_id as u32)];
    let resolved = refs
        .iter()
        .filter(|r| {
            workload
                .objects
                .iter()
                .enumerate()
                .any(|(id, o)| o.url == **r && truth.contains(&(id as u32)))
        })
        .count();
    println!(
        "\nGround truth: {} referenced objects, {} resolvable from the body — \
         an edge server parsing this response can prefetch all of them.",
        truth.len(),
        resolved
    );
}

fn indent(text: &str, spaces: usize) -> String {
    let pad = " ".repeat(spaces);
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
