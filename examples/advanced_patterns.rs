//! Beyond the paper: the two analyses §5 leaves as future work —
//! multi-period detection and interarrival-aware (lead-time) prediction.
//!
//! ```sh
//! cargo run --release --example advanced_patterns
//! ```

use jcdn::core::dataset;
use jcdn::prefetch::lead_time::{analyze, LeadTimeConfig};
use jcdn::signal::periodicity::{detect_periods, PeriodicityConfig};
use jcdn::workload::WorkloadConfig;

fn main() {
    // ---- Multi-period detection ----------------------------------------
    // A device that reports telemetry every 30s *and* refreshes a config
    // every 5 minutes hits the same endpoint with two superimposed rhythms.
    // The paper's algorithm returns only the most significant period and
    // "leaves multi-period analysis for future work" — detect_periods is
    // that future work.
    println!("Multi-period flow: 30s telemetry + 300s config refresh over 2h\n");
    let mut times: Vec<f64> = (0..240).map(|i| i as f64 * 30.0).collect();
    times.extend((0..24).map(|i| 7.0 + i as f64 * 300.0));

    let cfg = PeriodicityConfig {
        permutations: 100,
        parallel: true,
        ..PeriodicityConfig::default()
    };
    let hits = detect_periods(&times, &cfg, 4);
    for (i, hit) in hits.iter().enumerate() {
        println!(
            "  period {}: {:.1}s (ACF {:.2}, spectral power {:.1})",
            i + 1,
            hit.period_seconds,
            hit.acf_value,
            hit.power
        );
    }
    assert!(!hits.is_empty(), "at least the dominant period is found");

    // ---- Lead-time analysis ---------------------------------------------
    // Order prediction says *what* comes next; lead time says *how long*
    // the prefetcher has. Both matter: a prediction with a 50ms lead can't
    // beat an 80ms origin RTT.
    println!("\nLead-time analysis over a simulated day of app traffic\n");
    let data = dataset::simulate(&WorkloadConfig::tiny(4242));
    let mut report = analyze(&data.trace, &LeadTimeConfig::default());
    println!(
        "  predicted transitions : {}",
        report.predicted_gaps.count()
    );
    if let Some(median) = report.median_predicted() {
        println!("  median lead time      : {median:.1}s");
    }
    for (label, seconds) in [("one origin RTT (200ms)", 0.2), ("1s", 1.0), ("30s", 30.0)] {
        if let Some(fraction) = report.predicted_with_lead_of(seconds) {
            println!(
                "  lead time >= {label:<22}: {:.1}% of predicted transitions",
                fraction * 100.0
            );
        }
    }
}
