//! §5's anomaly-detection implication: train sequence and period models on
//! clean traffic, inject two kinds of anomalies, and watch both detectors
//! fire.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```

use jcdn::core::dataset;
use jcdn::prefetch::anomaly::{AnomalyKind, PeriodAnomalyDetector, SequenceAnomalyDetector};
use jcdn::trace::{
    CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, SimTime, Trace,
};
use jcdn::workload::WorkloadConfig;

fn main() {
    println!("Simulating reference traffic...");
    let reference = dataset::simulate(&WorkloadConfig::tiny(1234));

    // ---- Sequence anomalies ------------------------------------------
    let detector = SequenceAnomalyDetector::train(&reference.trace, 1, 1e-4);

    // Replay a normal-looking session, then an exfiltration-looking one.
    let mut attack = Trace::new();
    let manifest_url = reference
        .workload
        .objects
        .iter()
        .find(|o| o.body.is_some())
        .map(|o| o.url.clone())
        .expect("manifests exist");
    let push = |trace: &mut Trace, time: u64, url: &str| {
        let url = trace.intern_url(url);
        trace.push(LogRecord {
            time: SimTime::from_secs(time),
            client: ClientId(0xBAD),
            ua: None,
            url,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 64,
            cache: CacheStatus::NotCacheable,
            retries: 0,
            flags: RecordFlags::NONE,
        });
    };
    push(&mut attack, 0, &manifest_url);
    push(&mut attack, 3, "https://news-0.example/wp-admin/export.php");
    push(&mut attack, 5, "https://news-0.example/.git/config");

    let flagged = detector.scan(&attack);
    println!("\nSequence detector on the injected session:");
    for a in &flagged {
        if let AnomalyKind::UnlikelySequence(score) = a.kind {
            println!(
                "  ! {} at {} (score {score:.2e})",
                attack.url(a.url),
                a.time
            );
        }
    }
    assert!(!flagged.is_empty(), "injected requests must be flagged");

    // ---- Period anomalies ----------------------------------------------
    println!("\nPeriod detector on a tampered telemetry flow:");
    let mut flow = Trace::new();
    let beat = "https://game-1.example/telemetry/beat/0";
    for tick in 0..30u64 {
        // A 60s reporter that goes silent between ticks 12 and 18 (e.g. the
        // device was compromised and its beacon suppressed).
        if (12..18).contains(&tick) {
            continue;
        }
        let url = flow.intern_url(beat);
        flow.push(LogRecord {
            time: SimTime::from_secs(tick * 60),
            client: ClientId(0xCAFE),
            ua: None,
            url,
            method: Method::Post,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 32,
            cache: CacheStatus::NotCacheable,
            retries: 0,
            flags: RecordFlags::NONE,
        });
    }
    let url = flow.find_url(beat).expect("interned");
    let period_detector =
        PeriodAnomalyDetector::new([(((ClientId(0xCAFE), None), url), 60.0)], 0.5);
    for a in period_detector.scan(&flow) {
        if let AnomalyKind::OffPeriod(gap, expected) = a.kind {
            println!(
                "  ! gap of {gap:.0}s (expected {expected:.0}s) ending at {}",
                a.time
            );
        }
    }
}
