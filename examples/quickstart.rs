//! Quickstart: generate a synthetic CDN dataset, run every §4 analysis,
//! and print a compact report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jcdn::core::characterize::{
    json_html_ratio, CacheabilityHeatmap, RequestTypeBreakdown, ResponseTypeBreakdown,
    TokenCategoryProvider, TrafficSourceBreakdown,
};
use jcdn::core::dataset;
use jcdn::core::report::{pct, TextTable};
use jcdn::ua::DeviceType;
use jcdn::workload::WorkloadConfig;

fn main() {
    // A scaled-down "short-term" dataset: 10 simulated minutes of traffic.
    let config = WorkloadConfig::short_term(42).scaled(0.2);
    println!(
        "Generating + simulating `{}` (~{} events)...",
        config.name, config.target_events
    );
    let data = dataset::simulate(&config);
    println!("{}\n", data.summary().table_row());

    // --- Traffic source (Figure 3) -------------------------------------
    let sources = TrafficSourceBreakdown::compute(&data.trace);
    let mut table = TextTable::new(&["Device", "Requests", "UA strings"]);
    for device in DeviceType::ALL {
        table.row(&[
            device.to_string(),
            pct(sources.request_share(device)),
            pct(sources.ua_share(device)),
        ]);
    }
    println!("Traffic source (JSON requests):\n{}", table.render());
    println!(
        "non-browser traffic: {}   mobile-browser share: {}\n",
        pct(sources.non_browser_share()),
        pct(sources.mobile_browser_requests as f64 / sources.total.max(1) as f64),
    );

    // --- Request type ----------------------------------------------------
    let requests = RequestTypeBreakdown::compute(&data.trace);
    println!(
        "Request type: GET {}   (of the rest, uploads: {})",
        pct(requests.download_share()),
        pct(requests.upload_share_of_rest()),
    );

    // --- Response type ---------------------------------------------------
    let mut responses = ResponseTypeBreakdown::compute(&data.trace);
    println!(
        "Uncacheable JSON traffic: {}",
        pct(responses.uncacheable_share())
    );
    if let (Some(med), Some(p75)) = (
        responses.json_smaller_than_html_at(0.5),
        responses.json_smaller_than_html_at(0.75),
    ) {
        println!(
            "JSON smaller than HTML: {} at median, {} at p75",
            pct(med),
            pct(p75)
        );
    }
    if let Some(ratio) = json_html_ratio(&data.trace) {
        println!("JSON:HTML request ratio in this capture: {ratio:.2}x");
    }

    // --- Cacheability heatmap (Figure 4) ----------------------------------
    let heatmap = CacheabilityHeatmap::compute(&data.trace, &TokenCategoryProvider, 10);
    println!(
        "\nDomains never cacheable: {}   always cacheable: {}",
        pct(heatmap.never_cacheable_share()),
        pct(heatmap.always_cacheable_share()),
    );
    println!(
        "\nEdge cache: {} hits / {} misses / {} uncacheable (hit ratio {})",
        data.stats.hits,
        data.stats.misses,
        data.stats.not_cacheable,
        pct(data.stats.cacheable_hit_ratio().unwrap_or(0.0)),
    );
}
